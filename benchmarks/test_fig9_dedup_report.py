"""Figure 9: TxSampler's report for Dedup.

The paper's screenshot shows the calling-context view descending
ChunkProcess -> sub_ChunkProcess -> tm_begin -> begin_in_tx ->
hashtable_search, with the search line carrying a large share of the
abort weight and a visible capacity-abort component.  This bench
renders the same view from our profile and checks those attributions.
"""

from conftest import SCALE, THREADS, emit, once

from repro.core import metrics as m
from repro.core.report import render_cct, render_summary
from repro.dslib.hashtable import hashtable_search
from repro.experiments.runner import run_workload
from repro.sim import MachineConfig


def _profile_dedup():
    cfg = MachineConfig(
        n_threads=THREADS,
        sample_periods={
            "cycles": 8_000, "mem_loads": 4_000, "mem_stores": 4_000,
            "rtm_aborted": 5, "rtm_commit": 50,
        },
    )
    out = run_workload("dedup", n_threads=THREADS, scale=SCALE, seed=7,
                       profile=True, config=cfg)
    return out.profile


def test_fig9_dedup_context_view(benchmark):
    profile = once(benchmark, _profile_dedup)
    view = render_cct(profile, metric=m.ABORT_WEIGHT, min_share=0.02)
    emit(render_summary(profile, "dedup (naive)") + "\n\n" + view)

    # the view descends into the transaction like the paper's screenshot
    assert "ChunkProcess" in view
    assert "[begin_in_tx]" in view
    assert "hashtable_search" in view

    # hashtable_search carries a large share of the abort weight
    nodes = [
        n for n in profile.root.walk()
        if n.key[0] == "call" and n.key[2] == hashtable_search.base
    ]
    total_w = profile.root.total(m.ABORT_WEIGHT)
    search_w = sum(n.total(m.ABORT_WEIGHT) for n in nodes)
    assert total_w > 0
    share = search_w / total_w
    assert share >= 0.3, f"hashtable_search abort-weight share {share:.1%}"

    # capacity aborts are visible (the long chains from the bad hash)
    cap_share = profile.root.total(m.AW_CAPACITY) / total_w
    assert cap_share >= 0.05, f"capacity weight share {cap_share:.1%}"

    # the second finding: synchronous aborts in dedup_write_file
    reports = {r.name: r for r in profile.cs_reports()}
    wf = next(r for name, r in reports.items() if "dedup_write_file" in name)
    assert wf.aborts_by_class.get("sync", 0) > 0
