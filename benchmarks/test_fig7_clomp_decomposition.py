"""Figure 7: CLOMP-TM time / abort / abort-weight decompositions.

The six bar groups (small/large transactions x inputs 1-3) and the
paper's reading of them:

* small-*: transaction overhead (T_oh) is a major time component;
* large-1 (Adjacent): useful speculative work dominates, ~no aborts;
* large-2 (FirstParts): the fallback lock serializes — T_wait explodes,
  aborts are conflicts;
* large-3 (Random): the write set overflows — capacity aborts take
  their largest share here, with correspondingly heavy abort weight.
"""

from conftest import SCALE, THREADS, emit, once

from repro.experiments.clomp import (
    check_expectations,
    figure7,
    render_figure7,
)


def test_fig7_decompositions(benchmark):
    rows = once(benchmark, figure7, n_threads=THREADS, scale=SCALE, seed=0)
    emit(render_figure7(rows))
    problems = check_expectations(rows)
    assert problems == [], problems
