"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one mechanism and measures what it buys:

* **interrupt-aborts-transaction** (Challenge I): with an idealized PMU
  that never aborts, sampling would be free — the gap quantifies the
  cost the paper's co-design has to absorb;
* **LBR depth**: a 32-entry Skylake LBR reconstructs more in-transaction
  call paths than Broadwell's 16 (fewer truncations);
* **sampling period**: the §7.1 trade-off — faster sampling costs more
  and perturbs more;
* **conflict policy / detection time**: correctness holds under
  responder-wins and lazy validation; the abort mix shifts;
* **retry budget**: more retries convert fallbacks into commits.
"""


from conftest import SCALE, THREADS, emit, once

from repro.experiments.runner import run_workload
from repro.sim import MachineConfig


def test_ablation_pmu_abort_behaviour(benchmark):
    def experiment():
        real = run_workload("vacation", n_threads=THREADS, scale=SCALE,
                            seed=3, profile=True)
        cfg = MachineConfig(n_threads=THREADS, pmu_aborts_txn=False)
        ideal = run_workload("vacation", n_threads=THREADS, scale=SCALE,
                             seed=3, profile=True, config=cfg)
        return real, ideal

    real, ideal = once(benchmark, experiment)
    real_induced = real.result.aborts_by_reason.get("interrupt", 0)
    ideal_induced = ideal.result.aborts_by_reason.get("interrupt", 0)
    emit(
        "=== ablation: PMU interrupts abort transactions ===\n"
        f"  real PMU : {real_induced} sampling-induced aborts\n"
        f"  ideal PMU: {ideal_induced} sampling-induced aborts"
    )
    assert real_induced > 0 and ideal_induced == 0


def test_ablation_lbr_depth(benchmark):
    def truncations(lbr_size):
        cfg = MachineConfig(
            n_threads=THREADS, lbr_size=lbr_size,
            sample_periods={"cycles": 4_000, "rtm_aborted": 5,
                            "rtm_commit": 50},
        )
        out = run_workload("dedup", n_threads=THREADS, scale=SCALE, seed=2,
                           profile=True, config=cfg)
        return out.profiler.truncated_paths

    def experiment():
        return truncations(16), truncations(32)

    broadwell, skylake = once(benchmark, experiment)
    emit(
        "=== ablation: LBR depth (in-txn path truncations on dedup) ===\n"
        f"  16 entries (Broadwell): {broadwell}\n"
        f"  32 entries (Skylake)  : {skylake}"
    )
    assert skylake <= broadwell


def test_ablation_sampling_period(benchmark):
    def overhead(factor):
        base = MachineConfig(n_threads=THREADS)
        periods = {ev: max(1, p // factor)
                   for ev, p in base.sample_periods.items()}
        cfg = base.evolve(sample_periods=periods)
        native = run_workload("kmeans", n_threads=THREADS, scale=SCALE,
                              seed=1)
        sampled = run_workload("kmeans", n_threads=THREADS, scale=SCALE,
                               seed=1, profile=True, config=cfg)
        return (sampled.result.makespan / native.result.makespan - 1,
                sampled.result.samples_delivered)

    def experiment():
        return {f: overhead(f) for f in (1, 4, 16)}

    data = once(benchmark, experiment)
    lines = ["=== ablation: sampling period sweep (kmeans) ==="]
    for f, (ov, n) in data.items():
        lines.append(f"  {f:2d}x faster sampling: overhead {ov:+7.2%} "
                     f"({n} samples)")
    emit("\n".join(lines))
    # more samples collected as the period shrinks
    assert data[16][1] > data[4][1] > data[1][1]
    # and the cost grows with it
    assert data[16][0] > data[1][0]


def test_ablation_conflict_semantics(benchmark):
    def run_with(**kw):
        cfg = MachineConfig(n_threads=THREADS, **kw)
        return run_workload("vacation", n_threads=THREADS, scale=SCALE,
                            seed=4, config=cfg).result

    def experiment():
        return {
            "requester_wins": run_with(),
            "responder_wins": run_with(conflict_policy="responder_wins"),
            "lazy": run_with(eager_conflicts=False),
        }

    results = once(benchmark, experiment)
    lines = ["=== ablation: conflict arbitration (vacation) ==="]
    for name, r in results.items():
        lines.append(
            f"  {name:15s} makespan={r.makespan:>9} commits={r.commits:5d} "
            f"conflicts={r.aborts_by_reason.get('conflict', 0):5d}"
        )
    emit("\n".join(lines))
    for r in results.values():
        assert r.commits > 0


def test_ablation_retry_budget(benchmark):
    def run_with(retries):
        cfg = MachineConfig(n_threads=THREADS, max_retries=retries)
        return run_workload("kmeans", n_threads=THREADS, scale=SCALE,
                            seed=2, config=cfg).result

    def experiment():
        return {n: run_with(n) for n in (0, 5, 10)}

    results = once(benchmark, experiment)
    lines = ["=== ablation: retry budget (kmeans) ==="]
    for n, r in results.items():
        lines.append(f"  {n:2d} retries: commits={r.commits:5d} "
                     f"aborts={r.aborts:5d} makespan={r.makespan}")
    emit("\n".join(lines))
    # more retries -> more speculative commits
    assert results[5].commits >= results[0].commits
