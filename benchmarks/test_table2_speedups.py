"""Table 2: the optimization overview.

For each program: the paper's symptom must be visible in the naive
TxSampler profile, and applying the published fix must speed the
program up.  Absolute factors differ from the paper's testbed (we run a
simulator, not a Broadwell Xeon); the shape — who wins, and that the
big wins (histo, linkedlist) dwarf the small ones (ua, leveldb) — must
hold.
"""

import math

from conftest import SCALE, THREADS, emit, once

from repro.experiments.speedup import render_table2, table2


def test_table2_optimizations(benchmark):
    rows = once(benchmark, table2, n_threads=THREADS, scale=SCALE, seed=2)
    emit(render_table2(rows))

    # every published fix helps
    for r in rows:
        assert r.measured_speedup > 1.0, (
            f"{r.program}: fix did not help ({r.measured_speedup:.2f}x)"
        )
    # factors land within ~3x of the paper's (simulator vs silicon)
    for r in rows:
        ratio = r.measured_speedup / r.paper_speedup
        assert 1 / 3 <= ratio <= 3.5, (
            f"{r.program}: measured {r.measured_speedup:.2f}x vs paper "
            f"{r.paper_speedup:.2f}x"
        )
    # the ordering of the headline wins holds: histo and linkedlist are
    # the paper's two largest speedups
    big_two = sorted(rows, key=lambda r: r.measured_speedup)[-4:]
    assert {"histo", "linkedlist"} <= {r.program for r in big_two}

    # geometric-mean sanity: overall the fixes deliver
    geo = math.exp(
        sum(math.log(r.measured_speedup) for r in rows) / len(rows)
    )
    assert geo > 1.2, f"geomean speedup only {geo:.2f}x"
