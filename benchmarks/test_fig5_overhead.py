"""Figure 5: TxSampler's runtime overhead, per benchmark.

Paper: ~4% average runtime overhead across the suite, measured as the
trimmed mean of repeated native-vs-sampled executions.

On our substrate the per-benchmark numbers are noisier than on silicon
(runs are ~10^5-10^6 simulated cycles, so a sampling interrupt can tip
a conflict-heavy program's interleaving either way), which is why the
assertion targets the *suite mean*: it must stay in the low single
digits, exactly the paper's headline claim.
"""

from conftest import RUNS, SCALE, THREADS, emit, once

from repro.experiments.overhead import (
    FIG5_BENCHMARKS,
    figure5,
    render_figure5,
    suite_mean,
)


def test_fig5_overhead_across_htmbench(benchmark):
    rows = once(
        benchmark, figure5,
        benchmarks=FIG5_BENCHMARKS, n_threads=THREADS, scale=SCALE,
        runs=RUNS,
    )
    emit(render_figure5(rows))

    mean = suite_mean(rows)
    # the paper's headline: lightweight — low single-digit average
    assert -0.05 <= mean <= 0.08, f"suite mean overhead {mean:.2%}"
    # most programs individually land in a sane band
    in_band = sum(1 for r in rows if -0.15 <= r.mean <= 0.15)
    assert in_band >= int(0.7 * len(rows)), (
        f"only {in_band}/{len(rows)} benchmarks within +-15%"
    )
    # stable (low-conflict) programs show the pure handler cost: a small
    # positive overhead
    stable = {r.name: r.mean for r in rows}
    for name in ("memcached", "ua", "barnes"):
        assert 0.0 <= stable[name] <= 0.10, (name, stable[name])
