"""Benchmark-suite configuration.

Every bench regenerates one table or figure of the paper at full scale
(14 simulated threads), checks the qualitative shape, and prints the
reproduced rows (run with ``-s`` to see them; they are also appended to
``benchmarks/results.txt``).

Environment knobs:

* ``REPRO_SCALE``  — workload scale factor (default 1.0);
* ``REPRO_THREADS`` — simulated thread count (default 14);
* ``REPRO_RUNS``   — seeds per overhead measurement (default 3;
  the paper uses 7).
"""

from __future__ import annotations

import os
import pathlib

import pytest

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
THREADS = int(os.environ.get("REPRO_THREADS", "14"))
RUNS = int(os.environ.get("REPRO_RUNS", "3"))

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


def emit(text: str) -> None:
    """Print a reproduced table/figure and append it to results.txt."""
    print()
    print(text)
    with RESULTS_PATH.open("a") as fh:
        fh.write(text + "\n\n")


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
    yield
