#!/usr/bin/env python
"""LSM result-store perf baseline: emit ``BENCH_store.json``.

The campaign layer's :class:`~repro.campaign.store.ResultStore` is an
LSM tree (WAL + memtable + leveled segments); ``repro serve`` puts it
on the hot path of every HTTP submission.  This script records a
trajectory for the store the same way :mod:`bench_engine` does for the
simulation engine: median wall time over ``--repeats`` runs of each
store phase, on a fresh directory per run.

Phases (each ``--records`` operations unless noted):

* ``put_single``   — one ``put`` per record: one WAL fsync each.
* ``put_batch``    — ``put_batch`` groups of ``--batch``: group commit,
  one fsync per batch.  The ``batch_vs_single_fsync`` ratio in the
  output is the headline number — how much group commit buys.
* ``get_warm``     — point reads served by the memtable.
* ``flush``        — memtable → sorted L0 segment (one flush).
* ``reopen``       — recovery: manifest replay + segment scan + WAL
  replay of a populated directory.
* ``get_cold``     — point reads served by segment files (pread path).
* ``compact``      — fold ``--segments`` overlapping L0 segments.

Regenerate the committed baseline from the repo root with::

    PYTHONPATH=src python benchmarks/bench_store.py --out benchmarks/BENCH_store.json

Timings are host-relative; the CI gate (:mod:`perf_gate`) compares each
phase's *share* of total suite time, which transfers across hosts.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.campaign.store import ResultStore  # noqa: E402

DEFAULT_RECORDS = 1500
DEFAULT_BATCH = 50
DEFAULT_SEGMENTS = 6
DEFAULT_REPEATS = 3
#: payload shaped like a real campaign result record
PAYLOAD = {"result": {"commits": 120000, "aborts": 4500,
                      "makespan": 987654},
           "config": {"n_threads": 4, "scale": 1.0},
           "padding": "x" * 64}


def _record(n: int) -> dict:
    return dict(PAYLOAD, seq_id=n)


def _key(n: int) -> str:
    return f"{n:016x}"


class _Phases:
    """Collects per-phase wall times across repeats."""

    def __init__(self) -> None:
        self.times: dict[str, list[float]] = {}

    def run(self, name: str, fn) -> None:
        t0 = time.perf_counter()
        fn()
        self.times.setdefault(name, []).append(time.perf_counter() - t0)

    def rows(self, ops: dict[str, int]) -> list[dict]:
        rows = []
        for name, times in self.times.items():
            median = statistics.median(times)
            n = ops[name]
            rows.append({
                "workload": name,  # perf_gate keys on this field
                "ops": n,
                "median_wall_s": round(median, 6),
                "min_wall_s": round(min(times), 6),
                "ops_per_sec": round(n / median) if median else 0,
            })
        return rows


def one_repeat(phases: _Phases, *, records: int, batch: int,
               segments: int) -> None:
    """One full pass over every phase, on fresh directories."""
    base = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        # --- put_single: one fsync per record -------------------------
        single = ResultStore(base / "single")
        phases.run("put_single", lambda: [
            single.put(_key(n), _record(n)) for n in range(records)])
        single.close()

        # --- put_batch: group commit ----------------------------------
        store = ResultStore(base / "batched")
        items = [(_key(n), _record(n)) for n in range(records)]

        def batched() -> None:
            for at in range(0, records, batch):
                store.put_batch(items[at:at + batch])

        phases.run("put_batch", batched)

        # --- get_warm: memtable reads ---------------------------------
        phases.run("get_warm", lambda: [
            store.get(_key(n)) for n in range(records)])

        # --- flush: memtable -> sorted L0 segment ---------------------
        phases.run("flush", store.flush)
        store.close()

        # --- reopen: recovery of the populated directory --------------
        reopened: list[ResultStore] = []
        phases.run("reopen", lambda: reopened.append(
            ResultStore(base / "batched")))
        cold = reopened[0]

        # --- get_cold: segment-file reads -----------------------------
        phases.run("get_cold", lambda: [
            cold.get(_key(n)) for n in range(records)])
        cold.close()

        # --- compact: fold overlapping L0 segments --------------------
        # every segment rewrites the same keys, so compaction drops
        # (segments - 1) / segments of all records — the real shape of
        # a store after repeated --refresh campaigns
        victim = ResultStore(base / "compact",
                             level_trigger=segments + 1)
        per_seg = max(1, records // segments)
        for round_no in range(segments):
            victim.put_batch([(_key(n), _record(round_no * records + n))
                              for n in range(per_seg)])
            victim.flush()
        phases.run("compact", victim.compact)
        victim.close()
    finally:
        shutil.rmtree(base, ignore_errors=True)


def run_suite(*, records: int = DEFAULT_RECORDS,
              batch: int = DEFAULT_BATCH,
              segments: int = DEFAULT_SEGMENTS,
              repeats: int = DEFAULT_REPEATS, **_ignored) -> dict:
    phases = _Phases()
    for _ in range(repeats):
        one_repeat(phases, records=records, batch=batch,
                   segments=segments)
    ops = {
        "put_single": records,
        "put_batch": records,
        "get_warm": records,
        "flush": records,
        "reopen": records,
        "get_cold": records,
        "compact": max(1, records // segments) * segments,
    }
    rows = phases.rows(ops)
    by_name = {r["workload"]: r for r in rows}
    single_s = by_name["put_single"]["median_wall_s"]
    batch_s = by_name["put_batch"]["median_wall_s"] or 1e-9
    return {
        "bench": "store",
        "config": {
            "records": records,
            "batch": batch,
            "segments": segments,
            "repeats": repeats,
            "python": platform.python_version(),
        },
        "workloads": rows,
        "batch_vs_single_fsync": round(single_s / batch_s, 3),
        "totals": {
            "median_wall_s": round(sum(r["median_wall_s"]
                                       for r in rows), 6),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out",
                        default=str(Path(__file__).parent
                                    / "BENCH_store.json"),
                        help="output path (default: %(default)s)")
    parser.add_argument("--records", type=int, default=DEFAULT_RECORDS)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH,
                        help="put_batch group size (default: "
                             "%(default)s)")
    parser.add_argument("--segments", type=int, default=DEFAULT_SEGMENTS,
                        help="L0 segments folded by the compact phase "
                             "(default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="passes per phase; the median is kept "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    doc = run_suite(records=args.records, batch=args.batch,
                    segments=args.segments, repeats=args.repeats)
    Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True)
                              + "\n")
    width = max(len(r["workload"]) for r in doc["workloads"])
    for row in doc["workloads"]:
        print(f"{row['workload']:{width}s}  "
              f"{row['median_wall_s']*1e3:8.1f} ms  "
              f"{row['ops_per_sec']:>12,d} ops/s")
    print(f"group commit: x{doc['batch_vs_single_fsync']} over "
          f"one-fsync-per-put")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
