"""Figure 8: the Type I / II / III application categorization.

Paper: programs with r_cs < 20% (Type I) are not worth optimizing;
hot programs split by abort/commit ratio into Type II (< 1) and
Type III (>= 1).  The bench reproduces the placement for the whole
suite and scores agreement against the paper's reported quadrants.
"""

from conftest import SCALE, THREADS, emit, once

from repro.experiments.categorize import (
    agreement,
    by_type,
    figure8,
    render_figure8,
)


def test_fig8_categorization(benchmark):
    rows = once(benchmark, figure8, n_threads=THREADS, scale=SCALE, seed=3)
    emit(render_figure8(rows))

    groups = by_type(rows)
    # all three quadrants are populated, as in the paper
    for type_ in ("I", "II", "III"):
        assert groups[type_], f"Type {type_} is empty"
    # the compute-bound SPLASH-2 programs stop the decision tree early
    for name in ("barnes", "fmm", "water", "raytrace"):
        assert name in groups["I"], name
    # the paper's flagship Type III subjects conflict hard here too
    for name in ("leveldb", "avltree", "linkedlist", "vacation"):
        assert name in groups["III"], name
    # overall agreement with the paper's placements
    score = agreement(rows)
    assert score >= 0.75, f"only {score:.0%} agreement with the paper"
