"""§7.1: the fixed-setup-cost cliff for short-running programs.

Paper: "water and ocean from SPLASH originally run less than 0.1s;
TxSampler incurs 15x runtime overhead on average" because the constant
cost of preloading the profiling library and setting up PMUs stops
amortizing.  With the modeled setup cost enabled, the same program shows
the cliff at tiny scale and the usual few percent at full scale.
"""

from conftest import THREADS, emit, once

from repro.experiments.runner import run_workload
from repro.sim import MachineConfig

SETUP = 25_000  # cycles per thread: preload + PMU programming


def _overhead(scale: float) -> float:
    native = run_workload("water", n_threads=THREADS, scale=scale, seed=1)
    cfg = MachineConfig(n_threads=THREADS, profiler_setup_cost=SETUP)
    sampled = run_workload("water", n_threads=THREADS, scale=scale, seed=1,
                           profile=True, config=cfg)
    return sampled.result.makespan / native.result.makespan - 1.0


def test_sec71_setup_cost_cliff(benchmark):
    def experiment():
        return _overhead(0.02), _overhead(4.0)

    short, long_ = once(benchmark, experiment)
    emit(
        "=== §7.1: fixed setup cost vs program length (water) ===\n"
        f"  tiny run (scale 0.02): {short:+8.1%} overhead\n"
        f"  long run (scale 4.0) : {long_:+8.1%} overhead"
    )
    assert short > 1.5          # the cliff
    assert long_ < 0.25         # amortized
