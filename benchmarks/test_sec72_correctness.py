"""§7.2: TxSampler's correctness against the instrumentation ground truth.

The controlled microbenchmarks — low/moderate/high abort ratios, true
and false sharing, synchronous and capacity aborts — run with TxSampler
*and* the zero-cost instrumentation recorder attached to the same
execution; the sampled profile must agree with the exact one.
"""

from conftest import SCALE, THREADS, emit, once

from repro.experiments.correctness import render_section72, section72


def test_sec72_validation(benchmark):
    rows = once(benchmark, section72, n_threads=THREADS, scale=SCALE, seed=1)
    emit(render_section72(rows))
    failures = [(r.name, r.problems) for r in rows if not r.ok]
    assert failures == [], failures

    # quantitative agreement where counts are large: the sampled
    # abort/commit ratio tracks the exact one within 2x for the
    # contended micros
    for r in rows:
        if r.name in ("micro_moderate_abort", "micro_high_abort"):
            assert r.true_ratio > 0
            if r.est_ratio == float("inf"):
                # commits so rare no commit sample landed: the exact
                # ratio must itself be extreme for this to be a match
                assert r.true_ratio > 10, (r.name, r.true_ratio)
            else:
                assert 0.3 <= r.est_ratio / r.true_ratio <= 3.0, (
                    r.name, r.est_ratio, r.true_ratio
                )
