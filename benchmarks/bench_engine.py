#!/usr/bin/env python
"""Engine perf baseline: time the micro suite, emit ``BENCH_engine.json``.

ROADMAP item 1 (speed up the simulation engine) needs a recorded
trajectory before any optimization claim means anything.  This script is
that trajectory: it runs every ``micro`` suite workload profiled, takes
the **median wall time** over ``--repeats`` runs, and derives throughput
numbers from :mod:`repro.obs.selfprof` self-diagnostics — simulated
events retired and samples delivered per wall-clock second.

Regenerate the committed baseline from the repo root with::

    PYTHONPATH=src python benchmarks/bench_engine.py --out benchmarks/BENCH_engine.json

The output is deterministic in shape but not in timings, so diffs of the
file show host drift, not code drift; compare ``events_per_sec`` ratios
across commits on the *same* host.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.runner import run_workload            # noqa: E402
from repro.htmbench.base import WORKLOADS, workload_names    # noqa: E402
from repro.obs.selfprof import diagnose                      # noqa: E402

#: defaults sized so the full suite regenerates in well under a minute
DEFAULT_THREADS = 4
DEFAULT_SCALE = 1.0
DEFAULT_SEED = 0
DEFAULT_REPEATS = 5


def bench_workload(name: str, *, n_threads: int, scale: float, seed: int,
                   repeats: int) -> dict:
    """Median-of-``repeats`` timing for one profiled workload run."""
    times: list[float] = []
    events = 0
    samples = 0
    makespan = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = run_workload(name, n_threads=n_threads, scale=scale,
                           seed=seed, profile=True)
        times.append(time.perf_counter() - t0)
        assert out.sim is not None and out.profiler is not None
        diag = diagnose(out.profiler, out.sim)
        # identical seed+config ⇒ identical simulated run; keep the
        # counts from the last repeat (they all agree)
        events = sum(out.result.pmu_totals.values())
        samples = diag.handler_invocations
        makespan = out.result.makespan
    median = statistics.median(times)
    return {
        "workload": name,
        "median_wall_s": round(median, 6),
        "min_wall_s": round(min(times), 6),
        "pmu_events": events,
        "samples_delivered": samples,
        "makespan_cycles": makespan,
        "events_per_sec": round(events / median) if median else 0,
        "samples_per_sec": round(samples / median) if median else 0,
    }


def run_suite(*, n_threads: int, scale: float, seed: int, repeats: int,
              workloads: list[str] | None = None) -> dict:
    names = workloads or workload_names(suite="micro")
    rows = [
        bench_workload(name, n_threads=n_threads, scale=scale, seed=seed,
                       repeats=repeats)
        for name in names
    ]
    return {
        "bench": "engine",
        "config": {
            "n_threads": n_threads,
            "scale": scale,
            "seed": seed,
            "repeats": repeats,
            "python": platform.python_version(),
        },
        "workloads": rows,
        "totals": {
            "median_wall_s": round(sum(r["median_wall_s"] for r in rows), 6),
            "pmu_events": sum(r["pmu_events"] for r in rows),
            "samples_delivered": sum(r["samples_delivered"] for r in rows),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(Path(__file__).parent / "BENCH_engine.json"),
                        help="output path (default: %(default)s)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="runs per workload; the median is kept "
                             "(default: %(default)s)")
    parser.add_argument("--threads", type=int, default=DEFAULT_THREADS)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--workloads", nargs="*", metavar="NAME",
                        help="subset to bench (default: the micro suite)")
    args = parser.parse_args(argv)

    for name in args.workloads or []:
        if name not in WORKLOADS:
            parser.error(f"unknown workload {name!r}")

    doc = run_suite(n_threads=args.threads, scale=args.scale,
                    seed=args.seed, repeats=args.repeats,
                    workloads=args.workloads)
    Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True)
                              + "\n")
    width = max(len(r["workload"]) for r in doc["workloads"])
    for row in doc["workloads"]:
        print(f"{row['workload']:{width}s}  "
              f"{row['median_wall_s']*1e3:8.1f} ms  "
              f"{row['events_per_sec']:>12,d} ev/s  "
              f"{row['samples_per_sec']:>8,d} samp/s")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
