"""Table 1: CLOMP-TM's three inputs and their expected characteristics.

Regenerates the table and *verifies* each input actually exhibits its
stated trait on our substrate: Adjacent = rare conflicts, FirstParts =
high conflicts, Random = rare (cross-thread) conflicts but footprint-
bound (our model's analogue of "cache prefetch unfriendly").
"""

from conftest import SCALE, THREADS, emit, once

from repro.experiments.clomp import render_table1
from repro.experiments.runner import run_workload
from repro.htmbench.clomp_tm import (
    SCATTER_ADJACENT,
    SCATTER_FIRSTPARTS,
    SCATTER_RANDOM,
)


def _run_input(scatter: int):
    return run_workload(
        "clomp_tm", n_threads=THREADS, scale=SCALE, seed=0,
        txn_size="large", scatter=scatter,
    ).result


def test_table1_input_characteristics(benchmark):
    def experiment():
        return {s: _run_input(s) for s in
                (SCATTER_ADJACENT, SCATTER_FIRSTPARTS, SCATTER_RANDOM)}

    results = once(benchmark, experiment)
    adjacent = results[SCATTER_ADJACENT]
    firstparts = results[SCATTER_FIRSTPARTS]
    rnd = results[SCATTER_RANDOM]

    lines = [render_table1(), "", "measured (large transactions):"]
    for name, r in (("Adjacent", adjacent), ("FirstParts", firstparts),
                    ("Random", rnd)):
        lines.append(
            f"  {name:11s} commits={r.commits:5d} "
            f"conflicts={r.aborts_by_reason.get('conflict', 0):5d} "
            f"capacity={r.aborts_by_reason.get('capacity', 0):5d}"
        )
    emit("\n".join(lines))

    # input 1: rare conflicts
    assert adjacent.aborts_by_reason.get("conflict", 0) <= \
        max(2, adjacent.commits * 0.1)
    # input 2: high conflicts
    assert firstparts.aborts_by_reason.get("conflict", 0) > \
        10 * max(1, adjacent.aborts_by_reason.get("conflict", 0))
    # input 3: the footprint effect — capacity aborts appear only here
    assert rnd.aborts_by_reason.get("capacity", 0) > 0
    assert adjacent.aborts_by_reason.get("capacity", 0) == 0
    assert firstparts.aborts_by_reason.get("capacity", 0) == 0
