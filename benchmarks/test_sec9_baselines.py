"""§9 related-work comparison: TxSampler vs Perf-style sampling vs
TSXProf record-and-replay vs pure instrumentation.

The quantities the paper argues with:

* Perf/VTune misattribute in-transaction samples to the post-abort
  context and derive no time decomposition;
* TSXProf needs two executions, the replay one heavily instrumented
  (the paper cites >=3x there) and perturbing abort behaviour;
* instrumentation inflates transactional footprints, manufacturing
  aborts;
* TxSampler does one pass at a few percent.
"""

import random

from conftest import SCALE, THREADS, emit, once

from repro.baselines import InstrumentationProfiler, PerfProfiler, TsxProfSim
from repro.baselines.perf import MISATTRIBUTED
from repro.core import metrics as m
from repro.experiments.runner import run_workload
from repro.htmbench import get_workload
from repro.sim import MachineConfig, Simulator

WORKLOAD = "kmeans"


def _full_comparison():
    native = run_workload(WORKLOAD, n_threads=THREADS, scale=SCALE, seed=5)
    tx = run_workload(WORKLOAD, n_threads=THREADS, scale=SCALE, seed=5,
                      profile=True)
    # perf-style
    cfg = MachineConfig(n_threads=THREADS)
    perf = PerfProfiler()
    sim = Simulator(cfg, n_threads=THREADS, seed=5, profiler=perf)
    wl = get_workload(WORKLOAD)
    sim.set_programs(wl.build(sim, THREADS, SCALE, random.Random(5 * 7919 + 13)))
    perf_result = sim.run()
    perf_root = perf.merged()
    # tsxprof + instrumentation
    tsx = TsxProfSim().profile(get_workload(WORKLOAD), n_threads=THREADS,
                               scale=SCALE, seed=5)
    instr = InstrumentationProfiler().profile(
        get_workload(WORKLOAD), n_threads=THREADS, scale=SCALE, seed=5)
    return native, tx, perf_result, perf_root, tsx, instr


def test_sec9_profiler_comparison(benchmark):
    native, tx, perf_result, perf_root, tsx, instr = once(
        benchmark, _full_comparison
    )
    tx_overhead = tx.result.makespan / native.result.makespan - 1

    lines = ["=== §9: profiler comparison on " + WORKLOAD + " ==="]
    lines.append(f"  TxSampler (1 pass)    : {tx_overhead:+8.2%}")
    lines.append(
        f"  perf-style (1 pass)   : "
        f"{perf_result.makespan / native.result.makespan - 1:+8.2%}"
        "   (no Eq.2 decomposition, misattributed in-txn samples)"
    )
    lines.append(f"  TSXProf record pass   : {tsx.record_overhead:+8.2%}")
    lines.append(f"  TSXProf replay pass   : {tsx.replay_overhead:+8.2%}")
    lines.append(f"  TSXProf total         : {tsx.total_overhead:+8.2%}"
                 f"   (trace {tsx.trace_bytes} bytes)")
    lines.append(f"  instrumentation       : {instr.overhead:+8.2%}"
                 f"   (abort inflation {instr.abort_inflation:+.1%})")
    total_w = perf_root.total(m.W)
    mis = perf_root.total(MISATTRIBUTED)
    if total_w:
        lines.append(
            f"  perf misattribution   : {mis:.0f}/{total_w:.0f} cycles "
            f"samples ({mis / total_w:.1%}) filed at the wrong context"
        )
    emit("\n".join(lines))

    # the paper's ordering: TxSampler's one pass is far cheaper than
    # TSXProf's two passes
    assert tsx.total_overhead > 1.0  # at least a whole second execution
    assert tsx.replay_overhead > tsx.record_overhead
    assert tsx.total_overhead > tx_overhead + 0.5
    # instrumentation *perturbs* what it measures: the abort behaviour
    # under instrumentation differs substantially from native
    assert abs(instr.abort_inflation) > 0.15, instr.abort_inflation
    # perf really does misattribute transactional samples
    assert mis > 0
    # and derives no decomposition at all
    assert perf_root.total(m.T_TX) == 0 and perf_root.total(m.T_WAIT) == 0
