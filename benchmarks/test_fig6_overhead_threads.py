"""Figure 6: overhead vs. thread count (STAMP average).

Paper: TxSampler maintains low overhead regardless of thread count
(1, 2, 4, 8, 14 threads; the bars hover around 1.0x with small error
bars).
"""

from conftest import SCALE, emit, once

from repro.experiments.overhead import (
    FIG6_BENCHMARKS,
    FIG6_THREAD_COUNTS,
    figure6,
    render_figure6,
)


def test_fig6_overhead_vs_thread_count(benchmark):
    data = once(
        benchmark, figure6,
        thread_counts=FIG6_THREAD_COUNTS, benchmarks=FIG6_BENCHMARKS,
        scale=SCALE, runs=2,
    )
    emit(render_figure6(data))

    # low overhead at every thread count — no blow-up with parallelism
    for n, (mean, _spread) in data.items():
        assert -0.10 <= mean <= 0.12, (
            f"{n} threads: STAMP mean overhead {mean:.2%}"
        )
