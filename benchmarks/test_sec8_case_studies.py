"""§8 case studies: Dedup, LevelDB, Histo — the full investigation loop.

Each case study profiles the naive program, walks the Figure 1 decision
tree, verifies the paper's reported symptom is in the profile, applies
the published fix and confirms the improvement.
"""

from conftest import SCALE, THREADS, emit, once

from repro.experiments.casestudy import (
    dedup_case_study,
    histo_case_study,
    leveldb_case_study,
)


def test_sec81_dedup(benchmark):
    cs = once(benchmark, dedup_case_study, n_threads=THREADS, scale=SCALE,
              seed=7)
    emit(cs.render())
    assert cs.ok, cs.problems
    assert cs.speedup > 1.0
    # the traversal reached the abort analysis, as in Figure 1's red path
    nodes = [s.node for s in cs.guidance.steps]
    assert "time-analysis" in nodes
    assert "abort-analysis" in nodes


def test_sec82_leveldb(benchmark):
    cs = once(benchmark, leveldb_case_study, n_threads=THREADS, scale=SCALE,
              seed=5)
    emit(cs.render())
    assert cs.ok, cs.problems
    assert cs.speedup > 1.0


def test_sec83_histo(benchmark):
    cs = once(benchmark, histo_case_study, n_threads=THREADS, scale=SCALE,
              seed=4)
    emit(cs.render())
    assert cs.ok, cs.problems
    # the headline: coalescing is a multi-x win on input 1
    assert cs.speedup > 1.5
