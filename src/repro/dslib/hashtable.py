"""A chained hash table in simulated memory.

Layout: a bucket array of head pointers plus chain nodes of three words
``(key, value, next)``.  The hash function is pluggable because hash
quality *is* the Dedup case study: the paper's bug is a hash that uses
only a few bits, filling 2.2% of the slots with very long chains whose
traversal blows the transactional footprint (capacity aborts) and incurs
conflicts; the fix XORs in the low 32 bits, spreading keys out.

The operations are registered :func:`~repro.sim.program.simfn`s so they
appear by name in call paths (``hashtable_search`` in Figure 9) — invoke
them through ``ctx.call``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from ..sim.memory import WORD, Memory
from ..sim.program import simfn

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext

_OFF_KEY = 0
_OFF_VAL = WORD
_OFF_NEXT = 2 * WORD


def bad_hash(key: int, n_buckets: int) -> int:
    """The Dedup bug: only high bits participate.  Chunk fingerprints of
    one input stream share their high bits and differ low, so nearly all
    keys collide into a handful of buckets (the paper measured 2.2% slot
    utilization and "a long linked list of keys")."""
    return ((key >> 24) ^ (key >> 18)) % n_buckets


def good_hash(key: int, n_buckets: int) -> int:
    """The paper's fix: mix the low 32 bits in (82% utilization).

    Fibonacci/Knuth multiplicative hashing: spreads keys regardless of
    their stride, unlike the shift-only bad hash."""
    key = (key * 2654435761) & 0xFFFF_FFFF
    key ^= key >> 16
    return key % n_buckets


class HashTable:
    """Chained hash table; nodes are allocated from simulated memory."""

    __slots__ = ("memory", "n_buckets", "buckets_base", "hash_fn", "n_items",
                 "node_align")

    def __init__(self, memory: Memory, n_buckets: int,
                 hash_fn: Callable[[int, int], int] = good_hash,
                 node_align: int = WORD) -> None:
        if n_buckets <= 0:
            raise ValueError("need at least one bucket")
        self.memory = memory
        self.n_buckets = n_buckets
        self.buckets_base = memory.alloc(n_buckets * WORD, align=64)
        self.hash_fn = hash_fn
        self.n_items = 0
        # real-world entries (e.g. dedup chunk descriptors) span a whole
        # cache line; node_align=64 makes every visited node cost one
        # read-set line, which is what drives chain-walk capacity aborts
        self.node_align = node_align

    def bucket_addr(self, key: int) -> int:
        return self.buckets_base + self.hash_fn(key, self.n_buckets) * WORD

    def _new_node(self, key: int, value: int) -> int:
        node = self.memory.alloc(3 * WORD, align=self.node_align)
        self.memory.write(node + _OFF_KEY, key)
        self.memory.write(node + _OFF_VAL, value)
        self.memory.write(node + _OFF_NEXT, 0)
        return node

    # -- host-side (setup / verification) --------------------------------------

    def host_insert(self, key: int, value: int) -> None:
        mem = self.memory
        node = self._new_node(key, value)
        head_addr = self.bucket_addr(key)
        mem.write(node + _OFF_NEXT, mem.read(head_addr))
        mem.write(head_addr, node)
        self.n_items += 1

    def host_lookup(self, key: int) -> int | None:
        mem = self.memory
        node = mem.read(self.bucket_addr(key))
        while node:
            if mem.read(node + _OFF_KEY) == key:
                return mem.read(node + _OFF_VAL)
            node = mem.read(node + _OFF_NEXT)
        return None

    def utilization(self) -> float:
        """Fraction of buckets with at least one entry (the 2.2% vs 82%
        diagnostic from the Dedup case study)."""
        mem = self.memory
        used = sum(
            1
            for i in range(self.n_buckets)
            if mem.read(self.buckets_base + i * WORD)
        )
        return used / self.n_buckets

    def chain_lengths(self) -> list[int]:
        mem = self.memory
        lengths = []
        for i in range(self.n_buckets):
            n = 0
            node = mem.read(self.buckets_base + i * WORD)
            while node:
                n += 1
                node = mem.read(node + _OFF_NEXT)
            lengths.append(n)
        return lengths


# ---------------------------------------------------------------------------
# simulated operations (profile-visible functions)
# ---------------------------------------------------------------------------


@simfn
def hashtable_search(ctx: "ThreadContext", ht: HashTable, key: int):
    """Walk the chain for ``key``; returns the node address or 0.

    Inside a transaction every visited node joins the read set — a long
    chain is exactly the capacity-abort machine of the Dedup study.
    """
    node = yield from ctx.load(ht.bucket_addr(key))
    while node:
        k = yield from ctx.load(node + _OFF_KEY)
        if k == key:
            return node
        node = yield from ctx.load(node + _OFF_NEXT)
    return 0


@simfn
def hashtable_insert(ctx: "ThreadContext", ht: HashTable, key: int, value: int):
    """Prepend a node to ``key``'s chain (caller checks for duplicates)."""
    node = ht._new_node(key, value)  # address reservation is free;
    # initializing the node costs simulated stores:
    yield from ctx.store(node + _OFF_KEY, key)
    yield from ctx.store(node + _OFF_VAL, value)
    head_addr = ht.bucket_addr(key)
    head = yield from ctx.load(head_addr)
    yield from ctx.store(node + _OFF_NEXT, head)
    yield from ctx.store(head_addr, node)
    # NB: ht.n_items is host-side bookkeeping for host_insert only; a
    # speculative attempt may abort and re-run, so simulated inserts
    # must not touch host state (count via chain_lengths() instead)
    return node


@simfn
def hashtable_get_value(ctx: "ThreadContext", ht: HashTable, node: int):
    value = yield from ctx.load(node + _OFF_VAL)
    return value


@simfn
def hashtable_set_value(ctx: "ThreadContext", ht: HashTable, node: int,
                        value: int):
    yield from ctx.store(node + _OFF_VAL, value)


@simfn
def hashtable_bump(ctx: "ThreadContext", ht: HashTable, node: int,
                   delta: int = 1):
    """Increment the value stored at ``node``; returns the new value."""
    addr = node + _OFF_VAL
    value = yield from ctx.load(addr)
    yield from ctx.store(addr, value + delta)
    return value + delta
