"""Data structures over simulated memory — the substrate HTMBench uses.

Every structure stores its state at simulated addresses, so HTM conflict
detection, capacity accounting, and the profiler's contention analysis
see exactly the cache-line traffic a native implementation would produce.
Host-side ``host_*`` methods build/verify state at zero simulated cost;
the ``@simfn`` operations execute through a
:class:`~repro.sim.thread.ThreadContext` and are profile-visible.
"""

from .array import IntArray
from .avltree import AvlTree, avl_insert, avl_search
from .bplustree import (
    BPlusTree,
    ORDER as BTREE_ORDER,
    btree_insert_leaf,
    btree_lookup,
    btree_update,
)
from .hashtable import (
    HashTable,
    bad_hash,
    good_hash,
    hashtable_bump,
    hashtable_get_value,
    hashtable_insert,
    hashtable_search,
    hashtable_set_value,
)
from .linkedlist import (
    SortedList,
    list_contains,
    list_insert,
    list_locate,
    list_remove,
    list_step,
)
from .queue import EMPTY, FULL, RingQueue, queue_dequeue, queue_enqueue
from .rbtree import RedBlackTree, rbtree_insert, rbtree_lookup
from .skiplist import (
    SkipList,
    skiplist_contains,
    skiplist_insert,
    skiplist_remove,
)

__all__ = [
    "IntArray",
    "HashTable",
    "bad_hash",
    "good_hash",
    "hashtable_search",
    "hashtable_insert",
    "hashtable_bump",
    "hashtable_get_value",
    "hashtable_set_value",
    "SortedList",
    "list_locate",
    "list_contains",
    "list_insert",
    "list_remove",
    "list_step",
    "AvlTree",
    "avl_search",
    "avl_insert",
    "SkipList",
    "skiplist_contains",
    "skiplist_insert",
    "skiplist_remove",
    "BPlusTree",
    "BTREE_ORDER",
    "btree_lookup",
    "btree_update",
    "btree_insert_leaf",
    "RingQueue",
    "queue_enqueue",
    "queue_dequeue",
    "EMPTY",
    "FULL",
    "RedBlackTree",
    "rbtree_lookup",
    "rbtree_insert",
]
