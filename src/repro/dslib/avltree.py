"""An AVL tree in simulated memory.

Node layout (5 words): ``(key, value, left, right, height)``.  A tree
root cell holds the root pointer so rotations at the root are plain
stores.  Searches read a logarithmic path (small read set — HTM friendly);
inserts rebalance with rotations (writes along the path).

The AVL-tree application of Table 2 uses this structure: the naive
version serializes readers through a reader lock (huge ``T_wait``), the
optimized version elides the read lock and lets HTM run readers
concurrently (1.21x).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.memory import WORD, Memory
from ..sim.program import simfn

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext

_KEY = 0
_VAL = WORD
_LEFT = 2 * WORD
_RIGHT = 3 * WORD
_HEIGHT = 4 * WORD


class AvlTree:
    """AVL tree with simulated-memory nodes and a root pointer cell."""

    __slots__ = ("memory", "root_cell")

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self.root_cell = memory.alloc(WORD, align=64)

    def _new_node(self, key: int, value: int) -> int:
        node = self.memory.alloc(5 * WORD, align=WORD)
        mem = self.memory
        mem.write(node + _KEY, key)
        mem.write(node + _VAL, value)
        mem.write(node + _LEFT, 0)
        mem.write(node + _RIGHT, 0)
        mem.write(node + _HEIGHT, 1)
        return node

    # -- host-side construction and checking ------------------------------------

    def host_insert(self, key: int, value: int = 0) -> None:
        mem = self.memory
        root = mem.read(self.root_cell)
        mem.write(self.root_cell, self._host_insert(root, key, value))

    def _host_insert(self, node: int, key: int, value: int) -> int:
        mem = self.memory
        if node == 0:
            return self._new_node(key, value)
        k = mem.read(node + _KEY)
        if key < k:
            mem.write(node + _LEFT, self._host_insert(
                mem.read(node + _LEFT), key, value))
        elif key > k:
            mem.write(node + _RIGHT, self._host_insert(
                mem.read(node + _RIGHT), key, value))
        else:
            mem.write(node + _VAL, value)
            return node
        return self._host_rebalance(node)

    def _h(self, node: int) -> int:
        return self.memory.read(node + _HEIGHT) if node else 0

    def _host_fix_height(self, node: int) -> None:
        self.memory.write(
            node + _HEIGHT,
            1 + max(self._h(self.memory.read(node + _LEFT)),
                    self._h(self.memory.read(node + _RIGHT))),
        )

    def _host_rot_right(self, y: int) -> int:
        mem = self.memory
        x = mem.read(y + _LEFT)
        mem.write(y + _LEFT, mem.read(x + _RIGHT))
        mem.write(x + _RIGHT, y)
        self._host_fix_height(y)
        self._host_fix_height(x)
        return x

    def _host_rot_left(self, x: int) -> int:
        mem = self.memory
        y = mem.read(x + _RIGHT)
        mem.write(x + _RIGHT, mem.read(y + _LEFT))
        mem.write(y + _LEFT, x)
        self._host_fix_height(x)
        self._host_fix_height(y)
        return y

    def _host_rebalance(self, node: int) -> int:
        mem = self.memory
        self._host_fix_height(node)
        bal = self._h(mem.read(node + _LEFT)) - self._h(mem.read(node + _RIGHT))
        if bal > 1:
            left = mem.read(node + _LEFT)
            if self._h(mem.read(left + _LEFT)) < self._h(mem.read(left + _RIGHT)):
                mem.write(node + _LEFT, self._host_rot_left(left))
            return self._host_rot_right(node)
        if bal < -1:
            right = mem.read(node + _RIGHT)
            if self._h(mem.read(right + _RIGHT)) < self._h(mem.read(right + _LEFT)):
                mem.write(node + _RIGHT, self._host_rot_right(right))
            return self._host_rot_left(node)
        return node

    def host_lookup(self, key: int) -> int | None:
        mem = self.memory
        node = mem.read(self.root_cell)
        while node:
            k = mem.read(node + _KEY)
            if key == k:
                return mem.read(node + _VAL)
            node = mem.read(node + (_LEFT if key < k else _RIGHT))
        return None

    def host_keys_inorder(self) -> list[int]:
        out: list[int] = []

        def rec(node: int) -> None:
            if not node:
                return
            rec(self.memory.read(node + _LEFT))
            out.append(self.memory.read(node + _KEY))
            rec(self.memory.read(node + _RIGHT))

        rec(self.memory.read(self.root_cell))
        return out

    def host_height(self) -> int:
        return self._h(self.memory.read(self.root_cell))

    def host_check_balanced(self) -> bool:
        ok = True

        def rec(node: int) -> int:
            nonlocal ok
            if not node:
                return 0
            lh = rec(self.memory.read(node + _LEFT))
            rh = rec(self.memory.read(node + _RIGHT))
            if abs(lh - rh) > 1:
                ok = False
            return 1 + max(lh, rh)

        rec(self.memory.read(self.root_cell))
        return ok


# ---------------------------------------------------------------------------
# simulated operations
# ---------------------------------------------------------------------------


@simfn
def avl_search(ctx: "ThreadContext", tree: AvlTree, key: int):
    """Search for ``key``; returns its value or None."""
    node = yield from ctx.load(tree.root_cell)
    while node:
        k = yield from ctx.load(node + _KEY)
        if k == key:
            value = yield from ctx.load(node + _VAL)
            return value
        node = yield from ctx.load(node + (_LEFT if key < k else _RIGHT))
    return None


def _sim_h(ctx, node):
    if not node:
        return 0
    h = yield from ctx.load(node + _HEIGHT)
    return h


def _sim_fix_height(ctx, node):
    left = yield from ctx.load(node + _LEFT)
    right = yield from ctx.load(node + _RIGHT)
    lh = yield from _sim_h(ctx, left)
    rh = yield from _sim_h(ctx, right)
    yield from ctx.store(node + _HEIGHT, 1 + max(lh, rh))


def _sim_rot_right(ctx, y):
    x = yield from ctx.load(y + _LEFT)
    t = yield from ctx.load(x + _RIGHT)
    yield from ctx.store(y + _LEFT, t)
    yield from ctx.store(x + _RIGHT, y)
    yield from _sim_fix_height(ctx, y)
    yield from _sim_fix_height(ctx, x)
    return x


def _sim_rot_left(ctx, x):
    y = yield from ctx.load(x + _RIGHT)
    t = yield from ctx.load(y + _LEFT)
    yield from ctx.store(x + _RIGHT, t)
    yield from ctx.store(y + _LEFT, x)
    yield from _sim_fix_height(ctx, x)
    yield from _sim_fix_height(ctx, y)
    return y


def _sim_insert(ctx, tree, node, key, value):
    if node == 0:
        fresh = tree._new_node(key, 0)
        yield from ctx.store(fresh + _KEY, key)
        yield from ctx.store(fresh + _VAL, value)
        return fresh
    k = yield from ctx.load(node + _KEY)
    if key == k:
        yield from ctx.store(node + _VAL, value)
        return node
    side = _LEFT if key < k else _RIGHT
    child = yield from ctx.load(node + side)
    new_child = yield from _sim_insert(ctx, tree, child, key, value)
    if new_child != child:
        yield from ctx.store(node + side, new_child)
    # rebalance
    yield from _sim_fix_height(ctx, node)
    left = yield from ctx.load(node + _LEFT)
    right = yield from ctx.load(node + _RIGHT)
    lh = yield from _sim_h(ctx, left)
    rh = yield from _sim_h(ctx, right)
    bal = lh - rh
    if bal > 1:
        ll = yield from ctx.load(left + _LEFT)
        lr = yield from ctx.load(left + _RIGHT)
        llh = yield from _sim_h(ctx, ll)
        lrh = yield from _sim_h(ctx, lr)
        if llh < lrh:
            rotated = yield from _sim_rot_left(ctx, left)
            yield from ctx.store(node + _LEFT, rotated)
        result = yield from _sim_rot_right(ctx, node)
        return result
    if bal < -1:
        rl = yield from ctx.load(right + _LEFT)
        rr = yield from ctx.load(right + _RIGHT)
        rlh = yield from _sim_h(ctx, rl)
        rrh = yield from _sim_h(ctx, rr)
        if rrh < rlh:
            rotated = yield from _sim_rot_right(ctx, right)
            yield from ctx.store(node + _RIGHT, rotated)
        result = yield from _sim_rot_left(ctx, node)
        return result
    return node


@simfn
def avl_insert(ctx: "ThreadContext", tree: AvlTree, key: int, value: int = 0):
    """Insert (or update) ``key``; rebalances with AVL rotations."""
    root = yield from ctx.load(tree.root_cell)
    new_root = yield from _sim_insert(ctx, tree, root, key, value)
    if new_root != root:
        yield from ctx.store(tree.root_cell, new_root)
