"""A sorted singly-linked integer list in simulated memory.

The Synchrobench ``linkedlist`` workload: every operation traverses from
the head, so a transactional traversal puts the whole prefix in the read
set — any concurrent insert/delete in that prefix conflicts.  That is why
the paper's profile shows a *high number* of conflict aborts with a *low
average penalty* (aborts come early in small transactions), and why the
published fix bounds transaction size with auxiliary locks (hand-over-hand
ranges) for a 3.78x speedup.

Node layout: ``(key, next)`` — two words.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.memory import WORD, Memory
from ..sim.program import simfn

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext

_OFF_KEY = 0
_OFF_NEXT = WORD

#: sentinel keys so the list always has head/tail anchors
HEAD_KEY = -(1 << 62)
TAIL_KEY = 1 << 62


class SortedList:
    """Sorted list with sentinel head and tail nodes."""

    __slots__ = ("memory", "head")

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        tail = self._new_node(TAIL_KEY, 0)
        self.head = self._new_node(HEAD_KEY, tail)

    def _new_node(self, key: int, nxt: int) -> int:
        node = self.memory.alloc(2 * WORD, align=WORD)
        self.memory.write(node + _OFF_KEY, key)
        self.memory.write(node + _OFF_NEXT, nxt)
        return node

    # -- host-side --------------------------------------------------------------

    def host_insert(self, key: int) -> bool:
        mem = self.memory
        prev, cur = self.head, mem.read(self.head + _OFF_NEXT)
        while mem.read(cur + _OFF_KEY) < key:
            prev, cur = cur, mem.read(cur + _OFF_NEXT)
        if mem.read(cur + _OFF_KEY) == key:
            return False
        node = self._new_node(key, cur)
        mem.write(prev + _OFF_NEXT, node)
        return True

    def host_keys(self) -> list[int]:
        mem = self.memory
        keys = []
        node = mem.read(self.head + _OFF_NEXT)
        while mem.read(node + _OFF_KEY) != TAIL_KEY:
            keys.append(mem.read(node + _OFF_KEY))
            node = mem.read(node + _OFF_NEXT)
        return keys

    def host_contains(self, key: int) -> bool:
        return key in self.host_keys()


# ---------------------------------------------------------------------------
# simulated operations
# ---------------------------------------------------------------------------


@simfn
def list_locate(ctx: "ThreadContext", lst: SortedList, key: int,
                start: int = 0):
    """Find ``(prev, cur)`` such that ``prev.key < key <= cur.key``,
    starting from ``start`` (defaults to the head sentinel)."""
    prev = start or lst.head
    cur = yield from ctx.load(prev + _OFF_NEXT)
    while True:
        k = yield from ctx.load(cur + _OFF_KEY)
        if k >= key:
            return prev, cur
        prev = cur
        cur = yield from ctx.load(cur + _OFF_NEXT)


@simfn
def list_contains(ctx: "ThreadContext", lst: SortedList, key: int):
    _, cur = yield from ctx.call(list_locate, lst, key)
    k = yield from ctx.load(cur + _OFF_KEY)
    return k == key


@simfn
def list_insert(ctx: "ThreadContext", lst: SortedList, key: int):
    """Insert ``key`` if absent; returns True if inserted."""
    prev, cur = yield from ctx.call(list_locate, lst, key)
    k = yield from ctx.load(cur + _OFF_KEY)
    if k == key:
        return False
    node = lst._new_node(key, 0)
    yield from ctx.store(node + _OFF_KEY, key)
    yield from ctx.store(node + _OFF_NEXT, cur)
    yield from ctx.store(prev + _OFF_NEXT, node)
    return True


@simfn
def list_remove(ctx: "ThreadContext", lst: SortedList, key: int):
    """Remove ``key`` if present; returns True if removed."""
    prev, cur = yield from ctx.call(list_locate, lst, key)
    k = yield from ctx.load(cur + _OFF_KEY)
    if k != key:
        return False
    nxt = yield from ctx.load(cur + _OFF_NEXT)
    yield from ctx.store(prev + _OFF_NEXT, nxt)
    return True


@simfn
def list_step(ctx: "ThreadContext", lst: SortedList, node: int, key: int,
              max_steps: int):
    """Advance at most ``max_steps`` nodes toward ``key``.

    The building block of the *optimized* linkedlist workload: traversal
    is chopped into bounded chunks so each transaction's read set — and
    conflict window — stays small (the "limit transaction size with
    auxiliary locks" fix of Table 2).

    Returns ``(prev, cur, done)``; ``done`` means ``cur.key >= key``.
    """
    prev = node
    cur = yield from ctx.load(prev + _OFF_NEXT)
    steps = 0
    while steps < max_steps:
        k = yield from ctx.load(cur + _OFF_KEY)
        if k >= key:
            return prev, cur, True
        prev = cur
        cur = yield from ctx.load(cur + _OFF_NEXT)
        steps += 1
    return prev, cur, False
