"""A B+ tree in simulated memory (LevelDB/BerkeleyDB-style substrate).

Fixed-order nodes; layout (words):

    [0] is_leaf          [1] nkeys
    [2 .. 2+ORDER)       keys
    [2+ORDER .. 2+2*ORDER+1)  children (internal) or values (leaf)
    [last]               next-leaf pointer (leaves only)

Transactional behaviour mirrors real index structures: lookups read a
root-to-leaf path (small read set), inserts write one leaf — unless a
split propagates upward, momentarily inflating the write set, which is
how index hot paths produce occasional capacity/conflict spikes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.memory import WORD, Memory
from ..sim.program import simfn

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext

ORDER = 8  # max keys per node

_IS_LEAF = 0
_NKEYS = WORD
_KEYS = 2 * WORD
# one spare key/pointer slot: inserts overflow to ORDER+1 entries
# momentarily before the split rebalances
_PTRS = _KEYS + (ORDER + 1) * WORD
_NEXT = _PTRS + (ORDER + 2) * WORD
_NODE_WORDS = 2 + (ORDER + 1) + (ORDER + 2) + 1


class BPlusTree:
    """Order-:data:`ORDER` B+ tree with a root pointer cell."""

    __slots__ = ("memory", "root_cell")

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self.root_cell = memory.alloc(WORD, align=64)
        root = self._new_node(is_leaf=True)
        memory.write(self.root_cell, root)

    def _new_node(self, is_leaf: bool) -> int:
        node = self.memory.alloc(_NODE_WORDS * WORD, align=64)
        mem = self.memory
        mem.write(node + _IS_LEAF, 1 if is_leaf else 0)
        mem.write(node + _NKEYS, 0)
        mem.write(node + _NEXT, 0)
        return node

    # -- host-side ----------------------------------------------------------------

    def host_insert(self, key: int, value: int) -> None:
        mem = self.memory
        root = mem.read(self.root_cell)
        split = self._host_insert(root, key, value)
        if split is not None:
            mid_key, right = split
            new_root = self._new_node(is_leaf=False)
            mem.write(new_root + _NKEYS, 1)
            mem.write(new_root + _KEYS, mid_key)
            mem.write(new_root + _PTRS, root)
            mem.write(new_root + _PTRS + WORD, right)
            mem.write(self.root_cell, new_root)

    def _host_insert(self, node: int, key: int,
                     value: int) -> tuple[int, int] | None:
        mem = self.memory
        n = mem.read(node + _NKEYS)
        if mem.read(node + _IS_LEAF):
            i = 0
            while i < n and mem.read(node + _KEYS + i * WORD) < key:
                i += 1
            if i < n and mem.read(node + _KEYS + i * WORD) == key:
                mem.write(node + _PTRS + i * WORD, value)
                return None
            for j in range(n, i, -1):
                mem.write(node + _KEYS + j * WORD,
                          mem.read(node + _KEYS + (j - 1) * WORD))
                mem.write(node + _PTRS + j * WORD,
                          mem.read(node + _PTRS + (j - 1) * WORD))
            mem.write(node + _KEYS + i * WORD, key)
            mem.write(node + _PTRS + i * WORD, value)
            mem.write(node + _NKEYS, n + 1)
            if n + 1 <= ORDER:
                return None
            return self._host_split_leaf(node)
        # internal
        i = 0
        while i < n and key >= mem.read(node + _KEYS + i * WORD):
            i += 1
        child = mem.read(node + _PTRS + i * WORD)
        split = self._host_insert(child, key, value)
        if split is None:
            return None
        mid_key, right = split
        for j in range(n, i, -1):
            mem.write(node + _KEYS + j * WORD,
                      mem.read(node + _KEYS + (j - 1) * WORD))
            mem.write(node + _PTRS + (j + 1) * WORD,
                      mem.read(node + _PTRS + j * WORD))
        mem.write(node + _KEYS + i * WORD, mid_key)
        mem.write(node + _PTRS + (i + 1) * WORD, right)
        mem.write(node + _NKEYS, n + 1)
        if n + 1 <= ORDER:
            return None
        return self._host_split_internal(node)

    def _host_split_leaf(self, node: int) -> tuple[int, int]:
        mem = self.memory
        n = mem.read(node + _NKEYS)
        right = self._new_node(is_leaf=True)
        half = n // 2
        for j in range(half, n):
            mem.write(right + _KEYS + (j - half) * WORD,
                      mem.read(node + _KEYS + j * WORD))
            mem.write(right + _PTRS + (j - half) * WORD,
                      mem.read(node + _PTRS + j * WORD))
        mem.write(right + _NKEYS, n - half)
        mem.write(node + _NKEYS, half)
        mem.write(right + _NEXT, mem.read(node + _NEXT))
        mem.write(node + _NEXT, right)
        return mem.read(right + _KEYS), right

    def _host_split_internal(self, node: int) -> tuple[int, int]:
        mem = self.memory
        n = mem.read(node + _NKEYS)
        right = self._new_node(is_leaf=False)
        half = n // 2
        mid_key = mem.read(node + _KEYS + half * WORD)
        for j in range(half + 1, n):
            mem.write(right + _KEYS + (j - half - 1) * WORD,
                      mem.read(node + _KEYS + j * WORD))
        for j in range(half + 1, n + 1):
            mem.write(right + _PTRS + (j - half - 1) * WORD,
                      mem.read(node + _PTRS + j * WORD))
        mem.write(right + _NKEYS, n - half - 1)
        mem.write(node + _NKEYS, half)
        return mid_key, right

    def host_lookup(self, key: int) -> int | None:
        mem = self.memory
        node = mem.read(self.root_cell)
        while not mem.read(node + _IS_LEAF):
            n = mem.read(node + _NKEYS)
            i = 0
            while i < n and key >= mem.read(node + _KEYS + i * WORD):
                i += 1
            node = mem.read(node + _PTRS + i * WORD)
        n = mem.read(node + _NKEYS)
        for i in range(n):
            if mem.read(node + _KEYS + i * WORD) == key:
                return mem.read(node + _PTRS + i * WORD)
        return None

    def host_keys(self) -> list[int]:
        """All keys left-to-right via the leaf chain."""
        mem = self.memory
        node = mem.read(self.root_cell)
        while not mem.read(node + _IS_LEAF):
            node = mem.read(node + _PTRS)
        keys: list[int] = []
        while node:
            n = mem.read(node + _NKEYS)
            keys.extend(mem.read(node + _KEYS + i * WORD) for i in range(n))
            node = mem.read(node + _NEXT)
        return keys


# ---------------------------------------------------------------------------
# simulated operations
# ---------------------------------------------------------------------------


@simfn
def btree_lookup(ctx: "ThreadContext", tree: BPlusTree, key: int):
    """Root-to-leaf search; returns the value or None."""
    node = yield from ctx.load(tree.root_cell)
    is_leaf = yield from ctx.load(node + _IS_LEAF)
    while not is_leaf:
        n = yield from ctx.load(node + _NKEYS)
        i = 0
        while i < n:
            k = yield from ctx.load(node + _KEYS + i * WORD)
            if key < k:
                break
            i += 1
        node = yield from ctx.load(node + _PTRS + i * WORD)
        is_leaf = yield from ctx.load(node + _IS_LEAF)
    n = yield from ctx.load(node + _NKEYS)
    for i in range(n):
        k = yield from ctx.load(node + _KEYS + i * WORD)
        if k == key:
            value = yield from ctx.load(node + _PTRS + i * WORD)
            return value
    return None


@simfn
def btree_update(ctx: "ThreadContext", tree: BPlusTree, key: int, value: int):
    """Update an existing key in place; returns True if found.

    Updates never split, so the transactional write set is one leaf —
    the common fast path of index workloads.
    """
    node = yield from ctx.load(tree.root_cell)
    is_leaf = yield from ctx.load(node + _IS_LEAF)
    while not is_leaf:
        n = yield from ctx.load(node + _NKEYS)
        i = 0
        while i < n:
            k = yield from ctx.load(node + _KEYS + i * WORD)
            if key < k:
                break
            i += 1
        node = yield from ctx.load(node + _PTRS + i * WORD)
        is_leaf = yield from ctx.load(node + _IS_LEAF)
    n = yield from ctx.load(node + _NKEYS)
    for i in range(n):
        k = yield from ctx.load(node + _KEYS + i * WORD)
        if k == key:
            yield from ctx.store(node + _PTRS + i * WORD, value)
            return True
    return False


@simfn
def btree_insert_leaf(ctx: "ThreadContext", tree: BPlusTree, key: int,
                      value: int):
    """Insert into the target leaf if it has room; returns True on
    success, False when the leaf is full (caller falls back to a
    host-assisted split outside the hot path)."""
    node = yield from ctx.load(tree.root_cell)
    is_leaf = yield from ctx.load(node + _IS_LEAF)
    while not is_leaf:
        n = yield from ctx.load(node + _NKEYS)
        i = 0
        while i < n:
            k = yield from ctx.load(node + _KEYS + i * WORD)
            if key < k:
                break
            i += 1
        node = yield from ctx.load(node + _PTRS + i * WORD)
        is_leaf = yield from ctx.load(node + _IS_LEAF)
    n = yield from ctx.load(node + _NKEYS)
    if n >= ORDER:
        return False
    i = 0
    while i < n:
        k = yield from ctx.load(node + _KEYS + i * WORD)
        if k == key:
            yield from ctx.store(node + _PTRS + i * WORD, value)
            return True
        if k > key:
            break
        i += 1
    for j in range(n, i, -1):
        k = yield from ctx.load(node + _KEYS + (j - 1) * WORD)
        v = yield from ctx.load(node + _PTRS + (j - 1) * WORD)
        yield from ctx.store(node + _KEYS + j * WORD, k)
        yield from ctx.store(node + _PTRS + j * WORD, v)
    yield from ctx.store(node + _KEYS + i * WORD, key)
    yield from ctx.store(node + _PTRS + i * WORD, value)
    yield from ctx.store(node + _NKEYS, n + 1)
    return True
