"""A skip list in simulated memory (the Synchrobench ``skiplist`` subject).

Node layout: ``(key, value, level, next_0, ..., next_{level-1})``.
Tower heights are drawn from a geometric distribution with a *seeded*
RNG supplied by the caller, so structure and behaviour are reproducible.

Compared to the linked list, searches descend in O(log n) — shorter
transactional read sets, fewer conflicts — which is why the two workloads
profile so differently despite similar APIs.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..sim.memory import WORD, Memory
from ..sim.program import simfn

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext

_KEY = 0
_VAL = WORD
_LVL = 2 * WORD
_NEXT0 = 3 * WORD

HEAD_KEY = -(1 << 62)
TAIL_KEY = 1 << 62


class SkipList:
    """Skip list with sentinel head/tail towers of maximal height."""

    __slots__ = ("memory", "max_level", "head", "tail", "rng")

    def __init__(self, memory: Memory, max_level: int = 8,
                 seed: int = 0) -> None:
        if max_level <= 0:
            raise ValueError("max_level must be positive")
        self.memory = memory
        self.max_level = max_level
        self.rng = random.Random(seed)
        self.tail = self._new_node(TAIL_KEY, 0, max_level)
        self.head = self._new_node(HEAD_KEY, 0, max_level)
        for lvl in range(max_level):
            memory.write(self.head + _NEXT0 + lvl * WORD, self.tail)

    def _new_node(self, key: int, value: int, level: int) -> int:
        node = self.memory.alloc((3 + level) * WORD, align=WORD)
        mem = self.memory
        mem.write(node + _KEY, key)
        mem.write(node + _VAL, value)
        mem.write(node + _LVL, level)
        for lvl in range(level):
            mem.write(node + _NEXT0 + lvl * WORD, 0)
        return node

    def random_level(self) -> int:
        level = 1
        while level < self.max_level and self.rng.random() < 0.5:
            level += 1
        return level

    # -- host-side ------------------------------------------------------------

    def host_insert(self, key: int, value: int = 0) -> bool:
        mem = self.memory
        update = [self.head] * self.max_level
        node = self.head
        for lvl in range(self.max_level - 1, -1, -1):
            nxt = mem.read(node + _NEXT0 + lvl * WORD)
            while mem.read(nxt + _KEY) < key:
                node = nxt
                nxt = mem.read(node + _NEXT0 + lvl * WORD)
            update[lvl] = node
        candidate = mem.read(node + _NEXT0)
        if mem.read(candidate + _KEY) == key:
            return False
        level = self.random_level()
        fresh = self._new_node(key, value, level)
        for lvl in range(level):
            prev = update[lvl]
            mem.write(fresh + _NEXT0 + lvl * WORD,
                      mem.read(prev + _NEXT0 + lvl * WORD))
            mem.write(prev + _NEXT0 + lvl * WORD, fresh)
        return True

    def host_keys(self) -> list[int]:
        mem = self.memory
        keys = []
        node = mem.read(self.head + _NEXT0)
        while mem.read(node + _KEY) != TAIL_KEY:
            keys.append(mem.read(node + _KEY))
            node = mem.read(node + _NEXT0)
        return keys


# ---------------------------------------------------------------------------
# simulated operations
# ---------------------------------------------------------------------------


def _locate(ctx, sl: SkipList, key: int):
    """Find predecessors at every level; returns (update[], candidate)."""
    mem_levels = sl.max_level
    update = [sl.head] * mem_levels
    node = sl.head
    for lvl in range(mem_levels - 1, -1, -1):
        nxt = yield from ctx.load(node + _NEXT0 + lvl * WORD)
        k = yield from ctx.load(nxt + _KEY)
        while k < key:
            node = nxt
            nxt = yield from ctx.load(node + _NEXT0 + lvl * WORD)
            k = yield from ctx.load(nxt + _KEY)
        update[lvl] = node
    candidate = yield from ctx.load(node + _NEXT0)
    return update, candidate


@simfn
def skiplist_contains(ctx: "ThreadContext", sl: SkipList, key: int):
    _, candidate = yield from _locate(ctx, sl, key)
    k = yield from ctx.load(candidate + _KEY)
    return k == key


@simfn
def skiplist_insert(ctx: "ThreadContext", sl: SkipList, key: int,
                    value: int = 0):
    """Insert ``key`` if absent; returns True if inserted."""
    update, candidate = yield from _locate(ctx, sl, key)
    k = yield from ctx.load(candidate + _KEY)
    if k == key:
        return False
    level = sl.random_level()
    fresh = sl._new_node(key, 0, level)
    yield from ctx.store(fresh + _KEY, key)
    yield from ctx.store(fresh + _VAL, value)
    for lvl in range(level):
        prev = update[lvl]
        nxt = yield from ctx.load(prev + _NEXT0 + lvl * WORD)
        yield from ctx.store(fresh + _NEXT0 + lvl * WORD, nxt)
        yield from ctx.store(prev + _NEXT0 + lvl * WORD, fresh)
    return True


@simfn
def skiplist_remove(ctx: "ThreadContext", sl: SkipList, key: int):
    """Unlink ``key`` at every level it occupies; True if removed."""
    update, candidate = yield from _locate(ctx, sl, key)
    k = yield from ctx.load(candidate + _KEY)
    if k != key:
        return False
    level = yield from ctx.load(candidate + _LVL)
    for lvl in range(level):
        prev = update[lvl]
        nxt = yield from ctx.load(prev + _NEXT0 + lvl * WORD)
        if nxt == candidate:
            cand_nxt = yield from ctx.load(candidate + _NEXT0 + lvl * WORD)
            yield from ctx.store(prev + _NEXT0 + lvl * WORD, cand_nxt)
    return True
