"""A bounded ring-buffer queue in simulated memory.

The inter-stage plumbing of pipeline workloads (Dedup, PBZip2, ferret).
Enqueue/dequeue are meant to run inside critical sections; they return a
sentinel on full/empty so the caller can back off and retry (spinning
*outside* the transaction, as well-written HTM code must).

Layout: ``[head, tail, capacity, slots...]`` — head/tail on separate
cache lines to avoid producer/consumer false sharing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.config import CACHELINE
from ..sim.memory import WORD, Memory
from ..sim.program import simfn

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext

#: dequeue result when the queue is empty / enqueue when full
EMPTY = -1
FULL = -2


class RingQueue:
    """Single-lock-free layout; concurrency control is the caller's CS."""

    __slots__ = ("memory", "head_addr", "tail_addr", "slots_base", "capacity")

    def __init__(self, memory: Memory, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.memory = memory
        self.capacity = capacity
        self.head_addr = memory.alloc_line()
        self.tail_addr = memory.alloc_line()
        self.slots_base = memory.alloc(capacity * WORD, align=CACHELINE)

    def slot_addr(self, idx: int) -> int:
        return self.slots_base + (idx % self.capacity) * WORD

    # -- host-side ------------------------------------------------------------

    def host_size(self) -> int:
        mem = self.memory
        return mem.read(self.tail_addr) - mem.read(self.head_addr)

    def host_enqueue(self, value: int) -> bool:
        mem = self.memory
        head, tail = mem.read(self.head_addr), mem.read(self.tail_addr)
        if tail - head >= self.capacity:
            return False
        mem.write(self.slot_addr(tail), value)
        mem.write(self.tail_addr, tail + 1)
        return True

    def host_drain(self) -> list:
        out = []
        mem = self.memory
        while mem.read(self.head_addr) < mem.read(self.tail_addr):
            head = mem.read(self.head_addr)
            out.append(mem.read(self.slot_addr(head)))
            mem.write(self.head_addr, head + 1)
        return out


# ---------------------------------------------------------------------------
# simulated operations (run these inside a critical section)
# ---------------------------------------------------------------------------


@simfn
def queue_enqueue(ctx: "ThreadContext", q: RingQueue, value: int):
    """Append ``value``; returns FULL if there is no room."""
    head = yield from ctx.load(q.head_addr)
    tail = yield from ctx.load(q.tail_addr)
    if tail - head >= q.capacity:
        return FULL
    yield from ctx.store(q.slot_addr(tail), value)
    yield from ctx.store(q.tail_addr, tail + 1)
    return tail


@simfn
def queue_dequeue(ctx: "ThreadContext", q: RingQueue):
    """Pop the oldest value; returns EMPTY when nothing is queued."""
    head = yield from ctx.load(q.head_addr)
    tail = yield from ctx.load(q.tail_addr)
    if head >= tail:
        return EMPTY
    value = yield from ctx.load(q.slot_addr(head))
    yield from ctx.store(q.head_addr, head + 1)
    return value
