"""Arrays in simulated memory.

The layout knobs matter for HTM behaviour: ``stride_lines`` pads elements
to whole cache lines (the false-sharing *fix*), while the default packs
eight 8-byte words per line (the false-sharing *hazard* the Histo case
study exhibits).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from ..sim.config import CACHELINE
from ..sim.memory import WORD, Memory

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext


class IntArray:
    """A fixed-length array of 8-byte words."""

    __slots__ = ("memory", "base", "length", "stride")

    def __init__(self, memory: Memory, length: int, *,
                 line_per_element: bool = False, pretouch: bool = True) -> None:
        if length <= 0:
            raise ValueError("array length must be positive")
        self.memory = memory
        self.length = length
        self.stride = CACHELINE if line_per_element else WORD
        self.base = memory.alloc(
            length * self.stride, align=CACHELINE, pretouch=pretouch
        )

    def addr(self, i: int) -> int:
        if not 0 <= i < self.length:
            raise IndexError(f"index {i} out of range [0, {self.length})")
        return self.base + i * self.stride

    # -- simulated access (generators) ----------------------------------------

    def get(self, ctx: "ThreadContext", i: int):
        value = yield from ctx.load(self.addr(i))
        return value

    def set(self, ctx: "ThreadContext", i: int, value: int):
        yield from ctx.store(self.addr(i), value)

    def add(self, ctx: "ThreadContext", i: int, delta: int = 1):
        """Read-modify-write one element; returns the new value."""
        a = self.addr(i)
        value = yield from ctx.load(a)
        yield from ctx.store(a, value + delta)
        return value + delta

    # -- host-side access (setup / verification, zero simulated cost) -----------

    def host_fill(self, values: Iterable[int]) -> None:
        for i, v in enumerate(values):
            self.memory.write(self.addr(i), v)

    def host_read(self) -> list[int]:
        return [self.memory.read(self.addr(i)) for i in range(self.length)]

    def host_get(self, i: int) -> int:
        return self.memory.read(self.addr(i))

    def host_set(self, i: int, value: int) -> None:
        self.memory.write(self.addr(i), value)
