"""A left-leaning red-black tree in simulated memory.

STAMP's vacation and genome use red-black trees as their ordered maps;
this module provides the same substrate for custom workloads.  Node
layout (6 words): ``(key, value, left, right, color, pad)``; the root
pointer lives in its own cell.

Sedgewick's left-leaning variant keeps the rebalancing code small while
preserving the red-black invariants:

1. no red node has a red left child chained to another red (no
   double-reds on a path);
2. perfect black balance: every root-to-leaf path crosses the same
   number of black nodes;
3. red links lean left.

Transactionally, lookups read an O(log n) path; inserts additionally
write color/child fields along the rebalanced spine — a slightly wider
write set than the AVL tree's rotations, useful as a contrast subject.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.memory import WORD, Memory
from ..sim.program import simfn

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext

_KEY = 0
_VAL = WORD
_LEFT = 2 * WORD
_RIGHT = 3 * WORD
_COLOR = 4 * WORD

RED = 1
BLACK = 0


class RedBlackTree:
    """Left-leaning red-black tree with host and simulated operations."""

    __slots__ = ("memory", "root_cell")

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self.root_cell = memory.alloc(WORD, align=64)

    def _new_node(self, key: int, value: int) -> int:
        node = self.memory.alloc(6 * WORD, align=WORD)
        mem = self.memory
        mem.write(node + _KEY, key)
        mem.write(node + _VAL, value)
        mem.write(node + _LEFT, 0)
        mem.write(node + _RIGHT, 0)
        mem.write(node + _COLOR, RED)
        return node

    # -- host-side operations ---------------------------------------------------

    def _is_red(self, node: int) -> bool:
        return bool(node) and self.memory.read(node + _COLOR) == RED

    def _host_rotate_left(self, h: int) -> int:
        mem = self.memory
        x = mem.read(h + _RIGHT)
        mem.write(h + _RIGHT, mem.read(x + _LEFT))
        mem.write(x + _LEFT, h)
        mem.write(x + _COLOR, mem.read(h + _COLOR))
        mem.write(h + _COLOR, RED)
        return x

    def _host_rotate_right(self, h: int) -> int:
        mem = self.memory
        x = mem.read(h + _LEFT)
        mem.write(h + _LEFT, mem.read(x + _RIGHT))
        mem.write(x + _RIGHT, h)
        mem.write(x + _COLOR, mem.read(h + _COLOR))
        mem.write(h + _COLOR, RED)
        return x

    def _host_flip_colors(self, h: int) -> None:
        mem = self.memory
        mem.write(h + _COLOR, RED)
        mem.write(mem.read(h + _LEFT) + _COLOR, BLACK)
        mem.write(mem.read(h + _RIGHT) + _COLOR, BLACK)

    def _host_insert(self, h: int, key: int, value: int) -> int:
        mem = self.memory
        if h == 0:
            return self._new_node(key, value)
        k = mem.read(h + _KEY)
        if key < k:
            mem.write(h + _LEFT,
                      self._host_insert(mem.read(h + _LEFT), key, value))
        elif key > k:
            mem.write(h + _RIGHT,
                      self._host_insert(mem.read(h + _RIGHT), key, value))
        else:
            mem.write(h + _VAL, value)
        # LLRB fix-up
        if self._is_red(mem.read(h + _RIGHT)) and \
                not self._is_red(mem.read(h + _LEFT)):
            h = self._host_rotate_left(h)
        left = mem.read(h + _LEFT)
        if self._is_red(left) and left and \
                self._is_red(mem.read(left + _LEFT)):
            h = self._host_rotate_right(h)
        if self._is_red(mem.read(h + _LEFT)) and \
                self._is_red(mem.read(h + _RIGHT)):
            self._host_flip_colors(h)
        return h

    def host_insert(self, key: int, value: int = 0) -> None:
        mem = self.memory
        root = self._host_insert(mem.read(self.root_cell), key, value)
        mem.write(root + _COLOR, BLACK)
        mem.write(self.root_cell, root)

    def host_lookup(self, key: int) -> int | None:
        mem = self.memory
        node = mem.read(self.root_cell)
        while node:
            k = mem.read(node + _KEY)
            if key == k:
                return mem.read(node + _VAL)
            node = mem.read(node + (_LEFT if key < k else _RIGHT))
        return None

    def host_keys_inorder(self) -> list[int]:
        out: list[int] = []
        mem = self.memory

        def rec(node: int) -> None:
            if not node:
                return
            rec(mem.read(node + _LEFT))
            out.append(mem.read(node + _KEY))
            rec(mem.read(node + _RIGHT))

        rec(mem.read(self.root_cell))
        return out

    # -- invariant checks (for tests) ----------------------------------------------

    def host_check_invariants(self) -> bool:
        """Root black, no red-red chains, perfect black balance."""
        mem = self.memory
        root = mem.read(self.root_cell)
        if root and self._is_red(root):
            return False
        ok = True

        def rec(node: int) -> int:
            nonlocal ok
            if not node:
                return 1
            left = mem.read(node + _LEFT)
            right = mem.read(node + _RIGHT)
            if self._is_red(node) and (self._is_red(left)
                                       or self._is_red(right)):
                ok = False
            if self._is_red(right) and not self._is_red(left):
                ok = False  # right-leaning red link (LLRB violation)
            lb = rec(left)
            rb = rec(right)
            if lb != rb:
                ok = False
            return lb + (0 if self._is_red(node) else 1)

        rec(root)
        return ok

    def host_height(self) -> int:
        mem = self.memory

        def rec(node: int) -> int:
            if not node:
                return 0
            return 1 + max(rec(mem.read(node + _LEFT)),
                           rec(mem.read(node + _RIGHT)))

        return rec(mem.read(self.root_cell))


# ---------------------------------------------------------------------------
# simulated operations
# ---------------------------------------------------------------------------


@simfn
def rbtree_lookup(ctx: "ThreadContext", tree: RedBlackTree, key: int):
    """Search the tree; returns the value or None (O(log n) read set)."""
    node = yield from ctx.load(tree.root_cell)
    while node:
        k = yield from ctx.load(node + _KEY)
        if k == key:
            value = yield from ctx.load(node + _VAL)
            return value
        node = yield from ctx.load(node + (_LEFT if key < k else _RIGHT))
    return None


def _sim_is_red(ctx, node):
    if not node:
        return False
    color = yield from ctx.load(node + _COLOR)
    return color == RED


def _sim_rotate_left(ctx, h):
    x = yield from ctx.load(h + _RIGHT)
    xl = yield from ctx.load(x + _LEFT)
    yield from ctx.store(h + _RIGHT, xl)
    yield from ctx.store(x + _LEFT, h)
    hc = yield from ctx.load(h + _COLOR)
    yield from ctx.store(x + _COLOR, hc)
    yield from ctx.store(h + _COLOR, RED)
    return x


def _sim_rotate_right(ctx, h):
    x = yield from ctx.load(h + _LEFT)
    xr = yield from ctx.load(x + _RIGHT)
    yield from ctx.store(h + _LEFT, xr)
    yield from ctx.store(x + _RIGHT, h)
    hc = yield from ctx.load(h + _COLOR)
    yield from ctx.store(x + _COLOR, hc)
    yield from ctx.store(h + _COLOR, RED)
    return x


def _sim_flip(ctx, h):
    yield from ctx.store(h + _COLOR, RED)
    left = yield from ctx.load(h + _LEFT)
    right = yield from ctx.load(h + _RIGHT)
    yield from ctx.store(left + _COLOR, BLACK)
    yield from ctx.store(right + _COLOR, BLACK)


def _sim_insert(ctx, tree, h, key, value):
    if h == 0:
        fresh = tree._new_node(key, 0)
        yield from ctx.store(fresh + _KEY, key)
        yield from ctx.store(fresh + _VAL, value)
        yield from ctx.store(fresh + _COLOR, RED)
        return fresh
    k = yield from ctx.load(h + _KEY)
    if key < k:
        child = yield from ctx.load(h + _LEFT)
        new_child = yield from _sim_insert(ctx, tree, child, key, value)
        if new_child != child:
            yield from ctx.store(h + _LEFT, new_child)
    elif key > k:
        child = yield from ctx.load(h + _RIGHT)
        new_child = yield from _sim_insert(ctx, tree, child, key, value)
        if new_child != child:
            yield from ctx.store(h + _RIGHT, new_child)
    else:
        yield from ctx.store(h + _VAL, value)
        return h
    # LLRB fix-up
    left = yield from ctx.load(h + _LEFT)
    right = yield from ctx.load(h + _RIGHT)
    right_red = yield from _sim_is_red(ctx, right)
    left_red = yield from _sim_is_red(ctx, left)
    if right_red and not left_red:
        h = yield from _sim_rotate_left(ctx, h)
        left = yield from ctx.load(h + _LEFT)
    if left:
        ll = yield from ctx.load(left + _LEFT)
        left_red = yield from _sim_is_red(ctx, left)
        ll_red = yield from _sim_is_red(ctx, ll)
        if left_red and ll_red:
            h = yield from _sim_rotate_right(ctx, h)
    left = yield from ctx.load(h + _LEFT)
    right = yield from ctx.load(h + _RIGHT)
    left_red = yield from _sim_is_red(ctx, left)
    right_red = yield from _sim_is_red(ctx, right)
    if left_red and right_red:
        yield from _sim_flip(ctx, h)
    return h


@simfn
def rbtree_insert(ctx: "ThreadContext", tree: RedBlackTree, key: int,
                  value: int = 0):
    """Insert (or update) ``key`` with LLRB rebalancing."""
    root = yield from ctx.load(tree.root_cell)
    new_root = yield from _sim_insert(ctx, tree, root, key, value)
    yield from ctx.store(new_root + _COLOR, BLACK)
    if new_root != root:
        yield from ctx.store(tree.root_cell, new_root)
