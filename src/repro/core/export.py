"""Profile databases: serialize / load merged profiles (§6's analyzer
output, the files the paper's GUI consumes).

The on-disk form is a versioned JSON document: the CCT as a nested node
list (keys, metrics, per-thread breakdowns), the sampling periods, the
symbol table (critical-section names and function names for every
address the profile references) and the sample inventory.  Function
*names* are stored alongside addresses so a database stays readable in a
process whose function registry differs from the producer's.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..cct.tree import CCTNode, new_root
from ..sim.program import REGISTRY
from .analyzer import Profile

FORMAT = "txsampler-profile"
VERSION = 2


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def _node_to_dict(node: CCTNode) -> dict:
    out: dict = {"key": list(node.key)}
    if node.metrics:
        out["metrics"] = node.metrics
    if node.per_thread:
        out["per_thread"] = {
            metric: {str(tid): v for tid, v in by_tid.items()}
            for metric, by_tid in node.per_thread.items()
        }
    if node.children:
        out["children"] = [
            _node_to_dict(child) for child in node.children.values()
        ]
    return out


def _node_from_dict(data: dict, parent: CCTNode) -> None:
    key = tuple(data["key"])
    node = parent.child(key)
    for metric, value in data.get("metrics", {}).items():
        node.metrics[metric] = node.metrics.get(metric, 0.0) + value
    for metric, by_tid in data.get("per_thread", {}).items():
        mine = node.per_thread.setdefault(metric, {})
        for tid, v in by_tid.items():
            mine[int(tid)] = mine.get(int(tid), 0.0) + v
    for child in data.get("children", []):
        _node_from_dict(child, node)


def _symbols_for(profile: Profile) -> dict[str, str]:
    """Function names for every code address the profile references."""
    addrs: set[int] = set()
    for node in profile.root.walk():
        key = node.key
        if key[0] == "call":
            addrs.add(key[1])
            addrs.add(key[2])
        elif key[0] == "ip":
            addrs.add(key[1])
    return {str(a): REGISTRY.describe(a) for a in addrs}


def profile_to_dict(profile: Profile,
                    run_metrics: dict[str, dict] | None = None) -> dict:
    """The complete database document for one profile.

    ``run_metrics`` is an optional engine-side metrics snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`, also carried on
    ``RunResult.metrics``); it rides along as ground-truth context and
    is ignored by the profile loader, so the profiler-visible content of
    a database is unchanged by its presence.
    """
    doc = {
        "format": FORMAT,
        "version": VERSION,
        "n_threads": profile.n_threads,
        "periods": profile.periods,
        "site_names": {str(k): v for k, v in profile.site_names.items()},
        "samples_seen": profile.samples_seen,
        "truncated_paths": profile.truncated_paths,
        "low_confidence_paths": profile.low_confidence_paths,
        "quarantined": profile.quarantined,
        "symbols": _symbols_for(profile),
        "cct": _node_to_dict(profile.root),
    }
    if run_metrics:
        doc["run_metrics"] = run_metrics
    return doc


def save_profile(profile: Profile, path: str | Path,
                 run_metrics: dict[str, dict] | None = None) -> Path:
    """Write a profile database; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(profile_to_dict(profile, run_metrics), fh, indent=1)
    return path


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


class ProfileFormatError(ValueError):
    """The file is not a TxSampler profile database this version reads."""


def profile_from_dict(data: dict) -> Profile:
    if data.get("format") != FORMAT:
        raise ProfileFormatError(
            f"not a {FORMAT} document (format={data.get('format')!r})"
        )
    if data.get("version", 0) > VERSION:
        raise ProfileFormatError(
            f"database version {data['version']} is newer than this "
            f"reader ({VERSION})"
        )
    root = new_root()
    cct = data.get("cct", {})
    for child in cct.get("children", []):
        _node_from_dict(child, root)
    # metrics directly on the root (rare but legal)
    for metric, value in cct.get("metrics", {}).items():
        root.metrics[metric] = value
    return Profile(
        root=root,
        n_threads=data.get("n_threads", 0),
        periods=dict(data.get("periods", {})),
        site_names={int(k): v for k, v in data.get("site_names", {}).items()},
        samples_seen=dict(data.get("samples_seen", {})),
        truncated_paths=data.get("truncated_paths", 0),
        low_confidence_paths=data.get("low_confidence_paths", 0),
        quarantined=dict(data.get("quarantined", {})),
    )


def load_profile(path: str | Path) -> Profile:
    """Load one profile database.

    Raises :class:`ProfileFormatError` — with the offending path in the
    message — for a missing, empty, torn, or non-profile file, so CLI
    consumers can turn any bad input into a one-line diagnostic.
    """
    path = Path(path)
    try:
        with path.open() as fh:
            data = json.load(fh)
    except FileNotFoundError:
        raise ProfileFormatError(f"{path}: no such profile database") \
            from None
    except OSError as exc:
        raise ProfileFormatError(f"{path}: unreadable ({exc})") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProfileFormatError(
            f"{path}: not valid JSON (empty or torn database?): {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ProfileFormatError(f"{path}: not a profile document")
    try:
        return profile_from_dict(data)
    except ProfileFormatError as exc:
        raise ProfileFormatError(f"{path}: {exc}") from None


def load_run_metrics(path: str | Path) -> dict[str, dict]:
    """The engine-side metrics snapshot stored in a database, if any."""
    with Path(path).open() as fh:
        data = json.load(fh)
    if data.get("format") != FORMAT:
        raise ProfileFormatError(
            f"not a {FORMAT} document (format={data.get('format')!r})"
        )
    return data.get("run_metrics", {})


def merge_databases(paths: list[str | Path]) -> Profile:
    """Aggregate several databases (e.g. one per run) into one profile.

    Metrics sum; metadata (periods, symbols) must agree and is taken from
    the first database.  An empty input list yields an empty profile
    rather than an error, so callers globbing for databases degrade
    gracefully when a run produced none.
    """
    if not paths:
        return Profile(root=new_root(), n_threads=0, periods={},
                       site_names={}, samples_seen={})
    merged = load_profile(paths[0])
    for extra_path in paths[1:]:
        extra = load_profile(extra_path)
        if extra.periods != merged.periods:
            raise ProfileFormatError(
                "cannot merge databases sampled with different periods"
            )
        merged.root.merge_from(extra.root)
        merged.site_names.update(extra.site_names)
        for ev, n in extra.samples_seen.items():
            merged.samples_seen[ev] = merged.samples_seen.get(ev, 0) + n
        merged.truncated_paths += extra.truncated_paths
        merged.low_confidence_paths += extra.low_confidence_paths
        for reason, n in extra.quarantined.items():
            merged.quarantined[reason] = merged.quarantined.get(reason, 0) + n
    return merged
