"""TxSampler's online data collector.

Implements the sampling handler of Figure 4 plus §5's abort analysis and
§3.3's contention analysis, using **only** profiler-legal inputs:

* the sample record (precise IP, unwound architectural stack, LBR
  snapshot, event payload);
* the RTM runtime's thread-private state word via the query function;
* its own shadow memory fed by sampled effective addresses.

Whether a cycles sample executed transactionally is decided by LBR[0]'s
abort bit (Challenge I): the architectural stack alone cannot tell the
transaction path from the fallback path, because they share code and the
rollback already happened when the handler runs.

Each thread accumulates into its own CCT (real TxSampler writes one
profile per thread); :meth:`profile` runs the offline merge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cct.merge import merge_profiles
from ..cct.tree import CCTNode, new_root
from ..cct.unwind import CONF_LOW, Reconstruction, reconstruct
from ..pmu.events import CYCLES, MEM_LOADS, MEM_STORES, RTM_ABORTED, RTM_COMMIT
from ..pmu.lbr import LbrEntry
from ..pmu.sampling import Sample
from ..rtm import state as rtm_state
from ..shadow.memory import ShadowMemory, TRUE_SHARING as SH_TRUE
from . import metrics as m

if TYPE_CHECKING:  # pragma: no cover
    from ..rtm.runtime import RTMRuntime
    from ..sim.engine import Simulator

from .analyzer import Profile

#: the PMU events this handler understands; anything else is a
#: malformed record (e.g. fault-injected corruption) and is quarantined
KNOWN_EVENTS = frozenset(
    (CYCLES, MEM_LOADS, MEM_STORES, RTM_ABORTED, RTM_COMMIT)
)


class TxSampler:
    """The profiler: attach to a :class:`~repro.sim.engine.Simulator`,
    run the program, then call :meth:`profile` for the merged result."""

    def __init__(self, contention_threshold: int = 50_000) -> None:
        self.contention_threshold = contention_threshold
        self.sim: "Simulator" | None = None
        self.rtm: "RTMRuntime" | None = None
        self.roots: list[CCTNode] = []
        self.shadow = ShadowMemory(contention_threshold)
        self.samples_seen: dict[str, int] = {}
        self.truncated_paths = 0
        #: reconstructions that fell back to the architectural stack
        #: (truncated/stale/empty LBR evidence) — see repro.cct.unwind
        self.low_confidence_paths = 0
        #: malformed samples rejected by :meth:`on_sample`, by reason
        self.quarantined: dict[str, int] = {}
        self._obs = None
        self._profile: Profile | None = None

    # -- wiring ------------------------------------------------------------

    def attach(self, sim: "Simulator") -> None:
        """Called by the simulator at construction (LD_PRELOAD analogue)."""
        self.sim = sim
        self.rtm = sim.rtm
        self.roots = [new_root() for _ in sim.threads]
        self._obs = sim.obs

    # -- sample validation (graceful degradation) -----------------------------

    def _validate(self, s: Sample) -> str | None:
        """Reject malformed records a real handler would choke on.

        Returns the quarantine reason, or ``None`` for a sane sample.
        The checks mirror the corruption classes a lossy PMU produces
        (torn PEBS records): unknown event encodings, impossible
        timestamps/weights, out-of-range CPU ids, junk in the LBR.
        """
        if s.event not in KNOWN_EVENTS:
            return "unknown-event"
        if not 0 <= s.tid < len(self.roots):
            return "bad-tid"
        if s.ts < 0:
            return "bad-timestamp"
        if s.ip < 0:
            return "bad-ip"
        if s.weight < 0:
            return "bad-weight"
        if s.lbr and not isinstance(s.lbr[0], LbrEntry):
            return "bad-lbr"
        return None

    def _quarantine(self, reason: str) -> None:
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1
        if self._obs is not None:
            self._obs.on_quarantine(reason)

    # -- the sampling handler (Figure 4) --------------------------------------

    def on_sample(self, s: Sample) -> None:
        reason = self._validate(s)
        if reason is not None:
            self._quarantine(reason)
            return
        ev = s.event
        try:
            if ev == CYCLES:
                self._on_cycles(s)
            elif ev == RTM_ABORTED:
                self._on_abort(s)
            elif ev == RTM_COMMIT:
                self._on_commit(s)
            elif ev in (MEM_LOADS, MEM_STORES):
                self._on_mem(s)
        except (AssertionError, KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            # a malformation the explicit checks did not anticipate: a
            # profiler must never take down the program it watches, so
            # the record is quarantined and the handler returns
            self._quarantine(f"handler-error:{type(exc).__name__}")
            return
        self.samples_seen[ev] = self.samples_seen.get(ev, 0) + 1

    def _note_path(self, rec: Reconstruction) -> None:
        if rec.truncated:
            self.truncated_paths += 1
        if rec.confidence == CONF_LOW:
            self.low_confidence_paths += 1

    def _on_cycles(self, s: Sample) -> None:
        assert self.rtm is not None, "profiler was never attached"
        root = self.roots[s.tid]
        # query the runtime's thread-private state word (§3.2)
        state = self.rtm.query_state(s.tid)
        # LBR[0]'s abort bit: did *this* interrupt abort a transaction?
        in_txn = s.aborted_by_sample
        rec = reconstruct(s, in_txn)
        self._note_path(rec)
        node = root.insert(rec.path)
        node.add(m.W)
        if rtm_state.in_cs(state):
            node.add(m.T)
            if in_txn:
                node.add(m.T_TX)
            elif rtm_state.in_fallback(state):
                node.add(m.T_FB)
            elif rtm_state.in_lock_waiting(state):
                node.add(m.T_WAIT)
            else:
                node.add(m.T_OH)

    def _on_abort(self, s: Sample) -> None:
        root = self.roots[s.tid]
        rec = reconstruct(s, True)
        self._note_path(rec)
        node = root.insert(rec.path)
        cls = m.classify_abort_eax(s.abort_eax)
        node.add(m.ABORTS, 1, tid=s.tid)
        node.add(m.AB_BY_CLASS[cls])
        node.add(m.ABORT_WEIGHT, s.weight)
        node.add(m.AW_BY_CLASS[cls], s.weight)
        if cls == "capacity":
            from ..htm.status import XCAP_WRITE

            if s.abort_eax & XCAP_WRITE:
                node.add(m.AB_CAPACITY_WRITE)
            else:
                node.add(m.AB_CAPACITY_READ)

    def _on_commit(self, s: Sample) -> None:
        root = self.roots[s.tid]
        rec = reconstruct(s, False)
        node = root.insert(rec.path)
        node.add(m.COMMITS, 1, tid=s.tid)

    def _on_mem(self, s: Sample) -> None:
        if s.eff_addr is None:
            return
        verdict = self.shadow.observe(s.eff_addr, s.tid, s.is_store, s.ts)
        if verdict is None:
            return
        in_txn = s.aborted_by_sample
        rec = reconstruct(s, in_txn)
        self._note_path(rec)
        node = self.roots[s.tid].insert(rec.path)
        node.add(m.TRUE_SHARING if verdict == SH_TRUE else m.FALSE_SHARING)

    # -- the offline analyzer entry point -----------------------------------------

    def build_profile(self, n_threads: int, periods: dict[str, int],
                      site_names: dict[int, str]) -> Profile:
        """Merge the per-thread profiles (reduction tree, §6) under
        caller-supplied run metadata.

        :meth:`profile` pulls the metadata from the attached simulator;
        the replayer (:mod:`repro.replay`) calls this directly with the
        metadata its log recorded, so both paths share one merge.
        """
        if self._profile is None:
            merged = merge_profiles(self.roots)
            self.roots = []  # consumed by the merge
            self._profile = Profile(
                root=merged,
                n_threads=n_threads,
                periods=dict(periods),
                site_names=dict(site_names),
                samples_seen=dict(self.samples_seen),
                truncated_paths=self.truncated_paths,
                low_confidence_paths=self.low_confidence_paths,
                quarantined=dict(self.quarantined),
            )
        return self._profile

    def profile(self) -> Profile:
        """Merge the per-thread profiles and return the aggregate
        :class:`~repro.core.analyzer.Profile` for a live run."""
        if self._profile is None:
            if self.sim is None or self.rtm is None:
                raise RuntimeError("profiler was never attached")
            return self.build_profile(
                n_threads=len(self.sim.threads),
                periods=self.sim.config.sample_periods,
                site_names=self.rtm.site_names,
            )
        return self._profile
