"""Textual rendering of TxSampler profiles (the GUI's three panes).

Renders:

* a **program summary** (Equation 1/2 decomposition and sample counts);
* a **critical-section table** (one row per TM_BEGIN site, hottest first);
* a **calling-context view** like the paper's Figure 9: the CCT annotated
  with a chosen metric and its percentage of the program total, with
  ``begin_in_tx`` pseudo nodes marking speculative paths;
* a **per-thread histogram** of commits/aborts for one context (§5's
  contention metrics view);
* a **data-quality pane**: kept/quarantined sample counts, coverage and
  attribution confidence — shown whenever the record stream degraded
  (lossy PMU or an injected :mod:`repro.faults` plan);
* a **profiler self-diagnostics** pane (``repro.obs.selfprof``): is the
  profiler itself healthy and cheap enough to trust?
* a **static analysis** pane (``repro.analysis``): the TSX-lint findings
  for the workload, and a **cross-validation** pane scoring the static
  abort-class predictions against what the profiler observed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cct.tree import CCTNode, Key
from ..sim.program import REGISTRY
from . import metrics as m
from .analyzer import CsReport, Profile

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.crossval import CrossValidation
    from ..analysis.dataflow import DataflowAnalysis
    from ..analysis.lint import AnalysisReport
    from ..analysis.mc import ModelCheckAnalysis
    from ..analysis.predict import StaticPrediction
    from ..analysis.races import RaceAnalysis
    from ..obs.selfprof import SelfDiagnostics


def _describe_key(key: Key, site_names: dict[int, str]) -> str:
    kind = key[0]
    if kind == "root":
        return "<thread root>"
    if kind == "pseudo":
        return f"[{key[1]}]"
    if kind == "ip":
        return REGISTRY.describe(key[1])
    # call edge: "callsite: callee"
    callsite, callee = key[1], key[2]
    callee_fn = REGISTRY.function_at(callee)
    callee_name = callee_fn.name if callee_fn else f"{callee:#x}"
    label = f"{REGISTRY.describe(callsite)}: {callee_name}"
    name = site_names.get(callsite)
    if name and callee_name == "tm_begin":
        label += f" <{name}>"
    return label


def render_summary(profile: Profile, title: str = "program") -> str:
    s = profile.summary()
    fr = s.time_fractions()
    lines = [
        f"=== TxSampler summary: {title} ===",
        f"W (cycles samples)   : {s.W:.0f}",
        f"T in critical sects  : {s.T:.0f}  (r_cs = {s.r_cs:.1%})",
        f"  T_tx   (HTM)       : {s.T_tx:.0f}  ({fr[m.T_TX]:.1%} of W)",
        f"  T_fb   (fallback)  : {s.T_fb:.0f}  ({fr[m.T_FB]:.1%} of W)",
        f"  T_wait (lock wait) : {s.T_wait:.0f}  ({fr[m.T_WAIT]:.1%} of W)",
        f"  T_oh   (overhead)  : {s.T_oh:.0f}  ({fr[m.T_OH]:.1%} of W)",
        f"S outside            : {s.S:.0f}  ({fr['non_cs']:.1%} of W)",
        f"est. aborts/commits  : {s.est_aborts:.0f} / {s.est_commits:.0f}"
        f"  (r_a/c = {s.abort_commit_ratio:.2f})"
        if s.est_commits
        else "est. aborts/commits  : none sampled",
        f"samples seen         : {profile.samples_seen}",
    ]
    return "\n".join(lines)


def render_cs_table(profile: Profile, limit: int = 10) -> str:
    reports = profile.cs_reports()[:limit]
    header = (
        f"{'critical section':40s} {'T':>6s} {'tx%':>5s} {'fb%':>5s} "
        f"{'wt%':>5s} {'oh%':>5s} {'a/c':>6s} {'w_t':>8s} "
        f"{'conf%':>6s} {'cap%':>6s} {'sync%':>6s}"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        fr = r.time_fractions()
        ac = r.abort_commit_ratio
        ac_s = f"{ac:6.2f}" if ac != float("inf") else "   inf"
        lines.append(
            f"{r.name[:40]:40s} {r.T:6.0f} {fr[m.T_TX]:5.0%} "
            f"{fr[m.T_FB]:5.0%} {fr[m.T_WAIT]:5.0%} {fr[m.T_OH]:5.0%} "
            f"{ac_s} {r.w_t:8.0f} {r.r_conflict:6.0%} "
            f"{r.r_capacity:6.0%} {r.r_synchronous:6.0%}"
        )
    return "\n".join(lines)


def render_cct(
    profile: Profile,
    metric: str = m.ABORT_WEIGHT,
    min_share: float = 0.01,
    max_depth: int = 12,
) -> str:
    """The calling-context view (Figure 9): nodes annotated with the
    inclusive metric and its percentage of the program total."""
    root = profile.root
    total = root.total(metric) or 1.0
    lines: list[str] = [f"=== calling context view (metric: {metric}) ==="]

    def visit(node: CCTNode, depth: int) -> None:
        if depth > max_depth:
            return
        kids = [
            (child.total(metric), child)
            for child in node.children.values()
        ]
        kids.sort(key=lambda kv: kv[0], reverse=True)
        for value, child in kids:
            if value / total < min_share:
                continue
            label = _describe_key(child.key, profile.site_names)
            lines.append(
                f"{'  ' * depth}{label}  {value:.0f} ({value / total:.1%})"
            )
            visit(child, depth + 1)

    lines.append(f"<thread root>  {total:.0f} (100.0%)")
    visit(root, 1)
    return "\n".join(lines)


def render_thread_histogram(cs: CsReport, n_threads: int) -> str:
    """Per-thread commit/abort histogram for one critical section."""
    lines = [f"=== per-thread commits/aborts: {cs.name} ==="]
    max_v = max(
        [*cs.commits_by_thread.values(), *cs.aborts_by_thread.values(), 1.0]
    )
    for tid in range(n_threads):
        c = cs.commits_by_thread.get(tid, 0.0)
        a = cs.aborts_by_thread.get(tid, 0.0)
        c_bar = "#" * int(round(20 * c / max_v))
        a_bar = "!" * int(round(20 * a / max_v))
        lines.append(f"  t{tid:02d} commits {c:6.0f} {c_bar:20s} "
                     f"aborts {a:6.0f} {a_bar}")
    return "\n".join(lines)


def render_data_quality(profile: Profile) -> str:
    """The data-quality pane: how trustworthy is this profile?

    A lossy PMU (or an injected :mod:`repro.faults` plan) degrades the
    record stream; this pane quantifies what survived — kept vs
    quarantined counts, coverage, and the share of attributions backed
    by full LBR evidence — so a reader can judge the profile the way
    §7.2 judges sampling accuracy.
    """
    kept = profile.samples_kept
    quarantined = profile.samples_quarantined
    lines = ["=== data quality ==="]
    lines.append(f"samples kept         : {kept}")
    if quarantined:
        detail = ", ".join(
            f"{reason}={n}"
            for reason, n in sorted(profile.quarantined.items())
        )
        lines.append(f"samples quarantined  : {quarantined}  ({detail})")
    else:
        lines.append("samples quarantined  : 0")
    lines.append(f"coverage             : {profile.coverage:.1%}")
    lines.append(
        f"low-confidence paths : {profile.low_confidence_paths}"
        f"  (truncated {profile.truncated_paths})"
    )
    lines.append(
        f"attribution conf.    : {profile.attribution_confidence:.1%}"
    )
    return "\n".join(lines)


def render_self_diagnostics(diag: "SelfDiagnostics") -> str:
    """The profiler self-diagnostics pane (``repro.obs.selfprof``)."""
    lines = ["=== profiler self-diagnostics ==="]
    total = diag.total_samples
    lines.append(f"samples seen         : {total}")
    for event in sorted(diag.samples_by_event):
        n = diag.samples_by_event[event]
        share = n / total if total else 0.0
        lines.append(f"  {event:18s} {n:8d}  ({share:.1%})")
    lines.append(
        f"handler invocations  : {diag.handler_invocations}"
        f"  (~{diag.handler_overhead_cycles} cycles of handler overhead)"
    )
    if diag.setup_overhead_cycles:
        lines.append(
            f"setup overhead       : {diag.setup_overhead_cycles} cycles"
        )
    lines.append(
        f"path reconstructions : {diag.stack_reconstructions}"
        f"  (truncated {diag.truncated_paths}, "
        f"rate {diag.truncation_rate:.1%})"
    )
    lines.append(
        f"shadow memory        : {diag.shadow_bytes} bytes / "
        f"{diag.shadow_lines} lines tracked, "
        f"{diag.sharing_verdicts} sharing verdicts"
    )
    return "\n".join(lines)


def render_analysis(report: "AnalysisReport") -> str:
    """The static-analysis pane: ``repro.analysis`` findings for a workload.

    The annotation is deferred (``TYPE_CHECKING``) to keep ``repro.core``
    importable without the analysis package.
    """
    lines = [f"=== static analysis: {report.workload} ==="]
    if report.truncated:
        lines.append("  (symbolic drive truncated at the op budget; "
                     "findings may be incomplete)")
    if not report.findings:
        lines.append("no findings: no statically predictable abort causes")
        return "\n".join(lines)
    for f in report.findings:
        lines.append(f"{f.severity.upper():8s} {f.code}")
        lines.append(f"         {f.message}")
        if f.prediction:
            sites = ", ".join(f"{s:#x}" for s in f.sites)
            lines.append(f"         predicts '{f.prediction}' aborts "
                         f"at {sites}")
    worst = report.max_severity()
    lines.append(f"{len(report.findings)} finding(s), max severity "
                 f"{worst or 'none'}")
    return "\n".join(lines)


def render_races(ra: "RaceAnalysis") -> str:
    """The lockset pane: ``repro.analysis.races`` results for a workload.

    Race findings themselves are merged into the main findings pane; this
    pane shows the classification and interprocedural evidence behind them.
    """
    lines = [f"=== lockset race analysis: {ra.workload} ==="]
    if ra.truncated:
        lines.append("  (symbolic drive truncated: findings downgraded "
                     "to info, analysis incomplete)")
    locks = ", ".join(f"{w:#x}" for w in ra.lock_words) or "none"
    lines.append(f"lock words           : {locks} "
                 f"(fallback lock {ra.lock_addr:#x})")
    counts = ra.classification_counts()
    summary = ", ".join(f"{k}={v}" for k, v in counts.items())
    lines.append(f"shared-word locksets : {summary} "
                 f"({len(ra.words)} shared word(s))")
    if ra.callgraph is not None:
        cg = ra.callgraph
        widened = sum(
            1 for fp in cg.functions.values()
            if fp.reads.widened or fp.writes.widened
        )
        roots = ", ".join(cg.roots()[:6]) or "none"
        lines.append(f"call graph           : {len(cg.functions)} "
                     f"function(s), {len(cg.edges)} edge(s), "
                     f"{widened} widened footprint(s); roots: {roots}")
    n_races = len(ra.findings)
    lines.append(f"{n_races} race finding(s)" if n_races else
                 "no races: every shared word carries a consistent lockset")
    return "\n".join(lines)


def render_dataflow(df: "DataflowAnalysis") -> str:
    """The fixpoint pane: per-site intervals and per-function summaries."""
    lines = [f"=== dataflow fixpoint analysis: {df.workload} ==="]
    if df.truncated:
        lines.append("  (symbolic drive truncated: intervals are "
                     "lower bounds, not guarantees)")
    if df.cache_stats is not None:
        st = df.cache_stats
        lines.append(f"summary cache        : {st['hits']} hit(s), "
                     f"{st['misses']} miss(es), "
                     f"hit rate {st['hit_rate']:.0%}")
    for sd in sorted(df.sites.values(), key=lambda s: s.site):
        conv = "" if sd.converged else "  [NOT CONVERGED]"
        lines.append(
            f"  {sd.name} @ {sd.site:#x}: read lines "
            f"{sd.read_lines.describe()}, write lines "
            f"{sd.write_lines.describe()}, ways {sd.ways.describe()}, "
            f"depth {sd.depth.describe()}{conv}"
        )
        best = ", ".join(sd.best_classes) or "none"
        worst = ", ".join(sd.worst_classes) or "none"
        lines.append(f"    abort classes: best case {best}; "
                     f"worst case {worst}")
        if sd.loop_headers:
            trips = "; ".join(
                f"{ip:#x}: {iv.describe()}"
                for ip, iv in sorted(sd.trips.items())
            )
            lines.append(f"    loop trip counts: {trips}")
    for fs in df.summaries.values():
        conv = "" if fs.converged else "  [NOT CONVERGED]"
        cached = " (cached)" if fs.cached else ""
        lines.append(
            f"  fn {fs.name}: {fs.n_nodes} node(s), {fs.n_edges} "
            f"edge(s), {len(fs.loop_headers)} loop(s); reads "
            f"{fs.read_lines.describe()}, writes "
            f"{fs.write_lines.describe()}{conv}{cached}"
        )
    converged = "yes" if df.converged else "NO"
    lines.append(f"fixpoint converged   : {converged} "
                 f"({len(df.sites)} site(s), "
                 f"{len(df.summaries)} function(s))")
    return "\n".join(lines)


def render_prediction(sp: "StaticPrediction") -> str:
    """The static decision-tree pane: predicted Figure 1 leaves per site."""
    lines = [f"=== static decision-tree prediction: {sp.workload} ==="]
    if sp.incomplete:
        lines.append("  (symbolic drive truncated: predictions are "
                     "low-confidence)")
    program = ", ".join(sp.program_leaves) or "sections are hot"
    lines.append(f"est r_cs             : {sp.est_r_cs:.1%} ({program})")
    for p in sorted(sp.sites.values(), key=lambda p: p.site):
        leaves = ", ".join(p.leaves)
        lines.append(f"  {p.name} @ {p.site:#x}: {leaves}")
        for why in p.rationale:
            lines.append(f"    - {why}")
        if p.best_case or p.worst_case:
            lines.append(
                f"    dataflow envelope: best case "
                f"{', '.join(p.best_case) or 'none'}; worst case "
                f"{', '.join(p.worst_case) or 'none'}"
            )
    return "\n".join(lines)


def render_mc(mc: "ModelCheckAnalysis") -> str:
    """The model-checker pane: the static abort graph and its evidence."""
    g = mc.graph
    lines = [f"=== bounded model checking: {mc.workload} ==="]
    if mc.truncated:
        lines.append("  (exploration truncated at the execution budget; "
                     "the graph is a lower bound)")
    verified = "yes" if mc.all_verified else "NO"
    lines.append(
        f"interleavings        : {mc.interleavings_dpor} explored by DPOR "
        f"vs {mc.interleavings_brute} brute-force "
        f"({mc.reduction_ratio:.1f}x reduction), identical graphs: "
        f"{verified}"
    )
    for st in mc.scenarios:
        if st.verified:
            mark = "ok"
        elif st.brute_executions is None:
            mark = "dpor-only" if st.dpor_complete else "truncated"
        else:
            mark = "MISMATCH"
        lines.append(
            f"  {st.key:28s} {st.n_txns} txn(s), "
            f"{st.dpor_executions} execution(s) [{mark}]"
        )
    if not g.edges:
        lines.append("abort graph          : empty — no interleaving "
                     "aborts anything")
        return "\n".join(lines)
    lines.append(f"abort graph          : {len(g.edges)} edge(s)")
    for e in g.edge_list():
        aborter = (g.site_names.get(e.aborter_site,
                                    f"{e.aborter_site:#x}")
                   if e.aborter_site > 0 else "(self)")
        victim = g.site_names.get(e.victim_site, f"{e.victim_site:#x}")
        channel = "fallback lock" if e.via_lock else "data line"
        lines.append(
            f"  {aborter} --{e.cls}/{channel}--> {victim} "
            f"({e.occurrences} occurrence(s), witness "
            f"{len(e.witness)} step(s))"
        )
    for cycle in g.convoy_cycles:
        names = " -> ".join(
            g.site_names.get(s, f"{s:#x}") for s in cycle
        )
        lines.append(f"  CONVOY CYCLE: {names} (lemming effect)")
    lines.append(
        f"fallback serialization depth: {g.max_serialization_depth} "
        "(worst threads queued behind the lock in any explored state)"
    )
    return "\n".join(lines)


def render_crossval(cv: "CrossValidation") -> str:
    """The cross-validation pane: static predictions vs the dynamic run."""
    lines = [f"=== static vs dynamic cross-validation: {cv.workload} ==="]
    lines.append(
        f"agreement            : {cv.agreement:.1%} "
        f"({len(cv.sites)} site(s) x {len(cv.checks)} abort classes)"
    )
    header = (f"  {'class':10s} {'tp':>4s} {'fp':>4s} {'fn':>4s} "
              f"{'precision':>10s} {'recall':>8s}")
    lines.append(header)
    for cls, check in cv.checks.items():
        lines.append(
            f"  {cls:10s} {check.tp:4d} {check.fp:4d} {check.fn:4d} "
            f"{check.precision:10.1%} {check.recall:8.1%}"
        )
    disagreements = cv.disagreements()
    if disagreements:
        lines.append("disagreements (each is an oracle lead, not noise):")
        for d in disagreements:
            side = ("static predicts, dynamic did not observe"
                    if d["static"] else
                    "dynamic observed, static did not predict")
            lines.append(f"  {d['section']} / {d['class']}: {side}")
    else:
        lines.append("no disagreements: every prediction was observed "
                     "and every observation predicted")
    sampled = ", ".join(
        f"{cls}={n:.0f}" for cls, n in sorted(cv.sampled_aborts.items())
    )
    lines.append(f"sampled abort events : {sampled or 'none'}")
    if cv.envelope:
        lines.append(f"envelope consistency : {cv.envelope_consistency:.1%} "
                     "(observed abort classes inside the static "
                     "worst-case envelope)")
        for v in cv.envelope_violations():
            lines.append(f"  ENVELOPE VIOLATION {v['section']} / "
                         f"{v['class']}: observed but statically "
                         "impossible — unsound interval somewhere")
    if cv.prediction is not None:
        lp, lr = cv.leaf_precision_recall()
        cp, cr = cv.class_precision_recall()
        lines.append("--- decision-tree leaf agreement ---")
        lines.append(
            f"leaf agreement       : {cv.leaf_agreement:.1%} "
            f"({cv.leaf_cells} scored cell(s)); micro P/R "
            f"{lp:.1%}/{lr:.1%} vs abort-class {cp:.1%}/{cr:.1%}"
        )
        header = (f"  {'leaf':24s} {'tp':>4s} {'fp':>4s} {'fn':>4s} "
                  f"{'precision':>10s} {'recall':>8s}")
        lines.append(header)
        for leaf, check in cv.leaf_checks.items():
            lines.append(
                f"  {leaf:24s} {check.tp:4d} {check.fp:4d} {check.fn:4d} "
                f"{check.precision:10.1%} {check.recall:8.1%}"
            )
        unscored = sorted(
            (cv.site_names.get(site, f"{site:#x}"), sorted(leaves))
            for site, leaves in cv.leaf_unscored.items()
        )
        for name, leaves in unscored:
            lines.append(f"  unscored {name}: {', '.join(leaves)} "
                         "(oracle sampled no sharing evidence)")
        leaf_dis = cv.leaf_disagreements()
        if leaf_dis:
            lines.append("leaf disagreements:")
            for d in leaf_dis:
                side = ("static predicts, dynamic did not reach"
                        if d["static"] else
                        "dynamic reached, static did not predict")
                lines.append(f"  {d['section']} / {d['leaf']}: {side}")
        else:
            lines.append("no leaf disagreements: the static predictor "
                         "reaches the traversal's leaves")
    if cv.mc_checks:
        ep, er = cv.mc_precision_recall()
        lines.append("--- abort-graph edge agreement ---")
        st = cv.mc_stats
        lines.append(
            f"edge micro P/R       : {ep:.1%}/{er:.1%} "
            f"({st.get('interleavings_dpor', 0)} DPOR vs "
            f"{st.get('interleavings_brute', 0)} brute interleavings, "
            f"{st.get('reduction_ratio', 1.0):.1f}x)"
        )
        header = (f"  {'edge kind':10s} {'tp':>4s} {'fp':>4s} {'fn':>4s} "
                  f"{'precision':>10s} {'recall':>8s}")
        lines.append(header)
        for kind, check in cv.mc_checks.items():
            lines.append(
                f"  {kind:10s} {check.tp:4d} {check.fp:4d} {check.fn:4d} "
                f"{check.precision:10.1%} {check.recall:8.1%}"
            )
        for kind, check in cv.mc_checks.items():
            for a, v in sorted(check.unscored_predicted):
                lines.append(
                    f"  unscored {kind} edge {a:#x} -> {v:#x}: predicted, "
                    "but the oracle has no dynamic evidence either way"
                )
            for a, v in sorted(check.unscored_observed):
                lines.append(
                    f"  unscored {kind} edge {a:#x} -> {v:#x}: observed, "
                    "but induced from outside the modeled transactions"
                )
    return "\n".join(lines)


def render_full_report(
    profile: Profile,
    title: str = "program",
    diagnostics: "SelfDiagnostics" | None = None,
) -> str:
    parts = [
        render_summary(profile, title),
        "",
        render_cs_table(profile),
        "",
        render_cct(profile),
    ]
    hottest = profile.hottest_cs()
    if hottest is not None:
        parts += ["", render_thread_histogram(hottest, profile.n_threads)]
    if profile.samples_quarantined or profile.low_confidence_paths:
        # degraded input: surface the data-quality pane so nobody reads
        # a lossy profile as if it were pristine
        parts += ["", render_data_quality(profile)]
    if diagnostics is not None:
        parts += ["", render_self_diagnostics(diagnostics)]
    return "\n".join(parts)
