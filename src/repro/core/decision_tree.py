"""The decision-tree model of Figure 1, as an executable analysis.

Given a profile, the tree walks exactly the paper's structure:

1. **Time analysis** — is enough time spent in critical sections at all
   (r_cs >= 20%)?  If not: no HTM-related optimization is worthwhile.
2. For the hot critical section, decompose T (Equation 2) and branch on
   the dominant component: large T_oh -> merge small transactions; large
   T_tx -> the speculative path itself dominates (usually fine; consider
   eliding reader locks / fine-grained serialization if waiting is also
   visible); large T_wait or T_fb -> **abort analysis**.
3. **Abort analysis** — find the place with the largest abort metrics and
   classify by cause: conflicts (true sharing -> redesign / shrink /
   split transactions; false sharing -> relocate data), capacity
   (shrink/split transactions, relocate data to shared cache lines),
   synchronous (move unfriendly instructions out / use friendly
   equivalents).

Every step taken is recorded so case studies can show the traversal (the
red dotted path of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from . import metrics as m
from .analyzer import CsReport, Profile, ProgramSummary


class Leaf(str, Enum):
    """Terminal outcomes of the Figure 1 traversal.

    Each value is a stable identifier shared by the dynamic traversal
    (:meth:`DecisionTree.analyze` / :meth:`DecisionTree.analyze_cs`) and
    the static predictor (``repro.analysis.predict``), so cross-validation
    compares leaf *identities* rather than substrings of free-form step
    text.  The string values appear verbatim in JSON reports and golden
    files; treat them as a public interface.
    """

    #: time analysis: r_cs below threshold, transactions are cold
    NO_HTM_BOTTLENECK = "no-htm-bottleneck"
    #: no critical sections were sampled at all
    NO_SECTIONS = "no-sections"
    #: begin/end overhead dominates: merge small transactions
    MERGE_TRANSACTIONS = "merge-transactions"
    #: lock waiting dominates: relax the serialization algorithm
    RELAX_SERIALIZATION = "relax-serialization"
    #: conflict aborts from true sharing: redesign/shrink/split
    TRUE_SHARING = "true-sharing"
    #: conflict aborts from false sharing: relocate/pad data
    FALSE_SHARING = "false-sharing"
    #: capacity aborts: shrink/split transactions, improve locality
    CAPACITY_OVERFLOW = "capacity-overflow"
    #: synchronous aborts: move unfriendly instructions out
    UNFRIENDLY_INSTRUCTIONS = "unfriendly-instructions"
    #: speculation succeeds; no transaction-level pathology
    SPECULATION_OK = "speculation-ok"
    #: abort analysis requested but no abort weight was sampled
    NO_ABORT_WEIGHT = "no-abort-weight"


@dataclass
class Step:
    """One decision taken during the traversal."""

    node: str        # which decision-tree node fired
    finding: str     # what the metrics showed
    detail: str = ""


@dataclass
class Guidance:
    """The traversal outcome: the path taken plus concrete suggestions."""

    steps: list[Step] = field(default_factory=list)
    suggestions: list[str] = field(default_factory=list)
    leaves: list[Leaf] = field(default_factory=list)
    cs: CsReport | None = None
    #: sampled sharing events behind a true/false-sharing leaf, or None
    #: when the conflict branch was never taken.  Zero means the sharing
    #: leaf is the tree's *default guess*, not an observation — consumers
    #: validating against the traversal should treat it accordingly.
    sharing_samples: float | None = None

    def step(self, node: str, finding: str, detail: str = "") -> None:
        self.steps.append(Step(node, finding, detail))

    def suggest(self, *texts: str) -> None:
        self.suggestions.extend(texts)

    def reach(self, leaf: Leaf) -> None:
        """Record arrival at a terminal ``leaf`` (idempotent)."""
        if leaf not in self.leaves:
            self.leaves.append(leaf)

    def leaf_values(self) -> list[str]:
        return [leaf.value for leaf in self.leaves]

    def render(self) -> str:
        lines = ["Decision-tree traversal:"]
        for i, s in enumerate(self.steps, 1):
            detail = f" ({s.detail})" if s.detail else ""
            lines.append(f"  ({i}) {s.node}: {s.finding}{detail}")
        if self.leaves:
            lines.append(f"Leaves: {', '.join(self.leaf_values())}")
        if self.suggestions:
            lines.append("Suggestions:")
            for s in self.suggestions:
                lines.append(f"  * {s}")
        return "\n".join(lines)


@dataclass
class Thresholds:
    """Tunable branch thresholds (paper values as defaults)."""

    #: minimum T/W for critical sections to matter at all (paper: 20%)
    r_cs: float = 0.20
    #: a component "dominates" when it exceeds this fraction of T
    dominant: float = 0.35
    #: T_oh fraction that flags transaction-overhead pathology
    overhead: float = 0.25
    #: abort/commit ratio considered "numerous aborts"
    abort_commit: float = 0.5
    #: abort-weight share that names a cause as the culprit
    cause_share: float = 0.4
    #: false-sharing sample share (of all sharing samples) to call it out
    false_share: float = 0.3


class DecisionTree:
    """Figure 1's analysis, parameterized by :class:`Thresholds`."""

    def __init__(self, thresholds: Thresholds | None = None) -> None:
        self.th = thresholds or Thresholds()

    # -- entry point --------------------------------------------------------

    def analyze(self, profile: Profile) -> Guidance:
        g = Guidance()
        summary = profile.summary()
        if not self._time_analysis(g, summary):
            return g
        cs = profile.hottest_cs()
        if cs is None:
            g.step("time", "no critical sections sampled")
            g.reach(Leaf.NO_SECTIONS)
            return g
        g.cs = cs
        self._decompose(g, cs)
        return g

    def analyze_cs(self, cs: CsReport) -> Guidance:
        """Traverse stages 2-3 for one critical section.

        Skips the program-level time analysis (the caller already decided
        this section matters) and runs the per-section decomposition and
        abort analysis, recording the same steps and leaves as
        :meth:`analyze` would for the hottest section.  This is what the
        static predictor's cross-validation drives per TM_BEGIN site.
        """
        g = Guidance()
        g.cs = cs
        self._decompose(g, cs)
        return g

    # -- stage 1: time analysis -------------------------------------------------

    def _time_analysis(self, g: Guidance, s: ProgramSummary) -> bool:
        r = s.r_cs
        if r < self.th.r_cs:
            g.step(
                "time-analysis",
                f"T/W = {r:.1%} < {self.th.r_cs:.0%}",
                "no HTM-related bottleneck; optimizing transactions "
                "would gain little",
            )
            g.reach(Leaf.NO_HTM_BOTTLENECK)
            return False
        g.step("time-analysis", f"T/W = {r:.1%}: critical sections are hot")
        return True

    # -- stage 2: time decomposition per hot section -------------------------------

    def _decompose(self, g: Guidance, cs: CsReport) -> None:
        fr = cs.time_fractions()
        g.step(
            "time-decomposition",
            f"hot section {cs.name}: "
            f"tx={fr[m.T_TX]:.0%} fb={fr[m.T_FB]:.0%} "
            f"wait={fr[m.T_WAIT]:.0%} oh={fr[m.T_OH]:.0%}",
        )
        acted = False
        ran_abort_analysis = False
        if fr[m.T_OH] >= self.th.overhead:
            g.step("large-T_oh", f"transaction overhead is {fr[m.T_OH]:.0%} of T")
            g.suggest(
                "Merge multiple small transactions into a larger one to "
                "amortize begin/end overhead"
            )
            g.reach(Leaf.MERGE_TRANSACTIONS)
            acted = True
        if fr[m.T_WAIT] >= self.th.dominant:
            g.step("large-T_wait", f"lock waiting is {fr[m.T_WAIT]:.0%} of T")
            g.suggest(
                "Relax the serialization algorithm (e.g. elide read locks, "
                "use fine-grained locks to serialize)"
            )
            g.reach(Leaf.RELAX_SERIALIZATION)
            self._abort_analysis(g, cs)
            acted = ran_abort_analysis = True
        elif fr[m.T_FB] >= self.th.dominant:
            g.step("large-T_fb", f"fallback path is {fr[m.T_FB]:.0%} of T")
            self._abort_analysis(g, cs)
            acted = ran_abort_analysis = True
        # numerous aborts warrant the abort analysis even when a time
        # component already fired (the paper's tree always descends when
        # there are "numerous HTM aborts")
        if (not ran_abort_analysis
                and cs.abort_commit_ratio >= self.th.abort_commit):
            g.step(
                "high-abort-ratio",
                f"abort/commit = {cs.abort_commit_ratio:.2f}",
            )
            self._abort_analysis(g, cs)
            acted = True
        if not acted:
            g.step(
                "large-T_tx",
                f"speculative path dominates ({fr[m.T_TX]:.0%}); "
                "no transaction-level pathology",
            )
            g.reach(Leaf.SPECULATION_OK)

    # -- stage 3: abort analysis ------------------------------------------------------

    def _abort_analysis(self, g: Guidance, cs: CsReport) -> None:
        if not cs.abort_weight:
            g.step("abort-analysis", "no abort weight sampled")
            g.reach(Leaf.NO_ABORT_WEIGHT)
            return
        g.step(
            "abort-analysis",
            f"w_t = {cs.w_t:.0f} cycles/abort, abort/commit = "
            f"{cs.abort_commit_ratio:.2f}",
        )
        r_conf, r_cap, r_sync = cs.r_conflict, cs.r_capacity, cs.r_synchronous
        g.step(
            "abort-type",
            f"conflict={r_conf:.0%} capacity={r_cap:.0%} sync={r_sync:.0%}",
        )
        if r_conf >= self.th.cause_share:
            sharing_total = cs.true_sharing + cs.false_sharing
            g.sharing_samples = sharing_total
            if (
                sharing_total
                and cs.false_sharing / sharing_total >= self.th.false_share
            ):
                g.step(
                    "false-sharing",
                    f"{cs.false_sharing:.0f}/{sharing_total:.0f} contended "
                    "samples collide on different bytes of one line",
                )
                g.suggest(
                    "Relocate contended data to different cache lines "
                    "(pad/align per-thread data)",
                    "Relocate data based on threads (partition by owner)",
                )
                g.reach(Leaf.FALSE_SHARING)
            else:
                g.step("shared-data-contention", "conflicts from true sharing")
                g.suggest(
                    "Redesign the algorithm to reduce shared writes",
                    "Shrink transactions to narrow the conflict window",
                    "Split transactions so independent updates commit "
                    "separately",
                )
                g.reach(Leaf.TRUE_SHARING)
        if r_cap >= self.th.cause_share:
            g.step("footprint-large", "capacity aborts dominate the weight")
            g.suggest(
                "Shrink transactions (reduce the per-transaction footprint)",
                "Split transactions into smaller pieces",
                "Relocate data to shared cache lines (improve locality of "
                "the working set)",
            )
            g.reach(Leaf.CAPACITY_OVERFLOW)
        if r_sync >= self.th.cause_share:
            g.step(
                "unfriendly-instructions",
                "synchronous aborts dominate the weight",
            )
            g.reach(Leaf.UNFRIENDLY_INSTRUCTIONS)
            g.suggest(
                "Move unfriendly instructions/calls (system calls, page "
                "faults) out of the transaction",
                "Use an HTM-friendly equivalent (e.g. pre-touch pages, "
                "buffer I/O outside the critical section)",
            )
