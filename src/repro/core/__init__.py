"""TxSampler: the paper's primary contribution.

Public surface: :class:`TxSampler` (attach to a simulator, collect
samples), :class:`Profile` (the merged result), :class:`DecisionTree`
(Figure 1's guidance model), categorization (Figure 8), and the textual
report renderers (the GUI's panes).
"""

from . import metrics
from .analyzer import CsReport, Profile, ProgramSummary
from .categorize import TYPE_I, TYPE_II, TYPE_III, Category, categorize
from .decision_tree import DecisionTree, Guidance, Leaf, Step, Thresholds
from .export import load_profile, load_run_metrics, merge_databases, save_profile
from .profiler import TxSampler
from .report import (
    render_cct,
    render_cs_table,
    render_full_report,
    render_self_diagnostics,
    render_summary,
    render_thread_histogram,
)

__all__ = [
    "TxSampler",
    "Profile",
    "CsReport",
    "ProgramSummary",
    "DecisionTree",
    "Guidance",
    "Leaf",
    "Step",
    "Thresholds",
    "categorize",
    "Category",
    "save_profile",
    "load_profile",
    "load_run_metrics",
    "merge_databases",
    "TYPE_I",
    "TYPE_II",
    "TYPE_III",
    "metrics",
    "render_summary",
    "render_cs_table",
    "render_cct",
    "render_thread_histogram",
    "render_full_report",
    "render_self_diagnostics",
]
