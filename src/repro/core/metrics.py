"""Metric names and derivations (Equations 1-4).

All *time* metrics are in cycles-sample counts (one count ≈ one sampling
period's worth of cycles); abort/commit metrics are in event-sample
counts.  The analyzer scales by the sampling periods when estimates in
absolute units are wanted — ratios (which is what the paper's decision
tree consumes) need no scaling.
"""

from __future__ import annotations

from ..htm import status as _st

# ---- time metrics (Figure 4) ------------------------------------------------
W = "W"              # work: every cycles sample
T = "T"              # cycles samples inside a critical section
T_TX = "T_tx"        # ... in the transactional (speculative) path
T_FB = "T_fb"        # ... in the fallback (lock-protected) path
T_WAIT = "T_wait"    # ... waiting on the global lock
T_OH = "T_oh"        # ... in transaction begin/retry/cleanup overhead

TIME_COMPONENTS = (T_TX, T_FB, T_WAIT, T_OH)

# ---- abort / commit metrics (§5) ---------------------------------------------
ABORTS = "aborts"              # sampled RTM_RETIRED:ABORTED events
COMMITS = "commits"            # sampled RTM_RETIRED:COMMIT events
ABORT_WEIGHT = "abort_weight"  # aggregate sampled abort weight (cycles)

AB_CONFLICT = "ab_conflict"
AB_CAPACITY = "ab_capacity"
AB_SYNC = "ab_sync"
AB_OTHER = "ab_other"          # interrupt/explicit (incl. profiler-induced)

AW_CONFLICT = "aw_conflict"    # weight attributed to conflict aborts, etc.
AW_CAPACITY = "aw_capacity"
AW_SYNC = "aw_sync"
AW_OTHER = "aw_other"

# capacity aborts split by the overflowing set, as in the artifact's
# viewer ("capacity abort is the sum of capacity abort read and
# capacity abort write"); inferred from the PEBS data-source bit
AB_CAPACITY_READ = "ab_capacity_read"
AB_CAPACITY_WRITE = "ab_capacity_write"

ABORT_CLASSES = ("conflict", "capacity", "sync", "other")
AB_BY_CLASS = {
    "conflict": AB_CONFLICT,
    "capacity": AB_CAPACITY,
    "sync": AB_SYNC,
    "other": AB_OTHER,
}
AW_BY_CLASS = {
    "conflict": AW_CONFLICT,
    "capacity": AW_CAPACITY,
    "sync": AW_SYNC,
    "other": AW_OTHER,
}

# ---- contention metrics (§3.3) -------------------------------------------------
TRUE_SHARING = "true_sharing"
FALSE_SHARING = "false_sharing"

ALL_METRICS = (
    W, T, T_TX, T_FB, T_WAIT, T_OH,
    ABORTS, COMMITS, ABORT_WEIGHT,
    AB_CONFLICT, AB_CAPACITY, AB_SYNC, AB_OTHER,
    AB_CAPACITY_READ, AB_CAPACITY_WRITE,
    AW_CONFLICT, AW_CAPACITY, AW_SYNC, AW_OTHER,
    TRUE_SHARING, FALSE_SHARING,
)


def classify_abort_eax(eax: int) -> str:
    """Classify an abort from its TSX status bits, as a profiler must.

    * CONFLICT bit -> data conflict;
    * CAPACITY bit -> footprint overflow;
    * no cause bits at all -> synchronous (unfriendly instruction);
    * anything else (RETRY-only — e.g. the profiler's own sampling
      interrupts — or EXPLICIT) -> "other".
    """
    if eax & _st.XABORT_CONFLICT:
        return "conflict"
    if eax & _st.XABORT_CAPACITY:
        return "capacity"
    if eax == 0:
        return "sync"
    return "other"
