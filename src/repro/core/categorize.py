"""HTM program characterization (§7.3, Figure 8).

Two metrics classify every program:

* ``r_cs = T / W`` — the critical-section duration ratio;
* ``r_a/c``        — the abort/commit ratio.

Type I   (r_cs < 0.2):             transactions are not worth optimizing.
Type II  (r_cs >= 0.2, r_a/c < 1): low conflicts; opportunities are
                                   overhead reduction and per-transaction
                                   commit-rate improvements.
Type III (r_cs >= 0.2, r_a/c >= 1): worth optimizing to alleviate
                                   conflicts inside transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .analyzer import Profile

TYPE_I = "I"
TYPE_II = "II"
TYPE_III = "III"


@dataclass(frozen=True)
class Category:
    """One program's position in Figure 8."""

    name: str
    r_cs: float
    abort_commit: float
    type_: str

    def __str__(self) -> str:
        return (
            f"{self.name}: r_cs={self.r_cs:.2f} "
            f"r_a/c={self.abort_commit:.2f} -> Type {self.type_}"
        )


def categorize(name: str, profile: Profile,
               r_cs_threshold: float = 0.2,
               ac_threshold: float = 1.0) -> Category:
    """Place one program's profile into Figure 8's quadrants."""
    s = profile.summary()
    r_cs = s.r_cs
    ac = s.abort_commit_ratio
    if r_cs < r_cs_threshold:
        type_ = TYPE_I
    elif ac < ac_threshold:
        type_ = TYPE_II
    else:
        type_ = TYPE_III
    return Category(name=name, r_cs=r_cs, abort_commit=ac, type_=type_)
