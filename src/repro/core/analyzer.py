"""TxSampler's offline analyzer: aggregate profiles and derived metrics.

Groups samples by critical section (the ``tm_begin`` call edge in the
CCT), computes the Equation 1-4 derivations, and produces the per-program
summary the decision tree and reports consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cct.tree import CCTNode
from ..pmu.events import RTM_ABORTED, RTM_COMMIT
from ..sim.program import REGISTRY
from . import metrics as m


def _tm_begin_base() -> int:
    # imported lazily so the runtime module has registered the function
    from ..rtm.runtime import tm_begin

    return tm_begin.base


@dataclass
class CsReport:
    """Derived metrics for one critical section (one TM_BEGIN site)."""

    site: int                  # TM_BEGIN call-site address
    name: str                  # section name (debug info) or "fn+line"
    # time decomposition, in cycles-sample counts (Equation 2)
    T: float = 0.0
    T_tx: float = 0.0
    T_fb: float = 0.0
    T_wait: float = 0.0
    T_oh: float = 0.0
    # sampled abort/commit events and weights (§5)
    aborts: float = 0.0
    commits: float = 0.0
    abort_weight: float = 0.0
    aborts_by_class: dict[str, float] = field(default_factory=dict)
    weight_by_class: dict[str, float] = field(default_factory=dict)
    # contention
    true_sharing: float = 0.0
    false_sharing: float = 0.0
    # per-thread histograms (§5's contention metrics)
    commits_by_thread: dict[int, float] = field(default_factory=dict)
    aborts_by_thread: dict[int, float] = field(default_factory=dict)
    # estimated true event counts (sample counts x sampling period)
    est_aborts: float = 0.0
    est_commits: float = 0.0

    # ---- Equation 3: average weight per sampled abort --------------------------

    @property
    def w_t(self) -> float:
        return self.abort_weight / self.aborts if self.aborts else 0.0

    # ---- Equation 4: abort-weight ratios per cause ------------------------------

    def weight_ratio(self, cls: str) -> float:
        """Share of the abort weight among the three *cause* classes.

        "other" (RETRY-only) aborts are the profiler's own sampling
        interrupts plus lock-elision retries; TxSampler excludes them
        from the root-cause decomposition it acts on."""
        causes = sum(
            self.weight_by_class.get(c, 0.0)
            for c in ("conflict", "capacity", "sync")
        )
        if not causes:
            return 0.0
        return self.weight_by_class.get(cls, 0.0) / causes

    @property
    def r_conflict(self) -> float:
        return self.weight_ratio("conflict")

    @property
    def r_capacity(self) -> float:
        return self.weight_ratio("capacity")

    @property
    def r_synchronous(self) -> float:
        return self.weight_ratio("sync")

    @property
    def abort_commit_ratio(self) -> float:
        if self.est_commits:
            return self.est_aborts / self.est_commits
        return float("inf") if self.est_aborts else 0.0

    def dominant_component(self) -> str:
        comps = {
            m.T_TX: self.T_tx,
            m.T_FB: self.T_fb,
            m.T_WAIT: self.T_wait,
            m.T_OH: self.T_oh,
        }
        return max(comps, key=lambda c: comps[c])

    def time_fractions(self) -> dict[str, float]:
        """Each component as a fraction of this section's T."""
        total = self.T or 1.0
        return {
            m.T_TX: self.T_tx / total,
            m.T_FB: self.T_fb / total,
            m.T_WAIT: self.T_wait / total,
            m.T_OH: self.T_oh / total,
        }


@dataclass
class ProgramSummary:
    """Whole-program view (Equation 1)."""

    W: float
    T: float
    T_tx: float
    T_fb: float
    T_wait: float
    T_oh: float
    est_aborts: float
    est_commits: float

    @property
    def S(self) -> float:
        return self.W - self.T

    @property
    def r_cs(self) -> float:
        """Critical-section duration ratio T/W (Figure 8's x-axis)."""
        return self.T / self.W if self.W else 0.0

    @property
    def abort_commit_ratio(self) -> float:
        if self.est_commits:
            return self.est_aborts / self.est_commits
        return float("inf") if self.est_aborts else 0.0

    def time_fractions(self) -> dict[str, float]:
        """non-CS / HTM / fallback / lock-wait / overhead fractions of W
        (the stacked bars of Figure 7, top)."""
        total = self.W or 1.0
        return {
            "non_cs": self.S / total,
            m.T_TX: self.T_tx / total,
            m.T_FB: self.T_fb / total,
            m.T_WAIT: self.T_wait / total,
            m.T_OH: self.T_oh / total,
        }


@dataclass
class Profile:
    """The merged profile: the aggregate CCT plus run metadata."""

    root: CCTNode
    n_threads: int
    periods: dict[str, int]
    site_names: dict[int, str]
    samples_seen: dict[str, int]
    truncated_paths: int = 0
    #: reconstructions that fell back (wholly or partly) to the
    #: architectural stack for lack of LBR evidence
    low_confidence_paths: int = 0
    #: malformed samples the handler rejected, by quarantine reason
    quarantined: dict[str, int] = field(default_factory=dict)

    # -- data quality ----------------------------------------------------------

    @property
    def samples_kept(self) -> int:
        """Samples that survived validation and were attributed."""
        return sum(self.samples_seen.values())

    @property
    def samples_quarantined(self) -> int:
        return sum(self.quarantined.values())

    @property
    def coverage(self) -> float:
        """Fraction of received records the profiler could use."""
        total = self.samples_kept + self.samples_quarantined
        return self.samples_kept / total if total else 1.0

    @property
    def attribution_confidence(self) -> float:
        """Share of kept samples whose context attribution rests on full
        LBR evidence (1.0 when nothing fell back to the architectural
        stack)."""
        kept = self.samples_kept
        if not kept:
            return 1.0
        return max(0.0, 1.0 - self.low_confidence_paths / kept)

    # -- critical-section grouping -------------------------------------------------

    def cs_nodes(self) -> dict[int, list[CCTNode]]:
        """All ``tm_begin`` call-edge nodes, grouped by call site."""
        base = _tm_begin_base()
        groups: dict[int, list[CCTNode]] = {}
        for node in self.root.walk():
            key = node.key
            if key[0] == "call" and key[2] == base:
                groups.setdefault(key[1], []).append(node)
        return groups

    def cs_reports(self) -> list[CsReport]:
        """Per-critical-section derived metrics, hottest (largest T) first."""
        p_ab = self.periods.get(RTM_ABORTED, 0)
        p_cm = self.periods.get(RTM_COMMIT, 0)
        reports: list[CsReport] = []
        for site, nodes in self.cs_nodes().items():
            rep = CsReport(site=site, name=self.describe_site(site))
            for node in nodes:
                rep.T += node.total(m.T)
                rep.T_tx += node.total(m.T_TX)
                rep.T_fb += node.total(m.T_FB)
                rep.T_wait += node.total(m.T_WAIT)
                rep.T_oh += node.total(m.T_OH)
                rep.aborts += node.total(m.ABORTS)
                rep.commits += node.total(m.COMMITS)
                rep.abort_weight += node.total(m.ABORT_WEIGHT)
                for cls in m.ABORT_CLASSES:
                    rep.aborts_by_class[cls] = (
                        rep.aborts_by_class.get(cls, 0.0)
                        + node.total(m.AB_BY_CLASS[cls])
                    )
                    rep.weight_by_class[cls] = (
                        rep.weight_by_class.get(cls, 0.0)
                        + node.total(m.AW_BY_CLASS[cls])
                    )
                rep.true_sharing += node.total(m.TRUE_SHARING)
                rep.false_sharing += node.total(m.FALSE_SHARING)
                for tid, v in node.total_per_thread(m.COMMITS).items():
                    rep.commits_by_thread[tid] = (
                        rep.commits_by_thread.get(tid, 0.0) + v
                    )
                for tid, v in node.total_per_thread(m.ABORTS).items():
                    rep.aborts_by_thread[tid] = (
                        rep.aborts_by_thread.get(tid, 0.0) + v
                    )
            rep.est_aborts = rep.aborts * p_ab
            rep.est_commits = rep.commits * p_cm
            reports.append(rep)
        reports.sort(key=lambda r: r.T, reverse=True)
        return reports

    def hottest_cs(self) -> CsReport | None:
        reports = self.cs_reports()
        return reports[0] if reports else None

    # -- program-level summary ---------------------------------------------------------

    def summary(self) -> ProgramSummary:
        root = self.root
        return ProgramSummary(
            W=root.total(m.W),
            T=root.total(m.T),
            T_tx=root.total(m.T_TX),
            T_fb=root.total(m.T_FB),
            T_wait=root.total(m.T_WAIT),
            T_oh=root.total(m.T_OH),
            est_aborts=root.total(m.ABORTS) * self.periods.get(RTM_ABORTED, 0),
            est_commits=root.total(m.COMMITS) * self.periods.get(RTM_COMMIT, 0),
        )

    # -- naming ------------------------------------------------------------------------

    def describe_site(self, site: int) -> str:
        name = self.site_names.get(site)
        loc = REGISTRY.describe(site)
        return f"{name} [{loc}]" if name else loc
