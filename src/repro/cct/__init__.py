"""Calling-context-tree machinery: tree, reconstruction, merging."""

from .merge import merge_pair, merge_profiles
from .tree import CCTNode, Key, Path, call_key, ip_key, new_root, pseudo_key
from .unwind import BEGIN_IN_TX, Reconstruction, reconstruct, txn_call_chain

__all__ = [
    "CCTNode",
    "Key",
    "Path",
    "new_root",
    "call_key",
    "ip_key",
    "pseudo_key",
    "merge_profiles",
    "merge_pair",
    "reconstruct",
    "txn_call_chain",
    "Reconstruction",
    "BEGIN_IN_TX",
]
