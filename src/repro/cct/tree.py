"""Calling context tree (CCT) with per-node metrics.

Node keys are small tuples:

* ``("call", callsite_addr, callee_base)`` — one call edge, matching both
  an unwound stack frame and an LBR call entry;
* ``("pseudo", name)`` — synthetic nodes such as ``begin_in_tx`` (the
  anchor under which in-transaction paths hang, as in the paper's GUI);
* ``("ip", addr)`` — a leaf instruction.

Metrics are plain counters (sample counts / weights).  ``per_thread``
keeps the per-thread breakdown needed for §5's commit/abort histograms.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

Key = tuple
Path = tuple[Key, ...]


def call_key(callsite: int, callee_base: int) -> Key:
    return ("call", callsite, callee_base)


def pseudo_key(name: str) -> Key:
    return ("pseudo", name)


def ip_key(addr: int) -> Key:
    return ("ip", addr)


class CCTNode:
    """One context-tree node; metrics are exclusive to this exact context."""

    __slots__ = ("key", "parent", "children", "metrics", "per_thread")

    def __init__(self, key: Key, parent: "CCTNode" | None = None) -> None:
        self.key = key
        self.parent = parent
        self.children: dict[Key, CCTNode] = {}
        self.metrics: dict[str, float] = {}
        self.per_thread: dict[str, dict[int, float]] = {}

    # -- construction ---------------------------------------------------------

    def child(self, key: Key) -> "CCTNode":
        node = self.children.get(key)
        if node is None:
            node = CCTNode(key, self)
            self.children[key] = node
        return node

    def insert(self, path: Iterable[Key]) -> "CCTNode":
        node = self
        for key in path:
            node = node.child(key)
        return node

    def add(self, metric: str, value: float = 1.0, tid: int | None = None) -> None:
        self.metrics[metric] = self.metrics.get(metric, 0.0) + value
        if tid is not None:
            by_tid = self.per_thread.setdefault(metric, {})
            by_tid[tid] = by_tid.get(tid, 0.0) + value

    # -- queries ---------------------------------------------------------------

    def walk(self) -> Iterator["CCTNode"]:
        """Depth-first iteration over this subtree (self included)."""
        stack: list[CCTNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def total(self, metric: str) -> float:
        """Inclusive metric: sum over this subtree."""
        return sum(n.metrics.get(metric, 0.0) for n in self.walk())

    def total_per_thread(self, metric: str) -> dict[int, float]:
        out: dict[int, float] = {}
        for n in self.walk():
            for tid, v in n.per_thread.get(metric, {}).items():
                out[tid] = out.get(tid, 0.0) + v
        return out

    def find(self, pred: Callable[["CCTNode"], bool]) -> list["CCTNode"]:
        return [n for n in self.walk() if pred(n)]

    def path_from_root(self) -> Path:
        keys: list[Key] = []
        node: CCTNode | None = self
        while node is not None and node.key != ("root",):
            keys.append(node.key)
            node = node.parent
        return tuple(reversed(keys))

    def n_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    # -- merging -----------------------------------------------------------------

    def merge_from(self, other: "CCTNode") -> None:
        """Accumulate ``other``'s subtree into this one (keys must match)."""
        for metric, value in other.metrics.items():
            self.metrics[metric] = self.metrics.get(metric, 0.0) + value
        for metric, by_tid in other.per_thread.items():
            mine = self.per_thread.setdefault(metric, {})
            for tid, v in by_tid.items():
                mine[tid] = mine.get(tid, 0.0) + v
        for key, child in other.children.items():
            self.child(key).merge_from(child)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<cct {self.key} metrics={self.metrics}>"


def new_root() -> CCTNode:
    return CCTNode(("root",))
