"""Call-path reconstruction: stack unwinding + LBR concatenation (§3.4).

For a sample taken outside a transaction the architectural stack is
complete, so the context is just the unwound frames plus the precise IP.

For a sample inside a transaction the architectural state has rolled back
to the transaction begin, so the unwound stack can only reach the
``tm_begin`` frame.  The path *inside* the transaction is rebuilt from the
LBR exactly as Figure 3 describes: take the in-TSX call/return entries
belonging to the current attempt (bounded above by the abort/interrupt
record and below by the previous attempt's abort record or the first
non-transactional branch), replay them oldest-to-newest pairing calls
with returns, and the unmatched calls form the active in-transaction call
chain.  The two paths are concatenated under a ``begin_in_tx`` pseudo
node.  If the LBR was too small to hold the whole prefix, the
reconstruction is flagged truncated — the same approximation the real
tool admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..pmu.lbr import KIND_ABORT, KIND_CALL, KIND_RET, KIND_SAMPLE, LbrEntry
from ..pmu.sampling import Sample
from .tree import Key, call_key, ip_key, pseudo_key

#: pseudo node anchoring in-transaction paths (name from the paper's GUI)
BEGIN_IN_TX = pseudo_key("begin_in_tx")

#: per-sample confidence tags: "high" means the full in-transaction
#: path was rebuilt from complete LBR evidence (or the sample was
#: non-transactional, where the architectural stack is authoritative);
#: "low" means the LBR was truncated, stale, or empty and the path
#: falls back — wholly or partly — to the architectural stack
CONF_HIGH = "high"
CONF_LOW = "low"


@dataclass
class Reconstruction:
    """The full context for one sample."""

    path: tuple[Key, ...]
    in_txn: bool
    truncated: bool
    #: :data:`CONF_HIGH` or :data:`CONF_LOW` — how much of the claimed
    #: context is backed by branch-record evidence
    confidence: str = CONF_HIGH


def txn_call_chain(
    lbr: Sequence[LbrEntry],
) -> tuple[list[tuple[int, int]], bool]:
    """Active in-transaction call chain from an LBR snapshot (newest first).

    Returns ``(chain, truncated)`` where ``chain`` is a list of
    ``(callsite, callee_base)`` pairs outermost-first and ``truncated``
    reports whether older in-transaction history may have been evicted.
    """
    # 1. find the abort record of the *current* attempt: the newest
    #    KIND_ABORT entry, skipping any sample records layered above it.
    idx = None
    for i, e in enumerate(lbr):
        if e.kind == KIND_SAMPLE:
            continue
        if e.kind == KIND_ABORT:
            idx = i
        break
    if idx is None:
        return [], False
    # 2. collect this attempt's in-TSX call/ret entries: everything older
    #    than the abort record until the previous attempt's abort record or
    #    the first non-transactional branch.
    attempt: list[LbrEntry] = []
    hit_boundary = False
    for e in lbr[idx + 1:]:
        if e.kind == KIND_ABORT or not e.in_tsx:
            hit_boundary = True
            break
        if e.kind in (KIND_CALL, KIND_RET):
            attempt.append(e)
        # sample records inside the window are ignored
    truncated = not hit_boundary and len(lbr) >= 1
    # 3. replay oldest -> newest, pairing calls with returns.
    stack: list[tuple[int, int]] = []
    unmatched_rets = False
    for e in reversed(attempt):
        if e.kind == KIND_CALL:
            stack.append((e.from_addr, e.to_addr))
        else:  # return
            if stack:
                stack.pop()
            else:
                # a return whose call was evicted from the LBR
                unmatched_rets = True
    return stack, truncated or unmatched_rets


def reconstruct(sample: Sample, in_txn: bool) -> Reconstruction:
    """Build the full CCT path for ``sample``.

    ``in_txn`` is the caller's determination of whether the sample
    observed transactional execution (Figure 4 reads LBR[0]'s abort bit
    for cycles samples; abort samples are transactional by definition).
    """
    base: list[Key] = [call_key(cs, cb) for cs, cb in sample.ustack]
    truncated = False
    confidence = CONF_HIGH
    if in_txn:
        if not sample.lbr:
            # zero LBR entries for a transactional sample: there is no
            # branch evidence at all (hardware would never deliver this,
            # but a lossy/fault-injected substrate can).  Fall back to
            # the architectural stack alone, explicitly low-confidence —
            # never an exception, never a silently-empty chain.
            base.append(BEGIN_IN_TX)
            base.append(ip_key(sample.ip))
            return Reconstruction(path=tuple(base), in_txn=True,
                                  truncated=True, confidence=CONF_LOW)
        chain, truncated = txn_call_chain(sample.lbr)
        base.append(BEGIN_IN_TX)
        base.extend(call_key(cs, cb) for cs, cb in chain)
        if truncated:
            confidence = CONF_LOW
        elif not chain and not any(e.kind == KIND_ABORT for e in sample.lbr):
            # the caller asserts a transactional context but the LBR
            # holds no abort transfer to anchor the attempt window — a
            # stale or over-truncated snapshot.  The architectural-stack
            # fallback is still correct up to the transaction begin, so
            # keep the path but tag it.
            confidence = CONF_LOW
    base.append(ip_key(sample.ip))
    return Reconstruction(path=tuple(base), in_txn=in_txn,
                          truncated=truncated, confidence=confidence)


def prefix_matches(
    chain: Sequence[tuple[int, int]],
    innermost_frame_base: int,
    function_span: int,
) -> bool:
    """Figure 3's consistency check: does the oldest reconstructed call
    originate from the function at the top of the unwound stack?"""
    if not chain:
        return True
    callsite = chain[0][0]
    return 0 <= callsite - innermost_frame_base < function_span
