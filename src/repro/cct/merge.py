"""Reduction-tree merging of per-thread profiles (§6, after [47]).

The offline analyzer combines one CCT per thread into an aggregate
profile.  Merging pairwise in rounds (a balanced reduction tree) is how
HPCToolkit scales this to many threads; we implement the same shape so
the merge cost grows logarithmically in rounds, and a property test pins
the result to the sequential fold.
"""

from __future__ import annotations

from collections.abc import Sequence

from .tree import CCTNode, new_root


def merge_pair(a: CCTNode, b: CCTNode) -> CCTNode:
    """Merge ``b`` into ``a`` and return ``a``."""
    a.merge_from(b)
    return a


def merge_profiles(roots: Sequence[CCTNode]) -> CCTNode:
    """Reduction-tree merge of any number of per-thread CCT roots.

    The inputs are consumed (the result aliases and mutates copies of the
    first operands in each round); callers keep ownership semantics simple
    by merging once, at the end of a run.
    """
    if not roots:
        return new_root()
    level: list[CCTNode] = list(roots)
    while len(level) > 1:
        nxt: list[CCTNode] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(merge_pair(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
