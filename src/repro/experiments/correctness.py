"""§7.2: validating TxSampler against the instrumentation ground truth.

Each microbenchmark triggers a known behaviour; the run carries *both*
TxSampler (sampling) and the zero-cost instrumentation recorder inside
the RTM runtime.  The checks mirror the paper's validation: sampled
profiles must agree with the ground truth on the qualitative profile
(which abort cause dominates, which sharing kind the contention is, how
high the abort ratio is) and, where event counts are large enough,
quantitatively through the sampling-period scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import metrics as m
from ..sim.config import MachineConfig
from .runner import Outcome, run_workload

#: microbenchmarks and the behaviour each must exhibit
MICRO_EXPECTATIONS = {
    "micro_low_abort": "abort/commit ratio near zero",
    "micro_moderate_abort": "moderate abort/commit ratio",
    "micro_high_abort": "high abort/commit ratio, true sharing",
    "micro_false_sharing": "contention classified as false sharing",
    "micro_sync": "synchronous aborts dominate",
    "micro_capacity": "capacity aborts dominate",
    "micro_read_only": "no aborts at all from the application",
}


@dataclass
class CorrectnessRow:
    name: str
    expectation: str
    #: ground truth (exact)
    true_commits: int
    true_aborts: int
    true_aborts_by_reason: dict[str, int]
    #: sampled estimates
    est_commits: float
    est_aborts: float
    sampled_weight_by_class: dict[str, float] = field(default_factory=dict)
    true_sharing: float = 0.0
    false_sharing: float = 0.0
    problems: list[str] = field(default_factory=list)

    @property
    def true_ratio(self) -> float:
        return (self.true_aborts / self.true_commits
                if self.true_commits else float("inf"))

    @property
    def est_ratio(self) -> float:
        if self.est_commits:
            return self.est_aborts / self.est_commits
        return float("inf") if self.est_aborts else 0.0

    @property
    def ok(self) -> bool:
        return not self.problems


def _collect(name: str, out: Outcome) -> CorrectnessRow:
    profile = out.profile
    root = profile.root
    instr = out.instrument
    from ..pmu.events import RTM_ABORTED, RTM_COMMIT

    row = CorrectnessRow(
        name=name,
        expectation=MICRO_EXPECTATIONS[name],
        true_commits=instr.total_commits(),
        true_aborts=instr.total_aborts(),
        true_aborts_by_reason={
            reason: instr.total_aborts(reason)
            for reason in ("conflict", "capacity", "sync", "interrupt",
                           "explicit")
        },
        est_commits=root.total(m.COMMITS) * profile.periods[RTM_COMMIT],
        est_aborts=root.total(m.ABORTS) * profile.periods[RTM_ABORTED],
        sampled_weight_by_class={
            cls: root.total(m.AW_BY_CLASS[cls]) for cls in m.ABORT_CLASSES
        },
        true_sharing=root.total(m.TRUE_SHARING),
        false_sharing=root.total(m.FALSE_SHARING),
    )
    return row


def _check(row: CorrectnessRow) -> None:
    name = row.name
    p = row.problems
    wbc = row.sampled_weight_by_class
    total_w = sum(wbc.values())

    def dominant_class() -> str:
        return max(wbc, key=wbc.get) if total_w else "none"

    if name == "micro_low_abort":
        if row.true_ratio > 0.05:
            p.append(f"ground truth ratio {row.true_ratio:.3f} not low")
        if row.est_ratio > 0.2:
            p.append(f"sampled ratio {row.est_ratio:.3f} not low")
    elif name == "micro_moderate_abort":
        if not 0.005 <= row.true_ratio <= 1.5:
            p.append(f"ground truth ratio {row.true_ratio:.3f} not moderate")
    elif name == "micro_high_abort":
        if row.true_ratio < 0.5:
            p.append(f"ground truth ratio {row.true_ratio:.3f} not high")
        if row.est_ratio < 0.25:
            p.append(f"sampled ratio {row.est_ratio:.3f} missed the "
                     "high abort rate")
        if row.true_sharing < row.false_sharing:
            p.append("contention not classified as mostly true sharing")
    elif name == "micro_false_sharing":
        if row.false_sharing <= row.true_sharing:
            p.append(
                f"expected false sharing to dominate, got true="
                f"{row.true_sharing} false={row.false_sharing}"
            )
    elif name == "micro_sync":
        # "other" (lock-held / interrupt) aborts are serialization noise;
        # the paper's three-way classification is conflict/capacity/sync
        if total_w and (wbc["sync"] < wbc["conflict"]
                        or wbc["sync"] < wbc["capacity"]):
            p.append(f"expected sync to dominate the cause classes, "
                     f"got {wbc}")
        if row.true_aborts_by_reason.get("sync", 0) == 0:
            p.append("ground truth saw no sync aborts")
    elif name == "micro_capacity":
        if total_w and (wbc["capacity"] < wbc["conflict"]
                        or wbc["capacity"] < wbc["sync"]):
            p.append(f"expected capacity to dominate the cause classes, "
                     f"got {wbc}")
        if row.true_aborts_by_reason.get("capacity", 0) == 0:
            p.append("ground truth saw no capacity aborts")
    elif name == "micro_read_only":
        app_aborts = row.true_aborts - row.true_aborts_by_reason.get(
            "interrupt", 0) - row.true_aborts_by_reason.get("explicit", 0)
        if app_aborts > row.true_commits * 0.02:
            p.append(f"read-only txns aborted {app_aborts} times")


def validation_config(n_threads: int) -> MachineConfig:
    """The controlled-experiment sampling setup: §6 says the periods are
    tunable; validation uses faster sampling so the short microbenchmark
    runs collect enough events for quantitative comparison."""
    return MachineConfig(
        n_threads=n_threads,
        sample_periods={
            "cycles": 10_000,
            "mem_loads": 400,
            "mem_stores": 400,
            "rtm_aborted": 10,
            "rtm_commit": 30,
        },
    )


def section72(
    n_threads: int = 14,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
) -> list[CorrectnessRow]:
    """Run every microbenchmark with TxSampler + ground truth attached."""
    if config is None:
        config = validation_config(n_threads)
    rows: list[CorrectnessRow] = []
    for name in MICRO_EXPECTATIONS:
        out = run_workload(
            name, n_threads=n_threads, scale=scale, seed=seed, config=config,
            profile=True, instrument=True,
        )
        row = _collect(name, out)
        _check(row)
        rows.append(row)
    return rows


def render_section72(rows: list[CorrectnessRow]) -> str:
    lines = ["=== §7.2: TxSampler vs instrumentation ground truth ==="]
    for r in rows:
        status = "OK " if r.ok else "FAIL"
        tr = f"{r.true_ratio:.3f}" if r.true_ratio != float("inf") else "inf"
        er = f"{r.est_ratio:.3f}" if r.est_ratio != float("inf") else "inf"
        lines.append(
            f"  [{status}] {r.name:22s} true a/c={tr:>7s} sampled a/c={er:>7s}"
            f"  ({r.expectation})"
        )
        for prob in r.problems:
            lines.append(f"         ! {prob}")
    return "\n".join(lines)
