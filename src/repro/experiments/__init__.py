"""Experiment harnesses: one module per table/figure of the paper.

==================  ==========================================
module              reproduces
==================  ==========================================
``overhead``        Figure 5 (per-benchmark overhead), Figure 6
                    (overhead vs thread count)
``clomp``           Table 1 + Figure 7 (CLOMP-TM decompositions)
``categorize``      Figure 8 (Type I/II/III quadrants)
``speedup``         Table 2 (optimization overview)
``correctness``     §7.2 (validation against ground truth)
``casestudy``       §8 case studies + Figure 9
``runner``          shared build/run/profile plumbing
==================  ==========================================
"""

from .runner import Outcome, run_workload, speedup, trimmed_mean_overhead

__all__ = [
    "run_workload",
    "speedup",
    "trimmed_mean_overhead",
    "Outcome",
]
