"""§8 case studies: Dedup (Figure 9), LevelDB, Histo.

Each case study reproduces the paper's investigation loop: profile the
naive program, walk the decision tree, verify the reported symptom is
visible, apply the published fix, and measure the improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import metrics as m
from ..core.decision_tree import DecisionTree, Guidance
from ..core.report import render_cct, render_full_report
from ..htmbench.parboil import INPUT_SKEWED, INPUT_UNIFORM
from ..sim.config import MachineConfig
from .runner import run_workload


@dataclass
class CaseStudy:
    name: str
    guidance: Guidance
    naive_report: str
    findings: list[str] = field(default_factory=list)
    speedup: float = 1.0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [f"=== case study: {self.name} ===", self.guidance.render()]
        lines.extend(f"  finding: {f}" for f in self.findings)
        lines.append(f"  speedup after the published fix: {self.speedup:.2f}x")
        for p in self.problems:
            lines.append(f"  PROBLEM: {p}")
        return "\n".join(lines)


def dedup_case_study(n_threads: int = 14, scale: float = 1.0, seed: int = 0,
                     config: MachineConfig | None = None) -> CaseStudy:
    """§8.1: the decision-tree walk of Figure 1's red dotted path.

    Expected findings: significant time in critical sections, the
    dedup-cache section dominated by abort weight with a visible capacity
    component rooted in ``hashtable_search`` (Figure 9), plus synchronous
    aborts in ``dedup_write_file``; the hash fix + syscall hoist give a
    measurable speedup (paper: 1.20x)."""
    naive = run_workload("dedup", n_threads=n_threads, scale=scale,
                         seed=seed, config=config, profile=True)
    profile = naive.profile
    guidance = DecisionTree().analyze(profile)
    cs = CaseStudy(
        name="dedup",
        guidance=guidance,
        naive_report=render_full_report(profile, "dedup (naive)"),
    )
    # finding 1: hashtable_search under begin_in_tx carries abort weight
    from ..dslib.hashtable import hashtable_search
    search_nodes = [
        n for n in profile.root.walk()
        if n.key[0] == "call" and n.key[2] == hashtable_search.base
    ]
    search_weight = sum(n.total(m.ABORT_WEIGHT) for n in search_nodes)
    total_weight = profile.root.total(m.ABORT_WEIGHT)
    if total_weight:
        share = search_weight / total_weight
        cs.findings.append(
            f"hashtable_search carries {share:.1%} of the abort weight"
        )
        if share < 0.05:
            cs.problems.append(
                "hashtable_search not visible in the abort weight"
            )
    else:
        cs.problems.append("no abort weight sampled at all")
    # finding 2: capacity aborts present (long chains from the bad hash)
    cap_w = profile.root.total(m.AW_CAPACITY)
    if total_weight:
        cs.findings.append(
            f"capacity aborts contribute {cap_w / total_weight:.1%} "
            "of the abort weight"
        )
    # finding 3: synchronous aborts in the write_file section
    reports = {r.name: r for r in profile.cs_reports()}
    wf = next((r for n, r in reports.items() if "dedup_write_file" in n),
              None)
    if wf is None or wf.aborts_by_class.get("sync", 0) == 0:
        cs.problems.append("write_file's synchronous aborts not sampled")
    else:
        cs.findings.append(
            f"dedup_write_file: {wf.aborts_by_class['sync']:.0f} sampled "
            "synchronous aborts (the in-CS write())"
        )
    # the published fix
    opt = run_workload("dedup_opt", n_threads=n_threads, scale=scale,
                       seed=seed, config=config)
    cs.speedup = naive.result.makespan / opt.result.makespan
    if cs.speedup <= 1.0:
        cs.problems.append(f"fix did not speed dedup up ({cs.speedup:.2f}x)")
    return cs


def leveldb_case_study(n_threads: int = 14, scale: float = 1.0,
                       seed: int = 0,
                       config: MachineConfig | None = None) -> CaseStudy:
    """§8.2: ReadRandom's abort/commit ratio collapses once the refcount
    transactions are split (paper: 2.8 -> 0.38, 1.05x overall)."""
    naive = run_workload("leveldb", n_threads=n_threads, scale=scale,
                         seed=seed, config=config, profile=True)
    guidance = DecisionTree().analyze(naive.profile)
    cs = CaseStudy(
        name="leveldb",
        guidance=guidance,
        naive_report=render_full_report(naive.profile, "leveldb (naive)"),
    )
    naive_ratio = naive.result.abort_commit_ratio
    cs.findings.append(f"naive abort/commit ratio: {naive_ratio:.2f}")
    if naive_ratio < 0.5:
        cs.problems.append("naive abort/commit ratio not high")
    opt = run_workload("leveldb_opt", n_threads=n_threads, scale=scale,
                       seed=seed, config=config)
    opt_ratio = opt.result.abort_commit_ratio
    cs.findings.append(f"split abort/commit ratio: {opt_ratio:.2f}")
    if opt_ratio >= naive_ratio:
        cs.problems.append("splitting did not reduce the abort ratio")
    cs.speedup = naive.result.makespan / opt.result.makespan
    if cs.speedup <= 1.0:
        cs.problems.append(f"fix did not speed LevelDB up ({cs.speedup:.2f}x)")
    return cs


def histo_case_study(n_threads: int = 14, scale: float = 1.0, seed: int = 0,
                     config: MachineConfig | None = None) -> CaseStudy:
    """§8.3: input 1 — coalescing fixes the T_oh pathology; input 2 —
    coalescing alone false-shares, sorting the input repairs it."""
    naive = run_workload("histo", n_threads=n_threads, scale=scale,
                         seed=seed, config=config, profile=True,
                         input_kind=INPUT_SKEWED)
    guidance = DecisionTree().analyze(naive.profile)
    cs = CaseStudy(
        name="histo",
        guidance=guidance,
        naive_report=render_full_report(naive.profile, "histo (naive)"),
    )
    hottest = naive.profile.hottest_cs()
    if hottest is not None:
        oh = hottest.time_fractions()[m.T_OH]
        cs.findings.append(f"T_oh is {oh:.0%} of the hot section's time")
        if oh < 0.2:
            cs.problems.append("T_oh pathology not visible")
    # input 1: coalesce
    opt1 = run_workload("histo_opt", n_threads=n_threads, scale=scale,
                        seed=seed, config=config, input_kind=INPUT_SKEWED)
    cs.speedup = naive.result.makespan / opt1.result.makespan
    if cs.speedup <= 1.2:
        cs.problems.append(
            f"coalescing gained only {cs.speedup:.2f}x on input 1"
        )
    # input 2: coalescing without sorting raises the abort ratio
    # (false sharing); sorting repairs it
    naive2 = run_workload("histo", n_threads=n_threads, scale=scale,
                          seed=seed, config=config, input_kind=INPUT_UNIFORM)
    coal2 = run_workload("histo", n_threads=n_threads, scale=scale,
                         seed=seed, config=config, input_kind=INPUT_UNIFORM,
                         txn_gran=32, profile=True)
    sort2 = run_workload("histo", n_threads=n_threads, scale=scale,
                         seed=seed, config=config, input_kind=INPUT_UNIFORM,
                         txn_gran=32, sort_input=True)
    r_coal = coal2.result.abort_commit_ratio
    r_naive = naive2.result.abort_commit_ratio
    cs.findings.append(
        f"input 2: a/c naive={r_naive:.3f} coalesced={r_coal:.3f} "
        f"(coalescing alone raises it)"
    )
    if r_coal <= r_naive:
        cs.problems.append("coalescing alone did not raise input 2's a/c")
    fs = coal2.profile.root.total(m.FALSE_SHARING)
    ts = coal2.profile.root.total(m.TRUE_SHARING)
    cs.findings.append(
        f"input 2 coalesced: sampled sharing true={ts:.0f} false={fs:.0f}"
    )
    speed_sorted = coal2.result.makespan / sort2.result.makespan
    cs.findings.append(
        f"input 2: sorting the input gains {speed_sorted:.2f}x over "
        "coalescing alone"
    )
    if sort2.result.makespan >= coal2.result.makespan:
        cs.problems.append("sorting did not improve the coalesced input 2")
    return cs


def figure9(n_threads: int = 14, scale: float = 1.0, seed: int = 0,
            config: MachineConfig | None = None) -> str:
    """The dedup calling-context view annotated with abort weight."""
    out = run_workload("dedup", n_threads=n_threads, scale=scale, seed=seed,
                       config=config, profile=True)
    return render_cct(out.profile, metric=m.ABORT_WEIGHT, min_share=0.02)
