"""Figure 8: HTM application categorization.

Profiles every (non-optimized) HTMBench program, computes r_cs and the
abort/commit ratio, and classifies it into the paper's Type I/II/III
quadrants.  :func:`agreement` scores the placement against the type the
paper reports for each program.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.categorize import Category, categorize
from ..htmbench.base import WORKLOADS
from ..sim.config import DEFAULT_THREADS, MachineConfig
from .runner import run_workload

#: characterization needs statistically meaningful abort/commit
#: estimates even for programs with few transactions per run.  Shared
#: by the serial harness and the campaign suite so both address the
#: same cached runs.
FIG8_SAMPLE_PERIODS = {
    "cycles": 5_000, "mem_loads": 4_000, "mem_stores": 4_000,
    "rtm_aborted": 5, "rtm_commit": 25,
}

#: programs included in Figure 8 (everything except optimized variants
#: and the controlled microbenchmarks)
def figure8_names() -> list[str]:
    return sorted(
        name
        for name, cls in WORKLOADS.items()
        if not name.endswith("_opt")
        and cls.suite not in ("micro",)
        and name != "clomp_tm"
    )


@dataclass
class CategorizedRow:
    category: Category
    expected_type: str

    @property
    def agrees(self) -> bool:
        return self.category.type_ == self.expected_type


def figure8(
    names: Sequence[str] | None = None,
    n_threads: int = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
) -> list[CategorizedRow]:
    if config is None:
        config = MachineConfig(
            n_threads=n_threads,
            sample_periods=dict(FIG8_SAMPLE_PERIODS),
        )
    rows: list[CategorizedRow] = []
    for name in names or figure8_names():
        out = run_workload(
            name, n_threads=n_threads, scale=scale, seed=seed,
            config=config, profile=True,
        )
        cat = categorize(name, out.profile)
        rows.append(
            CategorizedRow(category=cat, expected_type=WORKLOADS[name].expected_type)
        )
    return rows


def agreement(rows: Sequence[CategorizedRow]) -> float:
    """Fraction of programs landing in the paper's quadrant."""
    if not rows:
        return 0.0
    return sum(1 for r in rows if r.agrees) / len(rows)


def by_type(rows: Sequence[CategorizedRow]) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {"I": [], "II": [], "III": []}
    for r in rows:
        out[r.category.type_].append(r.category.name)
    return out


def render_figure8(rows: Sequence[CategorizedRow]) -> str:
    lines = ["=== Figure 8: application categorization ==="]
    groups = by_type(rows)
    for type_, names in groups.items():
        lines.append(f"  Type {type_}: {', '.join(sorted(names)) or '-'}")
    lines.append("  -- per program --")
    for r in sorted(rows, key=lambda r: r.category.name):
        mark = "" if r.agrees else f"   (paper: Type {r.expected_type})"
        c = r.category
        ac = f"{c.abort_commit:.2f}" if c.abort_commit != float("inf") else "inf"
        lines.append(
            f"  {c.name:18s} r_cs={c.r_cs:5.2f} r_a/c={ac:>6s} "
            f"-> Type {c.type_}{mark}"
        )
    lines.append(f"  agreement with the paper: {agreement(rows):.0%}")
    return "\n".join(lines)
