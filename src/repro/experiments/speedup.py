"""Table 2: the optimization overview.

For every (naive, optimized) pair the harness measures the speedup and
verifies that the *symptom* the paper reports is visible in the naive
profile — i.e. TxSampler would actually have led you to the fix.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import metrics as m
from ..core.analyzer import Profile
from ..htmbench.optimized import TABLE2
from ..sim.config import MachineConfig
from .runner import run_workload, speedup as measure_speedup


@dataclass
class SpeedupRow:
    program: str
    optimized: str
    symptom: str
    paper_speedup: float
    measured_speedup: float
    symptom_evidence: str

    @property
    def improved(self) -> bool:
        return self.measured_speedup > 1.0


def _symptom_evidence(name: str, profile: Profile) -> str:
    """Extract the naive profile's headline pathology, per program."""
    s = profile.summary()
    cs = profile.hottest_cs()
    parts = [f"r_cs={s.r_cs:.0%}"]
    if cs is not None:
        fr = cs.time_fractions()
        parts.append(
            f"tx/fb/wait/oh={fr[m.T_TX]:.0%}/{fr[m.T_FB]:.0%}/"
            f"{fr[m.T_WAIT]:.0%}/{fr[m.T_OH]:.0%}"
        )
        ac = cs.abort_commit_ratio
        parts.append(f"a/c={ac:.2f}" if ac != float("inf") else "a/c=inf")
        parts.append(
            f"conf/cap/sync={cs.r_conflict:.0%}/{cs.r_capacity:.0%}/"
            f"{cs.r_synchronous:.0%}"
        )
    return " ".join(parts)


def table2(
    n_threads: int = 14,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
) -> list[SpeedupRow]:
    rows: list[SpeedupRow] = []
    for naive, opt, paper, symptom in TABLE2:
        s, _, _ = measure_speedup(
            naive, opt, n_threads=n_threads, scale=scale, seed=seed,
            config=config,
        )
        profiled = run_workload(
            naive, n_threads=n_threads, scale=scale, seed=seed,
            config=config, profile=True,
        )
        rows.append(SpeedupRow(
            program=naive,
            optimized=opt,
            symptom=symptom,
            paper_speedup=paper,
            measured_speedup=s,
            symptom_evidence=_symptom_evidence(naive, profiled.profile),
        ))
    return rows


def render_table2(rows: list[SpeedupRow]) -> str:
    lines = [
        "=== Table 2: optimization overview ===",
        f"  {'program':12s} {'paper':>6s} {'ours':>6s}  symptom (paper) "
        f"| naive profile evidence",
    ]
    for r in rows:
        lines.append(
            f"  {r.program:12s} {r.paper_speedup:5.2f}x {r.measured_speedup:5.2f}x"
            f"  {r.symptom} | {r.symptom_evidence}"
        )
    return "\n".join(lines)
