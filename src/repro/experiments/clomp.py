"""Table 1 and Figure 7: the CLOMP-TM controlled experiments.

Runs the six configurations (small/large transactions x three scatter
inputs) under TxSampler and extracts the three decompositions of
Figure 7: CPU-cycle components, abort counts by cause, and abort weight
by cause.  :func:`check_expectations` encodes the paper's narrative as
machine-checkable assertions (used by both tests and benches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import metrics as m
from ..core.analyzer import Profile
from ..htmbench.clomp_tm import FIGURE7_CONFIGS
from ..sim.config import DEFAULT_THREADS, MachineConfig
from .runner import run_workload

#: Table 1, verbatim
TABLE1 = [
    (1, "Adjacent", "Rare conflicts, cache prefetch friendly"),
    (2, "FirstParts", "High conflicts, cache prefetch friendly"),
    (3, "Random", "Rare conflicts, cache prefetch unfriendly"),
]

#: the controlled experiment samples abort events densely so the
#: per-cause decomposition is statistically stable (§6: periods are
#: tunable).  Shared by the serial harness and the campaign suite so
#: both address the same cached runs.
FIG7_SAMPLE_PERIODS = {
    "cycles": 6_000, "mem_loads": 3_000, "mem_stores": 3_000,
    "rtm_aborted": 3, "rtm_commit": 40,
}


@dataclass
class ClompRow:
    """One bar group of Figure 7."""

    label: str                      # e.g. "large-2"
    txn_size: str
    scatter: int
    time_fractions: dict[str, float] = field(default_factory=dict)
    aborts_by_class: dict[str, float] = field(default_factory=dict)
    weight_by_class: dict[str, float] = field(default_factory=dict)
    commits: int = 0
    aborts: int = 0

    _CAUSES = ("conflict", "capacity", "sync")

    def abort_share(self, cls: str) -> float:
        """Share among the paper's three cause classes (interrupt/explicit
        "other" aborts are sampling/serialization artifacts)."""
        total = sum(self.aborts_by_class.get(c, 0.0) for c in self._CAUSES)
        return self.aborts_by_class.get(cls, 0.0) / total if total else 0.0

    def weight_share(self, cls: str) -> float:
        total = sum(self.weight_by_class.get(c, 0.0) for c in self._CAUSES)
        return self.weight_by_class.get(cls, 0.0) / total if total else 0.0


def clomp_row(label: str, size: str, scatter: int, profile: Profile,
              commits: int, aborts_by_reason: dict[str, int]) -> ClompRow:
    """One Figure 7 bar group from a profiled clomp_tm run's artifacts.

    Shared by the serial harness (live profile) and the campaign
    assembly (profile reconstructed from a cached database), so both
    paths compute identical rows.
    """
    summary = profile.summary()
    row = ClompRow(label=label, txn_size=size, scatter=scatter)
    row.time_fractions = summary.time_fractions()
    root = profile.root
    for cls in m.ABORT_CLASSES:
        row.aborts_by_class[cls] = root.total(m.AB_BY_CLASS[cls])
        row.weight_by_class[cls] = root.total(m.AW_BY_CLASS[cls])
    row.commits = commits
    # application-caused aborts only (exclude profiler-induced
    # interrupt aborts and lock-held explicit retries)
    row.aborts = sum(
        aborts_by_reason.get(r, 0) for r in ("conflict", "capacity", "sync")
    )
    return row


def figure7(
    n_threads: int = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
) -> list[ClompRow]:
    """Collect TxSampler data for the six CLOMP-TM configurations."""
    if config is None:
        config = MachineConfig(
            n_threads=n_threads,
            sample_periods=dict(FIG7_SAMPLE_PERIODS),
        )
    rows: list[ClompRow] = []
    for label, size, scatter in FIGURE7_CONFIGS:
        out = run_workload(
            "clomp_tm", n_threads=n_threads, scale=scale, seed=seed,
            config=config, profile=True, txn_size=size, scatter=scatter,
        )
        rows.append(clomp_row(label, size, scatter, out.profile,
                              out.result.commits,
                              out.result.aborts_by_reason))
    return rows


def check_expectations(rows: list[ClompRow]) -> list[str]:
    """The paper's Figure 7 narrative as checks; returns violations."""
    by_label = {r.label: r for r in rows}
    problems: list[str] = []

    def expect(cond: bool, msg: str) -> None:
        if not cond:
            problems.append(msg)

    # small transactions: begin/end overhead is a major component
    for label in ("small-1", "small-2", "small-3"):
        r = by_label[label]
        expect(
            r.time_fractions[m.T_OH] >= 0.10,
            f"{label}: expected visible T_oh, got "
            f"{r.time_fractions[m.T_OH]:.1%}",
        )
    # large-1 (Adjacent): dominated by useful transactional work, ~no aborts
    r = by_label["large-1"]
    expect(
        r.time_fractions[m.T_TX] >= 0.5,
        f"large-1: expected T_tx-dominated, got {r.time_fractions}",
    )
    expect(
        r.aborts <= r.commits * 0.2,
        f"large-1: expected almost no aborts, got {r.aborts} vs "
        f"{r.commits} commits",
    )
    # large-2 (FirstParts): lock waiting blows up; conflict aborts dominate
    r = by_label["large-2"]
    expect(
        r.time_fractions[m.T_WAIT]
        > by_label["large-1"].time_fractions[m.T_WAIT],
        "large-2: expected more lock waiting than large-1",
    )
    expect(
        r.abort_share("conflict") >= 0.5,
        f"large-2: expected conflict-dominated aborts, got "
        f"{r.aborts_by_class}",
    )
    # large-3 (Random): capacity aborts take a visible share, larger than
    # in any other configuration
    r = by_label["large-3"]
    expect(
        r.abort_share("capacity")
        > max(
            by_label[lbl].abort_share("capacity")
            for lbl in ("small-1", "small-2", "small-3", "large-1", "large-2")
        ),
        f"large-3: expected the largest capacity-abort share, got "
        f"{r.aborts_by_class}",
    )
    expect(
        r.weight_share("capacity") >= 0.10,
        f"large-3: expected >=10% of abort weight from capacity, got "
        f"{r.weight_by_class}",
    )
    return problems


def render_figure7(rows: list[ClompRow]) -> str:
    lines = ["=== Figure 7: CLOMP-TM decompositions (TxSampler data) ==="]
    lines.append("-- time decomposition (fractions of W) --")
    for r in rows:
        fr = r.time_fractions
        lines.append(
            f"  {r.label:8s} non-CS={fr['non_cs']:5.1%} HTM={fr[m.T_TX]:5.1%} "
            f"fallback={fr[m.T_FB]:5.1%} lock_wait={fr[m.T_WAIT]:5.1%} "
            f"overhead={fr[m.T_OH]:5.1%}"
        )
    lines.append("-- abort decomposition (sampled counts) --")
    for r in rows:
        lines.append(
            f"  {r.label:8s} conflicts={r.abort_share('conflict'):5.1%} "
            f"capacity={r.abort_share('capacity'):5.1%} "
            f"sync={r.abort_share('sync'):5.1%} "
            f"other={r.abort_share('other'):5.1%}"
        )
    lines.append("-- abort weight decomposition --")
    for r in rows:
        lines.append(
            f"  {r.label:8s} conflicts_w={r.weight_share('conflict'):5.1%} "
            f"capacity_w={r.weight_share('capacity'):5.1%} "
            f"sync_w={r.weight_share('sync'):5.1%}"
        )
    return "\n".join(lines)


def render_table1() -> str:
    lines = ["=== Table 1: CLOMP-TM inputs ==="]
    for num, mode, traits in TABLE1:
        lines.append(f"  input {num}: {mode:11s} {traits}")
    return "\n".join(lines)
