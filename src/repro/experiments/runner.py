"""Shared experiment plumbing: build a workload, run it, profile it.

The paper's measurement protocol (§7.1) is reproduced: overhead numbers
average five of seven runs, dropping the smallest and largest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.analyzer import Profile
from ..core.profiler import TxSampler
from .. import htmbench  # noqa: F401  (imports register all workloads)
from ..htmbench.base import Workload, get_workload
from ..obs.hooks import Observability
from ..rtm.instrument import TxnInstrumentation
from ..sim.config import MachineConfig
from ..sim.engine import RunResult, Simulator

WorkloadLike = str | Workload


@dataclass
class Outcome:
    """One run's artifacts."""

    result: RunResult
    sim: Simulator
    profile: Profile | None = None
    profiler: TxSampler | None = None
    instrument: TxnInstrumentation | None = None
    #: the run's observability bundle (tracer/metrics), when enabled
    obs: Observability | None = None


def _resolve(workload: WorkloadLike, params: dict) -> Workload:
    if isinstance(workload, str):
        return get_workload(workload, **params)
    return workload


def run_workload(
    workload: WorkloadLike,
    n_threads: int = 14,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
    profile: bool = False,
    instrument: bool = False,
    contention_threshold: int = 50_000,
    trace: bool = False,
    metrics: bool = False,
    **params,
) -> Outcome:
    """Build + run one workload; optionally attach TxSampler and/or the
    ground-truth instrumentation.

    ``trace``/``metrics`` switch on the ``repro.obs`` tracer and metrics
    registry for this run (in addition to whatever the config enables);
    the resulting bundle is returned as ``Outcome.obs``.
    """
    cfg = config or MachineConfig(n_threads=n_threads)
    if trace or metrics:
        cfg = cfg.evolve(
            trace_enabled=cfg.trace_enabled or trace,
            metrics_enabled=cfg.metrics_enabled or metrics,
        )
    wl = _resolve(workload, params)
    profiler = TxSampler(contention_threshold) if profile else None
    sim = Simulator(cfg, n_threads=n_threads, seed=seed, profiler=profiler)
    instr = None
    if instrument:
        instr = TxnInstrumentation()
        sim.rtm.instrument = instr
    rng = random.Random(seed * 7919 + 13)
    sim.set_programs(wl.build(sim, n_threads, scale, rng))
    result = sim.run()
    return Outcome(
        result=result,
        sim=sim,
        profile=profiler.profile() if profiler else None,
        profiler=profiler,
        instrument=instr,
        obs=sim.obs,
    )


def trimmed_mean_overhead(
    workload: WorkloadLike,
    n_threads: int = 14,
    scale: float = 1.0,
    config: MachineConfig | None = None,
    runs: int = 7,
    drop: int = 1,
    **params,
) -> tuple[float, list[float]]:
    """§7.1's protocol: run ``runs`` seeds native and sampled, compute the
    per-seed makespan overhead, drop the ``drop`` smallest and largest,
    and average the rest.  Returns ``(mean_overhead, all_overheads)``."""
    overheads: list[float] = []
    for seed in range(runs):
        native = run_workload(
            workload, n_threads=n_threads, scale=scale, seed=seed,
            config=config, profile=False, **params,
        )
        sampled = run_workload(
            workload, n_threads=n_threads, scale=scale, seed=seed,
            config=config, profile=True, **params,
        )
        overheads.append(
            sampled.result.makespan / native.result.makespan - 1.0
        )
    trimmed = sorted(overheads)
    if drop and len(trimmed) > 2 * drop:
        trimmed = trimmed[drop:-drop]
    return sum(trimmed) / len(trimmed), overheads


def speedup(
    baseline: WorkloadLike,
    optimized: WorkloadLike,
    n_threads: int = 14,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
    baseline_params: dict | None = None,
    optimized_params: dict | None = None,
) -> tuple[float, Outcome, Outcome]:
    """Makespan ratio baseline/optimized (>1 means the fix helps)."""
    base = run_workload(
        baseline, n_threads=n_threads, scale=scale, seed=seed, config=config,
        **(baseline_params or {}),
    )
    opt = run_workload(
        optimized, n_threads=n_threads, scale=scale, seed=seed, config=config,
        **(optimized_params or {}),
    )
    return base.result.makespan / opt.result.makespan, base, opt
