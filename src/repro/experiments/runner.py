"""Shared experiment plumbing: build a workload, run it, profile it.

The paper's measurement protocol (§7.1) is reproduced: overhead numbers
average five of seven runs, dropping the smallest and largest.

:func:`trimmed_mean_overhead` and :func:`speedup` optionally route
their runs through a :mod:`repro.campaign` result store: pass
``store=`` and every (workload, threads, scale, seed, config, profile)
combination is executed at most once ever — the native run a speedup
measurement produces is the same content-addressed record the overhead
protocol reads back, and vice versa.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.analyzer import Profile
from ..core.profiler import TxSampler
from ..faults.plan import FaultPlan, coerce_plan
from .. import htmbench  # noqa: F401  (imports register all workloads)
from ..htmbench.base import Workload, get_workload
from ..obs.hooks import Observability
from ..replay.recorder import ObservationRecorder
from ..rtm.instrument import TxnInstrumentation
from ..sim.config import DEFAULT_THREADS, MachineConfig
from ..sim.engine import RunResult, Simulator

WorkloadLike = str | Workload


@dataclass
class Outcome:
    """One run's artifacts.

    ``sim``/``profiler``/``instrument``/``obs`` are ``None`` when the
    outcome was reconstructed from a cached campaign record rather than
    a live simulation.
    """

    result: RunResult
    sim: Simulator | None = None
    profile: Profile | None = None
    profiler: TxSampler | None = None
    instrument: TxnInstrumentation | None = None
    #: the run's observability bundle (tracer/metrics), when enabled
    obs: Observability | None = None
    #: the sealed replay log (text form), when recording was requested
    replay_log: str | None = None


def _resolve(workload: WorkloadLike, params: dict) -> Workload:
    if isinstance(workload, str):
        return get_workload(workload, **params)
    return workload


def run_workload(
    workload: WorkloadLike,
    n_threads: int = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
    profile: bool = False,
    instrument: bool = False,
    contention_threshold: int = 50_000,
    trace: bool = False,
    metrics: bool = False,
    faults: FaultPlan | dict | None = None,
    record: bool = False,
    **params,
) -> Outcome:
    """Build + run one workload; optionally attach TxSampler and/or the
    ground-truth instrumentation.

    ``trace``/``metrics`` switch on the ``repro.obs`` tracer and metrics
    registry for this run (in addition to whatever the config enables);
    the resulting bundle is returned as ``Outcome.obs``.

    ``faults`` is an optional :class:`repro.faults.FaultPlan` (or its
    dict form) injected at the observation boundary; it overrides any
    plan already on ``config``.

    ``record`` captures the observation stream into a sealed
    :mod:`repro.replay` log, returned as ``Outcome.replay_log``;
    it requires ``profile`` (there is no stream to record otherwise).
    """
    cfg = config or MachineConfig(n_threads=n_threads)
    if faults is not None:
        plan = coerce_plan(faults)
        cfg = cfg.evolve(
            fault_plan=plan.to_dict() if plan is not None else None,
        )
    if trace or metrics:
        cfg = cfg.evolve(
            trace_enabled=cfg.trace_enabled or trace,
            metrics_enabled=cfg.metrics_enabled or metrics,
        )
    if record and not profile:
        raise ValueError("record=True requires profile=True — the replay "
                         "log captures the profiler's observation stream")
    wl = _resolve(workload, params)
    profiler = TxSampler(contention_threshold) if profile else None
    recorder = None
    if record:
        recorder = ObservationRecorder({
            "workload": wl.name if isinstance(workload, str) else
            getattr(wl, "name", str(wl)),
            "n_threads": n_threads,
            "scale": scale,
            "seed": seed,
            "fault_plan": cfg.fault_plan,
        })
    sim = Simulator(cfg, n_threads=n_threads, seed=seed, profiler=profiler,
                    recorder=recorder)
    instr = None
    if instrument:
        instr = TxnInstrumentation()
        sim.rtm.instrument = instr
    rng = random.Random(seed * 7919 + 13)
    sim.set_programs(wl.build(sim, n_threads, scale, rng))
    result = sim.run()
    replay_log = None
    if recorder is not None:
        replay_log = recorder.finalize(
            summary={"makespan": result.makespan,
                     "samples_delivered": result.samples_delivered},
        ).dumps()
    return Outcome(
        result=result,
        sim=sim,
        profile=profiler.profile() if profiler else None,
        profiler=profiler,
        instrument=instr,
        obs=sim.obs,
        replay_log=replay_log,
    )


def cached_run(
    store,
    workload: str,
    n_threads: int = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
    profile: bool = False,
    metrics: bool = False,
    **params,
) -> Outcome:
    """A content-addressed :func:`run_workload`: look the run up in the
    campaign ``store`` and only simulate on a miss.  The returned
    outcome is reconstructed from the stored record either way, so
    cached and fresh calls are bit-identical."""
    from ..campaign.spec import make_run_spec
    from ..campaign.worker import execute_job, outcome_from_record

    spec = make_run_spec(
        workload, n_threads=n_threads, scale=scale, seed=seed,
        config=config, profile=profile, metrics=metrics,
        params=params or None,
    )
    record = store.get(spec.key)
    if record is None:
        record = execute_job(spec.to_dict(), {})
        store.put(spec.key, record)
    return outcome_from_record(record)


def trimmed_mean_overhead(
    workload: WorkloadLike,
    n_threads: int = DEFAULT_THREADS,
    scale: float = 1.0,
    config: MachineConfig | None = None,
    runs: int = 7,
    drop: int = 1,
    store=None,
    **params,
) -> tuple[float, list[float]]:
    """§7.1's protocol: run ``runs`` seeds native and sampled, compute the
    per-seed makespan overhead, drop the ``drop`` smallest and largest,
    and average the rest.  Returns ``(mean_overhead, all_overheads)``.

    With a ``store``, each (native, sampled) run is fetched from — or
    computed once into — the campaign result store, so runs shared with
    other protocols (e.g. :func:`speedup`'s native run for the same
    seed) are never re-simulated.
    """
    if drop and runs <= 2 * drop:
        raise ValueError(
            f"runs must exceed 2*drop to leave a mean: got runs={runs}, "
            f"drop={drop} (need runs > {2 * drop})"
        )

    def one(seed: int, profiled: bool) -> Outcome:
        if store is not None and isinstance(workload, str):
            return cached_run(
                store, workload, n_threads=n_threads, scale=scale,
                seed=seed, config=config, profile=profiled, **params,
            )
        return run_workload(
            workload, n_threads=n_threads, scale=scale, seed=seed,
            config=config, profile=profiled, **params,
        )

    overheads: list[float] = []
    for seed in range(runs):
        native = one(seed, False)
        sampled = one(seed, True)
        overheads.append(
            sampled.result.makespan / native.result.makespan - 1.0
        )
    trimmed = sorted(overheads)
    if drop and len(trimmed) > 2 * drop:
        trimmed = trimmed[drop:-drop]
    return sum(trimmed) / len(trimmed), overheads


def speedup(
    baseline: WorkloadLike,
    optimized: WorkloadLike,
    n_threads: int = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
    baseline_params: dict | None = None,
    optimized_params: dict | None = None,
    store=None,
) -> tuple[float, Outcome, Outcome]:
    """Makespan ratio baseline/optimized (>1 means the fix helps).

    With a ``store``, both runs go through the campaign result store
    (see :func:`trimmed_mean_overhead`)."""

    def one(workload: WorkloadLike, params: dict | None) -> Outcome:
        if store is not None and isinstance(workload, str):
            return cached_run(
                store, workload, n_threads=n_threads, scale=scale,
                seed=seed, config=config, **(params or {}),
            )
        return run_workload(
            workload, n_threads=n_threads, scale=scale, seed=seed,
            config=config, **(params or {}),
        )

    base = one(baseline, baseline_params)
    opt = one(optimized, optimized_params)
    return base.result.makespan / opt.result.makespan, base, opt
