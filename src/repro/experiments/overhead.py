"""Figures 5 and 6: TxSampler's runtime overhead.

Figure 5: per-benchmark overhead of running with TxSampler attached,
averaged over several seeds with the paper's trimmed-mean protocol
(drop the smallest and largest of the runs).  Figure 6: the same
overhead averaged over the STAMP suite at 1/2/4/8/14 threads.

Because our simulated executions are ~10^5-10^6 cycles (the paper's are
~10^11), individual high-conflict benchmarks show larger run-to-run
variation: a sampling interrupt perturbs the conflict interleaving enough
to move the makespan either way.  The *suite mean* is the stable,
comparable statistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from ..sim.config import MachineConfig
from .runner import trimmed_mean_overhead

#: the Figure 5 benchmark list (every non-optimized HTMBench program that
#: the paper's figure covers)
FIG5_BENCHMARKS: tuple[str, ...] = (
    # STAMP
    "vacation", "kmeans", "genome", "labyrinth", "yada", "intruder", "ssca",
    # PARSEC
    "dedup", "netdedup", "netstreamcluster", "netferret",
    # SPLASH-2
    "barnes", "fmm", "ocean", "water", "raytrace",
    # Parboil / NPB / HPCS
    "histo", "ua", "ssca2",
    # Synchrobench
    "linkedlist", "skiplist",
    # RMS-TM
    "utilitymine", "scalparc",
    # applications
    "leveldb", "avltree", "bplustree", "leetm", "kyotocabinet",
    "berkeleydb", "memcached", "pbzip2", "bart", "quaketm",
)

#: the STAMP subset used for Figure 6
FIG6_BENCHMARKS: tuple[str, ...] = (
    "vacation", "kmeans", "genome", "labyrinth", "yada", "intruder", "ssca",
)

FIG6_THREAD_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 14)


@dataclass
class OverheadRow:
    """One Figure 5 bar: a benchmark's trimmed-mean overhead + spread."""

    name: str
    mean: float
    min_: float
    max_: float
    runs: list[float]


def figure5(
    benchmarks: Sequence[str] | None = None,
    n_threads: int = 14,
    scale: float = 1.0,
    runs: int = 5,
    config: MachineConfig | None = None,
) -> list[OverheadRow]:
    """Per-benchmark sampling overhead (the bars of Figure 5)."""
    rows: list[OverheadRow] = []
    for name in benchmarks or FIG5_BENCHMARKS:
        mean, all_runs = trimmed_mean_overhead(
            name, n_threads=n_threads, scale=scale, runs=runs, drop=1,
            config=config,
        )
        rows.append(OverheadRow(
            name=name, mean=mean, min_=min(all_runs), max_=max(all_runs),
            runs=all_runs,
        ))
    return rows


def suite_mean(rows: Sequence[OverheadRow]) -> float:
    return sum(r.mean for r in rows) / len(rows) if rows else 0.0


def figure6(
    thread_counts: Sequence[int] = FIG6_THREAD_COUNTS,
    benchmarks: Sequence[str] = FIG6_BENCHMARKS,
    scale: float = 1.0,
    runs: int = 3,
) -> dict[int, tuple[float, float]]:
    """STAMP-average overhead per thread count: {threads: (mean, spread)}."""
    out: dict[int, tuple[float, float]] = {}
    for n in thread_counts:
        means = []
        for name in benchmarks:
            mean, _ = trimmed_mean_overhead(
                name, n_threads=n, scale=scale, runs=runs, drop=0,
            )
            means.append(mean)
        avg = sum(means) / len(means)
        var = sum((x - avg) ** 2 for x in means) / len(means)
        out[n] = (avg, math.sqrt(var))
    return out


def render_figure5(rows: Sequence[OverheadRow]) -> str:
    lines = ["=== Figure 5: TxSampler runtime overhead (native vs sampled) ==="]
    for r in rows:
        bar = "#" * max(0, min(40, int(round(r.mean * 400))))
        lines.append(
            f"  {r.name:18s} {r.mean:7.2%}  [{r.min_:+.1%}, {r.max_:+.1%}] {bar}"
        )
    lines.append(f"  {'MEAN':18s} {suite_mean(rows):7.2%}")
    return "\n".join(lines)


def render_figure6(data: dict[int, tuple[float, float]]) -> str:
    lines = ["=== Figure 6: overhead vs thread count (STAMP average) ==="]
    for n, (mean, spread) in sorted(data.items()):
        lines.append(f"  {n:2d} threads: {mean:7.2%} +- {spread:.2%}")
    return "\n".join(lines)
