"""TSX abort status codes.

Real RTM reports the abort cause through EAX bits after ``xbegin``
(_XABORT_EXPLICIT, _XABORT_RETRY, _XABORT_CONFLICT, _XABORT_CAPACITY, ...).
We keep the same bit layout plus a symbolic ``reason`` so profiler-side
classification (conflict / capacity / synchronous) mirrors §5's penalty
metrics.  Interrupt-induced aborts — the PMU sampling artifact at the heart
of Challenge I — set *no* cause bit except RETRY, exactly like hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

# EAX bit layout (Intel SDM Vol. 1, §16.3.5)
XABORT_EXPLICIT = 1 << 0
XABORT_RETRY = 1 << 1
XABORT_CONFLICT = 1 << 2
XABORT_CAPACITY = 1 << 3
XABORT_DEBUG = 1 << 4
XABORT_NESTED = 1 << 5
# auxiliary PEBS bit (not part of EAX): set when a capacity abort came
# from the *write* set; the artifact's viewer splits capacity aborts
# into read/write this way
XCAP_WRITE = 1 << 8

# symbolic reasons (what the simulator knows; the *profiler* must infer its
# classification from the status bits and PMU event metadata)
ABORT_CONFLICT = "conflict"
ABORT_CAPACITY = "capacity"
ABORT_SYNC = "sync"          # unfriendly instruction: syscall, page fault, ...
ABORT_INTERRUPT = "interrupt"  # PMU counter overflow aborted the transaction
ABORT_EXPLICIT = "explicit"   # xabort issued by software

REASONS = (ABORT_CONFLICT, ABORT_CAPACITY, ABORT_SYNC, ABORT_INTERRUPT, ABORT_EXPLICIT)

_REASON_BITS = {
    ABORT_CONFLICT: XABORT_CONFLICT | XABORT_RETRY,
    ABORT_CAPACITY: XABORT_CAPACITY,
    ABORT_SYNC: 0,  # synchronous aborts set no cause bits on TSX
    ABORT_INTERRUPT: XABORT_RETRY,
    ABORT_EXPLICIT: XABORT_EXPLICIT | XABORT_RETRY,
}


@dataclass(frozen=True)
class AbortStatus:
    """One abort's cause as observable by software.

    Attributes
    ----------
    reason:
        Symbolic cause (one of the ``ABORT_*`` constants).
    eax:
        The TSX status bits software would see in EAX.
    aborter_tid:
        For conflict aborts, the thread whose access killed this
        transaction (``-1`` otherwise).  Real hardware does not report
        this; it is exposed only to the *instrumentation ground truth*,
        never to the sampling profiler.
    detail:
        Free-form cause detail (e.g. the syscall kind), again ground-truth
        only.
    """

    reason: str
    eax: int = -1
    aborter_tid: int = -1
    detail: str = ""

    def __post_init__(self):
        if self.eax == -1:
            object.__setattr__(self, "eax", _REASON_BITS[self.reason])

    @property
    def may_retry(self) -> bool:
        """Whether the RETRY hint bit suggests re-attempting in hardware.

        Capacity and synchronous aborts are persistent: retrying cannot
        succeed, so the runtime goes straight to the fallback path
        (paper §7: "we do not retry transactions with persistent aborts").
        """
        return bool(self.eax & XABORT_RETRY)

    @property
    def is_conflict(self) -> bool:
        return bool(self.eax & XABORT_CONFLICT)

    @property
    def is_capacity(self) -> bool:
        return bool(self.eax & XABORT_CAPACITY)

    @property
    def is_sync(self) -> bool:
        """No cause bits at all: a synchronous (unfriendly-op) abort."""
        return self.reason == ABORT_SYNC

    def __str__(self) -> str:
        return f"{self.reason}(eax={self.eax:#x})"
