"""TSX-style hardware transactional memory engine (simulated)."""

from .status import (
    ABORT_CAPACITY,
    ABORT_CONFLICT,
    ABORT_EXPLICIT,
    ABORT_INTERRUPT,
    ABORT_SYNC,
    AbortStatus,
)
from .tsx import Transaction, TsxEngine

__all__ = [
    "AbortStatus",
    "ABORT_CONFLICT",
    "ABORT_CAPACITY",
    "ABORT_SYNC",
    "ABORT_INTERRUPT",
    "ABORT_EXPLICIT",
    "Transaction",
    "TsxEngine",
]
