"""The TSX-style HTM engine: read/write sets, conflicts, capacity, aborts.

Semantics modeled after Intel RTM:

* conflict detection at **cache line** granularity, *eager* (at access
  time) by default — the transaction that receives a conflicting coherence
  request aborts ("requester wins"), so plain non-transactional accesses
  (notably the fallback path's lock acquisition) kill overlapping
  transactions;
* transactional stores are **buffered** and only reach shared memory on
  commit; aborts discard the buffer and restore the architectural state
  snapshotted at ``xbegin`` (in this simulator: the call stack);
* the write set is bounded by an L1-like budget with set-associativity
  (so pathological mappings overflow early), the read set by a larger
  L2/L3-style budget — exceeding either raises a **capacity** abort;
* unfriendly operations (syscalls, page faults, explicit xabort) raise
  **synchronous** aborts with no hardware cause bits, which the runtime
  treats as persistent (no retry);
* any delivered interrupt — including PMU sampling interrupts — aborts the
  transaction (**interrupt** abort, RETRY bit set), recreating the paper's
  Challenge I.

The engine never raises Python exceptions into workload code itself; it
*dooms* transactions, and the simulator delivers :class:`AbortSignal` to
the victim thread at its next scheduling step (its architectural state is
rolled back immediately at doom time, as on hardware).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.config import MachineConfig, line_of
from .status import (
    ABORT_CAPACITY,
    ABORT_CONFLICT,
    AbortStatus,
    XABORT_CAPACITY,
    XCAP_WRITE,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.thread import ThreadContext


class Transaction:
    """One in-flight hardware transaction attempt."""

    __slots__ = (
        "tid",
        "thread",
        "cs_id",
        "start_cycle",
        "read_lines",
        "write_lines",
        "writes",
        "wset_by_set",
        "doomed",
        "stack_snapshot",
        "begin_ip",
        "fallback_ip",
        "nesting",
    )

    def __init__(
        self,
        thread: "ThreadContext",
        cs_id: int,
        start_cycle: int,
        begin_ip: int,
        fallback_ip: int,
    ) -> None:
        self.tid = thread.tid
        self.thread = thread
        self.cs_id = cs_id
        self.start_cycle = start_cycle
        self.read_lines: set = set()
        self.write_lines: set = set()
        self.writes: dict[int, int] = {}
        self.wset_by_set: dict[int, int] = {}
        self.doomed: AbortStatus | None = None
        self.stack_snapshot = thread.snapshot_stack()
        self.begin_ip = begin_ip
        self.fallback_ip = fallback_ip
        self.nesting = 1

    def footprint_lines(self) -> int:
        return len(self.read_lines | self.write_lines)


class TsxEngine:
    """Machine-wide transactional state and conflict arbitration."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        #: observability bundle (attached by the Simulator; None when off)
        self.obs = None
        #: active (not yet committed/rolled-back) transaction per tid
        self.active: dict[int, Transaction] = {}
        self._n_sets = max(1, config.wset_lines // max(1, config.wset_assoc))
        # engine-level statistics (ground truth, not profiler-visible)
        self.total_begins = 0
        self.total_commits = 0
        self.total_aborts = 0
        self.aborts_by_reason: dict[str, int] = {}
        #: who-aborts-whom ground truth: (aborter site, victim site,
        #: on-the-lock-line) -> conflict dooms.  Like ``aborter_tid`` on
        #: :class:`~repro.htm.status.AbortStatus`, this is *instrumentation*
        #: ground truth — real hardware never reports it and the sampling
        #: profiler never sees it; only oracles (crossval's abort-graph
        #: pane) read it.  Plain dict bumps: no cycles, no RNG, so profiles
        #: stay bit-identical with the bookkeeping on.
        self.conflict_edges: dict[tuple[int, int, bool], int] = {}
        #: cache line of the runtime's global fallback lock word (set by
        #: the Simulator once the runtime exists; -1 = unknown)
        self.lock_line = -1
        #: per-tid TM_BEGIN call-site of the critical section the thread
        #: is currently executing (set by the RTM runtime), covering the
        #: fallback path where the thread aborts peers without being
        #: transactional itself; absent = outside any section
        self.cs_site_of: dict[int, int] = {}

    # ------------------------------------------------------------------ begin

    def begin(self, thread: "ThreadContext", now: int, cs_id: int,
              begin_ip: int, fallback_ip: int) -> Transaction:
        """Start (or nest into) a transaction for ``thread``."""
        txn = self.active.get(thread.tid)
        if txn is not None:
            # flat nesting, as on TSX: inner begins just bump a depth count
            txn.nesting += 1
            if txn.nesting > self.config.max_nesting and txn.doomed is None:
                # nest-count overflow: persistent abort (no RETRY bit), so
                # the runtime goes straight to the lock fallback, where
                # nested sections run inline under the held lock
                self.doom(txn, AbortStatus(
                    ABORT_CAPACITY,
                    eax=XABORT_CAPACITY,
                    detail="nesting-overflow",
                ))
            return txn
        txn = Transaction(thread, cs_id, now, begin_ip, fallback_ip)
        self.active[thread.tid] = txn
        self.total_begins += 1
        if self.obs is not None:
            self.obs.on_txn_begin(thread.tid, now, cs_id, len(self.active))
        return txn

    # ----------------------------------------------------------------- access

    def txn_of(self, tid: int) -> Transaction | None:
        return self.active.get(tid)

    def on_access(self, tid: int, addr: int, is_write: bool) -> None:
        """Conflict arbitration for one access (transactional or not).

        Called by the engine for *every* load/store/CAS.  Dooms other
        transactions per the conflict policy; with eager detection this is
        exactly TSX's coherence-triggered abort.
        """
        if not self.config.eager_conflicts and tid in self.active:
            # lazy mode: transactional accesses defer detection to commit;
            # non-transactional accesses still arbitrate eagerly below.
            return
        line = line_of(addr)
        requester_wins = self.config.conflict_policy == "requester_wins"
        me = self.active.get(tid)
        for other_tid, other in list(self.active.items()):
            if other_tid == tid or other.doomed is not None:
                continue
            conflicts = (
                line in other.write_lines
                or (is_write and line in other.read_lines)
            )
            if not conflicts:
                continue
            if requester_wins or me is None:
                self.doom(other, AbortStatus(ABORT_CONFLICT, aborter_tid=tid))
                self._record_edge(tid, me, other, line)
            else:
                # responder-wins ablation: the requester's own txn dies
                self.doom(me, AbortStatus(ABORT_CONFLICT, aborter_tid=other_tid))
                self._record_edge(other_tid, other, me, line)
                return

    def _record_edge(self, aborter_tid: int, aborter_txn: Transaction | None,
                     victim: Transaction, line: int) -> None:
        """Bump the ground-truth who-aborts-whom edge for a conflict doom.

        The aborter's site is its transaction's begin IP when it is
        speculating, else the section it registered via ``cs_site_of``
        (the fallback path), else 0 for a bare access outside any TM
        section.  Never charges cycles or consumes RNG.
        """
        if aborter_txn is not None:
            aborter_site = aborter_txn.begin_ip
        else:
            aborter_site = self.cs_site_of.get(aborter_tid, 0)
        key = (aborter_site, victim.begin_ip, line == self.lock_line)
        self.conflict_edges[key] = self.conflict_edges.get(key, 0) + 1

    def track_read(self, txn: Transaction, addr: int) -> None:
        """Add ``addr`` to the read set; dooms the txn on read-set overflow."""
        line = line_of(addr)
        rl = txn.read_lines
        if line not in rl:
            rl.add(line)
            if len(rl) > self.config.rset_lines:
                self.doom(txn, AbortStatus(
                    ABORT_CAPACITY,
                    eax=XABORT_CAPACITY,
                    detail="read-set",
                ))

    def track_write(self, txn: Transaction, addr: int, value: int) -> None:
        """Buffer a transactional store; dooms the txn on write-set overflow."""
        txn.writes[addr] = value
        line = line_of(addr)
        wl = txn.write_lines
        if line not in wl:
            wl.add(line)
            set_idx = line % self._n_sets
            ways = txn.wset_by_set.get(set_idx, 0) + 1
            txn.wset_by_set[set_idx] = ways
            if (
                len(wl) > self.config.wset_lines
                or ways > self.config.wset_assoc
            ):
                self.doom(txn, AbortStatus(
                    ABORT_CAPACITY,
                    eax=XABORT_CAPACITY | XCAP_WRITE,
                    detail="write-set",
                ))

    def read_through(self, txn: Transaction, addr: int, memory_read) -> int:
        """Transactional load: own write buffer first, then shared memory."""
        if addr in txn.writes:
            return txn.writes[addr]
        return memory_read(addr)

    # ----------------------------------------------------------------- doom

    def doom(self, txn: Transaction, status: AbortStatus) -> None:
        """Mark ``txn`` aborted and roll back its architectural state.

        The victim thread's generator is still suspended; the simulator
        throws :class:`AbortSignal` into it at its next step.  Rolling the
        call stack back *now* matters because a PMU sample delivered before
        the runtime resumes must observe the post-abort state (the unwinder
        sees the path to the transaction begin, never inside — Challenge IV).
        """
        if txn.doomed is not None:
            return
        txn.doomed = status
        txn.thread.restore_stack(txn.stack_snapshot)
        txn.thread.lbr.push_abort(txn.thread.cur_ip, txn.fallback_ip)

    # ---------------------------------------------------------------- commit

    def commit(self, thread: "ThreadContext", memory_write) -> bool:
        """Attempt to commit; returns False if the txn was already doomed.

        In lazy-detection mode, commit-time validation arbitrates against
        other in-flight transactions first (committer wins).
        """
        txn = self.active.get(thread.tid)
        if txn is None:
            raise RuntimeError(f"thread {thread.tid} committing with no txn")
        if txn.nesting > 1:
            txn.nesting -= 1
            return True
        if txn.doomed is None and not self.config.eager_conflicts:
            self._validate_lazy(txn)
        if txn.doomed is not None:
            return False
        for addr, value in txn.writes.items():
            memory_write(addr, value)
        del self.active[thread.tid]
        self.total_commits += 1
        if self.obs is not None:
            self.obs.on_txn_commit(thread.tid, thread.clock, txn)
        return True

    def _validate_lazy(self, txn: Transaction) -> None:
        for other_tid, other in list(self.active.items()):
            if other_tid == txn.tid or other.doomed is not None:
                continue
            if (
                txn.write_lines & (other.read_lines | other.write_lines)
                or txn.read_lines & other.write_lines
            ):
                self.doom(other, AbortStatus(ABORT_CONFLICT, aborter_tid=txn.tid))
                clash = (
                    txn.write_lines & (other.read_lines | other.write_lines)
                ) | (txn.read_lines & other.write_lines)
                self._record_edge(txn.tid, txn, other, min(clash))

    # -------------------------------------------------------------- rollback

    def rollback(self, thread: "ThreadContext") -> AbortStatus:
        """Retire a doomed transaction; returns its abort status."""
        txn = self.active.pop(thread.tid, None)
        if txn is None or txn.doomed is None:
            raise RuntimeError(f"thread {thread.tid} rolling back a live txn")
        status = txn.doomed
        self.total_aborts += 1
        self.aborts_by_reason[status.reason] = (
            self.aborts_by_reason.get(status.reason, 0) + 1
        )
        return status
