"""PMU sample records — what a profiler is allowed to observe.

A :class:`Sample` is the PEBS-like record delivered to the registered
profiler's ``on_sample``.  It deliberately contains *only* information
available on real hardware:

* the precise instruction pointer at the sample point (PEBS) — for a
  sample that aborted a transaction this IP is *inside* the transaction
  even though the architectural state has rolled back (Challenge I);
* the unwound architectural call stack (what a signal-context unwinder
  sees — never the in-transaction path, because aborts restore the stack);
* an LBR snapshot;
* event-specific payload: effective address and access type for memory
  events; abort weight and TSX status bits for ``rtm_aborted``;
* the timestamp (the sampled core's cycle counter, like ``rdtsc``).

Simulator-internal truths (which thread caused a conflict, the critical
section id, exact per-context abort counts) are *not* present; the
profiler must reconstruct everything the way TxSampler does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lbr import LbrEntry


@dataclass
class Sample:
    """One PMU sample as delivered to a profiler handler."""

    event: str
    tid: int
    ts: int
    #: precise instruction pointer at the sample point (PEBS)
    ip: int
    #: unwound architectural call path, outermost call site first
    ustack: tuple[int, ...]
    #: architectural resume IP (the signal context's IP) — for a sample
    #: that aborted a transaction this is the fallback address, while
    #: :attr:`ip` is the precise in-transaction PEBS address
    resume_ip: int = 0
    #: LBR snapshot, newest entry first
    lbr: tuple[LbrEntry, ...] = ()
    #: memory events: sampled effective address and access kind
    eff_addr: int | None = None
    is_store: bool = False
    #: rtm_aborted events: wasted cycles in the aborted attempt, and the
    #: TSX status bits software would have seen in EAX
    weight: int = 0
    abort_eax: int = 0

    @property
    def aborted_by_sample(self) -> bool:
        """Did *this* interrupt abort a transaction?  (LBR[0] abort bit —
        the exact check from §3.1 / Figure 4.)"""
        return bool(self.lbr) and self.lbr[0].abort

    def trace_fields(self) -> dict[str, object]:
        """Compact description of this sample for the event tracer.

        Consumed by :mod:`repro.obs` when the engine records sample
        delivery on the ground-truth timeline; every field here is
        already profiler-visible, so exposing it to the tracer does not
        widen the profiler's observational interface.
        """
        fields: dict[str, object] = {
            "event": self.event,
            "ip": self.ip,
            "aborted_txn": self.aborted_by_sample,
        }
        if self.eff_addr is not None:
            fields["addr"] = self.eff_addr
            fields["store"] = self.is_store
        if self.weight:
            fields["weight"] = self.weight
        return fields
