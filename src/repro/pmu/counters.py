"""Per-thread PMU counters with sampling-period overflow detection.

Periods are lightly randomized around their nominal value (+-12.5%, from
a seeded generator) — the standard defense profilers use against
phase-locking: a fixed period resonates with fixed-length loop bodies and
systematically samples the same program phase, biasing every
decomposition.
"""

from __future__ import annotations

import random
from collections.abc import Mapping


class CounterBank:
    """One thread's programmable counters.

    Each configured event counts down from its sampling period; crossing
    zero raises an overflow (a PMU interrupt).  Totals are also kept so
    ground-truth comparisons and ablations can read exact event counts.
    """

    __slots__ = ("periods", "remaining", "totals", "overflows", "_rng",
                 "randomize")

    def __init__(self, periods: Mapping[str, int], seed: int = 0,
                 randomize: bool = True) -> None:
        self.periods: dict[str, int] = {
            ev: p for ev, p in periods.items() if p and p > 0
        }
        self.randomize = randomize
        self._rng = random.Random(seed * 1_000_003 + 17)
        self.remaining: dict[str, int] = {
            ev: self._next_period(p) for ev, p in self.periods.items()
        }
        self.totals: dict[str, int] = {ev: 0 for ev in self.periods}
        self.overflows: dict[str, int] = {ev: 0 for ev in self.periods}

    def _next_period(self, period: int) -> int:
        spread = period >> 3 if self.randomize else 0
        if spread:
            return period - spread + self._rng.randrange(2 * spread + 1)
        return period

    def add(self, event: str, n: int = 1) -> int:
        """Count ``n`` occurrences; return how many overflows this caused."""
        period = self.periods.get(event)
        if period is None:
            return 0
        self.totals[event] += n
        rem = self.remaining[event] - n
        fired = 0
        while rem <= 0:
            fired += 1
            rem += self._next_period(period)
        if fired:
            self.overflows[event] += fired
        self.remaining[event] = rem
        return fired


class PmuBank:
    """All threads' counter banks; created only when sampling is enabled."""

    __slots__ = ("banks",)

    def __init__(self, n_threads: int, periods: Mapping[str, int],
                 seed: int = 0) -> None:
        self.banks = [
            CounterBank(periods, seed=seed * 131 + tid)
            for tid in range(n_threads)
        ]

    def add(self, tid: int, event: str, n: int = 1) -> int:
        return self.banks[tid].add(event, n)

    def total(self, event: str) -> int:
        return sum(b.totals.get(event, 0) for b in self.banks)
