"""Last Branch Record (LBR) model.

A per-core circular buffer of the most recent branches.  We model the
configuration TxSampler uses: call/return filtering, plus the two TSX
bits each entry carries on real hardware:

* ``abort`` — this branch is the control transfer caused by a transaction
  abort (target = the fallback address registered at ``xbegin``);
* ``in_tsx`` — the branch executed inside a transaction.

Following §3.1 of the paper, the most recent entry at a PMU interrupt
"always records the triggering interrupt"; the engine pushes a ``sample``
entry whose abort bit says whether that interrupt itself aborted a
transaction — this is the bit Figure 4's algorithm reads.
"""

from __future__ import annotations

from typing import NamedTuple

KIND_CALL = "call"
KIND_RET = "ret"
KIND_ABORT = "abort"
KIND_SAMPLE = "sample"


class LbrEntry(NamedTuple):
    """One (from, to) branch record with its TSX flag bits."""

    from_addr: int
    to_addr: int
    kind: str
    abort: bool
    in_tsx: bool


class Lbr:
    """Fixed-capacity, newest-first branch record stack for one thread."""

    __slots__ = ("size", "_buf")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("LBR size must be positive")
        self.size = size
        self._buf: list[LbrEntry] = []

    def push(self, entry: LbrEntry) -> None:
        buf = self._buf
        buf.append(entry)
        if len(buf) > self.size:
            del buf[0]

    def push_call(self, from_addr: int, to_addr: int, in_tsx: bool) -> None:
        self.push(LbrEntry(from_addr, to_addr, KIND_CALL, False, in_tsx))

    def push_ret(self, from_addr: int, to_addr: int, in_tsx: bool) -> None:
        self.push(LbrEntry(from_addr, to_addr, KIND_RET, False, in_tsx))

    def push_abort(self, from_addr: int, to_addr: int) -> None:
        """The abort control transfer: from the aborting IP to the fallback."""
        self.push(LbrEntry(from_addr, to_addr, KIND_ABORT, True, True))

    def push_sample(self, from_addr: int, aborted_txn: bool, in_tsx: bool) -> None:
        """The PMU interrupt itself (target address is the signal handler)."""
        self.push(LbrEntry(from_addr, 0, KIND_SAMPLE, aborted_txn, in_tsx))

    def snapshot(self) -> tuple[LbrEntry, ...]:
        """Entries newest-first, as delivered with a PEBS record."""
        return tuple(reversed(self._buf))

    def __len__(self) -> int:
        return len(self._buf)
