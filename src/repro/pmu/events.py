"""PMU event names.

These mirror the hardware events TxSampler programs (§6):

* ``cycles``        — unhalted core cycles (the timing event);
* ``mem_loads`` / ``mem_stores`` — MEM_UOPS_RETIRED:ALL_LOADS / ALL_STORES,
  precise events carrying the effective address (PEBS);
* ``rtm_aborted`` / ``rtm_commit`` — RTM_RETIRED:ABORTED / COMMIT; aborted
  samples additionally carry the abort *weight* (wasted cycles) and the
  TSX status bits.
"""

from __future__ import annotations

CYCLES = "cycles"
MEM_LOADS = "mem_loads"
MEM_STORES = "mem_stores"
RTM_ABORTED = "rtm_aborted"
RTM_COMMIT = "rtm_commit"

ALL_EVENTS = (CYCLES, MEM_LOADS, MEM_STORES, RTM_ABORTED, RTM_COMMIT)

#: events whose PEBS record includes a data (effective) address
ADDRESS_EVENTS = frozenset({MEM_LOADS, MEM_STORES})
