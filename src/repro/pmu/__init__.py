"""Performance-monitoring-unit model: counters, sampling, LBR."""

from .counters import CounterBank, PmuBank
from .events import (
    ADDRESS_EVENTS,
    ALL_EVENTS,
    CYCLES,
    MEM_LOADS,
    MEM_STORES,
    RTM_ABORTED,
    RTM_COMMIT,
)
from .lbr import KIND_ABORT, KIND_CALL, KIND_RET, KIND_SAMPLE, Lbr, LbrEntry
from .sampling import Sample

__all__ = [
    "CounterBank",
    "PmuBank",
    "Sample",
    "Lbr",
    "LbrEntry",
    "KIND_CALL",
    "KIND_RET",
    "KIND_ABORT",
    "KIND_SAMPLE",
    "CYCLES",
    "MEM_LOADS",
    "MEM_STORES",
    "RTM_ABORTED",
    "RTM_COMMIT",
    "ALL_EVENTS",
    "ADDRESS_EVENTS",
]
