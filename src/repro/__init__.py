"""repro — a Python reproduction of *Lightweight Hardware Transactional
Memory Profiling* (TxSampler, PPoPP 2019).

The package layers:

* :mod:`repro.sim` — deterministic discrete-event multicore simulator;
* :mod:`repro.htm` — TSX-style hardware transactional memory;
* :mod:`repro.rtm` — the RTM runtime library (TM_BEGIN/TM_END, fallback
  lock, the paper's thread-private state word);
* :mod:`repro.pmu` — PMU event sampling + LBR;
* :mod:`repro.shadow` — shadow-memory contention analysis;
* :mod:`repro.cct` — calling-context trees and LBR path reconstruction;
* :mod:`repro.core` — **TxSampler** itself: collector, analyzer,
  decision tree, categorization, reports;
* :mod:`repro.dslib` — data structures over simulated memory;
* :mod:`repro.htmbench` — the HTMBench workload suite (30+ programs);
* :mod:`repro.baselines` — Perf-style, TSXProf-style and
  instrumentation comparators;
* :mod:`repro.experiments` — harnesses for every table and figure.

Quickstart::

    from repro import MachineConfig, Simulator, TxSampler, simfn

    @simfn
    def worker(ctx, counter, iters):
        for _ in range(iters):
            def body(c):
                v = yield from c.load(counter)
                yield from c.store(counter, v + 1)
            yield from ctx.atomic(body, name="incr")

    profiler = TxSampler()
    sim = Simulator(MachineConfig(), n_threads=4, profiler=profiler)
    counter = sim.memory.alloc_line()
    sim.set_programs([(worker, (counter, 500), {})] * 4)
    result = sim.run()
    print(profiler.profile().summary())
"""

from .core import (
    DecisionTree,
    Guidance,
    Profile,
    TxSampler,
    categorize,
    render_full_report,
)
from .sim import (
    Barrier,
    MachineConfig,
    Memory,
    RunResult,
    SimFunction,
    Simulator,
    simfn,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MachineConfig",
    "Simulator",
    "RunResult",
    "Memory",
    "Barrier",
    "simfn",
    "SimFunction",
    "TxSampler",
    "Profile",
    "DecisionTree",
    "Guidance",
    "categorize",
    "render_full_report",
]
