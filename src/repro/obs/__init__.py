"""``repro.obs`` — observability for the simulated substrate.

Three parts, all zero-dependency and off by default
(:class:`~repro.sim.config.MachineConfig` gates them):

* :mod:`repro.obs.trace` — ring-buffered structured event tracer with
  Chrome trace-event JSON export (one track per simulated thread);
* :mod:`repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms snapshotted into ``RunResult`` and profile databases;
* :mod:`repro.obs.selfprof` — self-diagnostics of the TxSampler
  profiler (samples per handler, LBR truncation rate, shadow-memory
  occupancy, sampling overhead).

Everything here is engine-side **ground truth** infrastructure, like
``RunResult``: it observes simulator internals freely but never feeds
data into an attached profiler, so the paper's profiler-legal
observation boundary is unaffected.
"""

from .hooks import Observability
from .metrics import (
    COUNT_BUCKETS,
    CYCLE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_snapshot,
)
from .selfprof import SelfDiagnostics, diagnose
from .trace import Tracer

__all__ = [
    "COUNT_BUCKETS",
    "CYCLE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SelfDiagnostics",
    "Tracer",
    "diagnose",
    "format_snapshot",
]
