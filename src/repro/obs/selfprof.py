"""Profiler self-diagnostics: meta-instrumentation of TxSampler itself.

Where ``obs.trace``/``obs.metrics`` watch the simulated machine, this
module watches the *profiler*: how many samples each handler saw, how
often LBR call-path reconstruction came back truncated, how much shadow
memory the contention analyzer is holding, and what the sampling
machinery cost the profiled program in simulated cycles (handler bodies
plus attach-time setup).  That is exactly the information needed to
answer "is the profiler itself healthy / cheap enough?" before trusting
a decomposition — and it reads only profiler outputs plus engine ground
truth, so it feeds nothing back into TxSampler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..pmu.events import CYCLES, RTM_ABORTED, RTM_COMMIT

if TYPE_CHECKING:  # pragma: no cover
    from ..core.profiler import TxSampler
    from ..sim.engine import Simulator


@dataclass
class SelfDiagnostics:
    """One run's profiler health report."""

    #: samples the profiler's dispatcher saw, per PMU event name
    samples_by_event: dict[str, int] = field(default_factory=dict)
    #: sampling interrupts the engine delivered (== handler invocations)
    handler_invocations: int = 0
    #: simulated cycles charged to the program by the handlers
    handler_overhead_cycles: int = 0
    #: simulated cycles charged at attach time (preload + PMU programming)
    setup_overhead_cycles: int = 0
    #: call paths the profiler reconstructed (unwind + LBR concatenation)
    stack_reconstructions: int = 0
    #: reconstructions that hit LBR capacity and came back truncated
    truncated_paths: int = 0
    #: contention-analysis shadow-memory occupancy
    shadow_bytes: int = 0
    shadow_lines: int = 0
    #: sampled accesses the shadow memory classified as contended
    sharing_verdicts: int = 0

    @property
    def total_samples(self) -> int:
        return sum(self.samples_by_event.values())

    @property
    def truncation_rate(self) -> float:
        """Fraction of reconstructed paths that were LBR-truncated."""
        if not self.stack_reconstructions:
            return 0.0
        return self.truncated_paths / self.stack_reconstructions


def diagnose(profiler: "TxSampler", sim: "Simulator") -> SelfDiagnostics:
    """Build the self-diagnostics for a finished profiled run.

    ``profiler`` supplies its own bookkeeping (samples seen, truncated
    paths, shadow maps); ``sim`` supplies the engine-side ground truth
    about what sampling cost the program.
    """
    seen = dict(profiler.samples_seen)
    shadow = profiler.shadow
    verdicts = shadow.true_sharing_events + shadow.false_sharing_events
    # every cycles/abort/commit sample reconstructs a call path; memory
    # samples only do so when the shadow memory flags contention
    reconstructions = (
        seen.get(CYCLES, 0)
        + seen.get(RTM_ABORTED, 0)
        + seen.get(RTM_COMMIT, 0)
        + verdicts
    )
    cfg = sim.config
    return SelfDiagnostics(
        samples_by_event=seen,
        handler_invocations=sim.samples_delivered,
        handler_overhead_cycles=sim.samples_delivered * cfg.handler_cost,
        setup_overhead_cycles=cfg.profiler_setup_cost * len(sim.threads),
        stack_reconstructions=reconstructions,
        truncated_paths=profiler.truncated_paths,
        shadow_bytes=len(shadow.by_byte),
        shadow_lines=len(shadow.by_line),
        sharing_verdicts=verdicts,
    )
