"""The observability facade the engine layers call into.

One :class:`Observability` instance bundles the (optional) event tracer
and (optional) metrics registry for a run.  Instrumentation sites in
``sim/engine.py``, ``htm/tsx.py`` and ``rtm/runtime.py`` hold a single
reference and call the ``on_*`` hooks; when observability is disabled
the reference is ``None`` and the only residual cost is the pointer
test at each site.

Hooks are strictly *read-only* with respect to the simulation: they
charge no cycles, consume no seeded randomness, and never hand data to
an attached profiler — the profiler-legal observation boundary of
DESIGN.md is preserved bit-for-bit (tested by
``tests/test_obs.py::TestObservationBoundary``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import COUNT_BUCKETS, MetricsRegistry
from .trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..htm.tsx import Transaction
    from ..sim.config import MachineConfig


class Observability:
    """Tracer + metrics bundle; either part may be absent."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.tracer = tracer
        self.metrics = metrics

    @classmethod
    def from_config(cls, config: "MachineConfig") -> "Observability" | None:
        """Build the bundle a config asks for; None when everything is
        off, so disabled runs carry no observability state at all."""
        tracer = Tracer(config.trace_capacity) if config.trace_enabled else None
        metrics = MetricsRegistry() if config.metrics_enabled else None
        if tracer is None and metrics is None:
            return None
        return cls(tracer, metrics)

    # ------------------------------------------------------ thread lifecycle

    def on_thread_start(self, tid: int, ts: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(tid, ts, "thread_start")
        if self.metrics is not None:
            self.metrics.counter("sim.threads").inc()

    def on_thread_end(self, tid: int, ts: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(tid, ts, "thread_end")

    def on_run_end(self, steps: int) -> None:
        if self.metrics is not None:
            self.metrics.counter("sim.steps").inc(steps)

    # ----------------------------------------------------------- HTM engine

    def label_cs(self, cs_id: int, name: str) -> None:
        if self.tracer is not None:
            self.tracer.label_cs(cs_id, name)

    def on_txn_begin(self, tid: int, ts: int, cs_id: int, live: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(tid, ts, "xbegin",
                                {"cs": self.tracer.cs_label(cs_id)})
        if self.metrics is not None:
            self.metrics.counter("htm.begins").inc()
            self.metrics.gauge("htm.max_live_txns").track_max(live)

    def on_txn_commit(self, tid: int, ts: int, txn: "Transaction") -> None:
        reads = len(txn.read_lines)
        writes = len(txn.write_lines)
        if self.tracer is not None:
            self.tracer.span(
                tid, txn.start_cycle, ts,
                f"txn:{self.tracer.cs_label(txn.cs_id)}",
                {"outcome": "commit", "read_lines": reads,
                 "write_lines": writes},
            )
        if self.metrics is not None:
            self.metrics.counter("htm.commits").inc()
            self.metrics.histogram("htm.txn_cycles").observe(
                ts - txn.start_cycle)
            self.metrics.histogram(
                "htm.read_set_lines", COUNT_BUCKETS).observe(reads)
            self.metrics.histogram(
                "htm.write_set_lines", COUNT_BUCKETS).observe(writes)

    def on_txn_abort(self, tid: int, ts: int, txn: "Transaction",
                     reason: str, weight: int) -> None:
        if self.tracer is not None:
            self.tracer.span(
                tid, txn.start_cycle, ts,
                f"txn:{self.tracer.cs_label(txn.cs_id)}",
                {"outcome": "abort", "reason": reason, "weight": weight,
                 "read_lines": len(txn.read_lines),
                 "write_lines": len(txn.write_lines)},
            )
        if self.metrics is not None:
            self.metrics.counter("htm.aborts").inc()
            self.metrics.counter(f"htm.aborts.{reason}").inc()
            self.metrics.histogram("htm.abort_weight").observe(weight)

    # ----------------------------------------------------------- RTM runtime

    def on_retry(self, tid: int) -> None:
        if self.metrics is not None:
            self.metrics.counter("rtm.retries").inc()

    def on_lock_wait(self, tid: int, start: int, end: int) -> None:
        if self.tracer is not None:
            self.tracer.span(tid, start, end, "lock_wait")
        if self.metrics is not None:
            self.metrics.histogram("rtm.lock_wait_cycles").observe(end - start)

    def on_lock_acquire(self, tid: int, ts: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(tid, ts, "lock_acquire")
        if self.metrics is not None:
            self.metrics.counter("rtm.lock_acquires").inc()

    def on_lock_release(self, tid: int, ts: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(tid, ts, "lock_release")

    def on_fallback(self, tid: int, start: int, end: int,
                    retries: int) -> None:
        if self.tracer is not None:
            self.tracer.span(tid, start, end, "fallback",
                             {"retries": retries})
        if self.metrics is not None:
            self.metrics.counter("rtm.fallbacks").inc()
            self.metrics.histogram(
                "rtm.retries_before_fallback", COUNT_BUCKETS).observe(retries)

    # ------------------------------------------------------------------- PMU

    def on_sample(self, tid: int, ts: int, fields: dict) -> None:
        if self.tracer is not None:
            self.tracer.instant(tid, ts, "pmu_sample", fields)
        if self.metrics is not None:
            self.metrics.counter("pmu.samples").inc()
            self.metrics.counter(f"pmu.samples.{fields['event']}").inc()
            if fields.get("aborted_txn"):
                self.metrics.counter("pmu.txn_aborting_samples").inc()

    def on_fault(self, kind: str, n: int = 1) -> None:
        """One injected fault event (:mod:`repro.faults`): metered so a
        chaos run's degradation is quantified next to what it degraded."""
        if self.metrics is not None:
            self.metrics.counter(f"faults.{kind}").inc(n)

    def on_quarantine(self, reason: str) -> None:
        """The profiler rejected a malformed sample instead of crashing."""
        if self.metrics is not None:
            self.metrics.counter("profiler.quarantined").inc()
            self.metrics.counter(f"profiler.quarantined.{reason}").inc()

    # ------------------------------------------------------- engine events

    def on_syscall(self, tid: int, ts: int, kind: str,
                   in_txn: bool) -> None:
        if self.tracer is not None:
            self.tracer.instant(tid, ts, "syscall",
                                {"kind": kind, "in_txn": in_txn})
        if self.metrics is not None:
            self.metrics.counter("sim.syscalls").inc()

    def on_barrier_wait(self, tid: int, start: int, end: int,
                        generation: int) -> None:
        if self.tracer is not None:
            self.tracer.span(tid, start, end, "barrier_wait",
                             {"generation": generation})
        if self.metrics is not None:
            self.metrics.counter("sim.barrier_waits").inc()
            self.metrics.histogram("sim.barrier_wait_cycles").observe(
                end - start)
