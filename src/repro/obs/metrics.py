"""Named counters, gauges and fixed-bucket histograms for run metrics.

A :class:`MetricsRegistry` is the engine-side metrics sink: hooks in the
simulator, HTM engine and RTM runtime record ground-truth quantities
(transaction durations, retries before fallback, abort weight, lock-wait
cycles, ...) into get-or-create instruments.  Snapshots are plain dicts
of builtins so they serialize into :class:`~repro.sim.engine.RunResult`
and profile databases unchanged.

Everything is deterministic: no wall-clock timestamps, snapshot keys are
sorted, histogram buckets are fixed at creation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TypeVar

#: default histogram bucket upper bounds for cycle-valued quantities
CYCLE_BUCKETS: tuple[int, ...] = (
    16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)

#: bucket bounds for small-integer quantities (retry counts, set sizes)
COUNT_BUCKETS: tuple[int, ...] = (0, 1, 2, 3, 5, 8, 16, 32, 64, 128, 256)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (with a high-water helper)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int | float = 0

    def set(self, v: int | float) -> None:
        self.value = v

    def track_max(self, v: int | float) -> None:
        if v > self.value:
            self.value = v

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed upper-bound buckets plus an overflow bucket.

    ``observe(v)`` lands ``v`` in the first bucket whose bound satisfies
    ``v <= bound`` (binary search), or in the overflow bucket.
    """

    __slots__ = ("bounds", "counts", "overflow", "count", "sum",
                 "min", "max")

    def __init__(self, bounds: Iterable[int] = CYCLE_BUCKETS) -> None:
        self.bounds: tuple[int, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: list[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum: int | float = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, v: int | float) -> None:
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if v <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


Instrument = Counter | Gauge | Histogram

_I = TypeVar("_I", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    def _get(self, name: str, cls: type[_I],
             factory: Callable[[], _I]) -> _I:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = factory()
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} is a {type(inst).__name__}, "
                f"not a {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str,
                  bounds: Iterable[int] = CYCLE_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(bounds))

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain dicts, keyed by name, sorted."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }


def format_snapshot(snapshot: dict[str, dict]) -> str:
    """Render a snapshot as an aligned text block (CLI ``--metrics``)."""
    lines = ["=== run metrics ==="]
    if not snapshot:
        return "\n".join(lines + ["  (none recorded)"])
    width = max(len(name) for name in snapshot)
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        if kind == "histogram":
            detail = (
                f"count={data['count']} sum={data['sum']} "
                f"min={data['min']} max={data['max']}"
            )
        else:
            detail = f"{data.get('value')}"
        lines.append(f"  {name:{width}s} {kind:9s} {detail}")
    return "\n".join(lines)
