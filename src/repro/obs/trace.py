"""Structured event tracing: ring-buffered per-thread timelines.

The tracer records what the *engine* knows — transaction begin/commit/
abort (with reason and read/write-set sizes), fallback-lock activity,
PMU sample delivery, barriers, syscalls, thread lifecycle — keyed by the
simulated cycle clock.  It is ground-truth tooling in the same sense as
:class:`~repro.sim.engine.RunResult`: data flows *out of* the simulator
into the trace and never into the profiler, so the profiler-legal
observation boundary (DESIGN.md) is untouched.

Events live in one bounded ring per simulated thread (oldest dropped
first, with a drop counter), so tracing a long run has a fixed memory
ceiling.  The export format is Chrome trace-event JSON: load the file in
``chrome://tracing`` or https://ui.perfetto.dev and each simulated
thread renders as its own track, with simulated cycles as timestamps
(the viewer labels them microseconds; only relative spacing matters).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

#: Chrome trace-event phase codes used by this tracer.
PH_INSTANT = "i"
PH_COMPLETE = "X"
PH_METADATA = "M"
PH_COUNTER = "C"

#: one ring record: (phase, start_ts, duration, name, args-or-None)
Record = tuple[str, int, int, str, dict | None]


class Tracer:
    """Bounded per-thread event rings with Chrome trace-event export."""

    __slots__ = ("capacity", "_rings", "dropped", "_cs_names")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        #: max events retained per thread; older events are dropped
        self.capacity = capacity
        self._rings: dict[int, deque[Record]] = {}
        #: events evicted from each thread's ring (ring overflow)
        self.dropped: dict[int, int] = {}
        self._cs_names: dict[int, str] = {}

    # ------------------------------------------------------------- recording

    def _ring(self, tid: int) -> deque[Record]:
        ring = self._rings.get(tid)
        if ring is None:
            ring = self._rings[tid] = deque(maxlen=self.capacity)
            self.dropped[tid] = 0
        return ring

    def instant(self, tid: int, ts: int, name: str,
                args: dict | None = None) -> None:
        """Record a point event on thread ``tid`` at cycle ``ts``."""
        ring = self._ring(tid)
        if len(ring) == self.capacity:
            self.dropped[tid] += 1
        ring.append((PH_INSTANT, ts, 0, name, args))

    def span(self, tid: int, start: int, end: int, name: str,
             args: dict | None = None) -> None:
        """Record a duration event covering cycles ``[start, end]``."""
        ring = self._ring(tid)
        if len(ring) == self.capacity:
            self.dropped[tid] += 1
        ring.append((PH_COMPLETE, start, end - start, name, args))

    # ----------------------------------------------------- critical sections

    def label_cs(self, cs_id: int, name: str) -> None:
        """Remember a critical section's debug name for span labels."""
        self._cs_names.setdefault(cs_id, name)

    def cs_label(self, cs_id: int) -> str:
        return self._cs_names.get(cs_id, f"cs{cs_id}")

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def events(self) -> list[tuple[int, int, int, str, str, int,
                                   dict | None]]:
        """The merged event stream, deterministically ordered.

        Returns ``(ts, tid, seq, phase, name, dur, args)`` tuples sorted
        by ``(ts, tid, seq)`` where ``seq`` is the per-thread emission
        index — so two runs of the same seeded simulation compare equal
        with plain ``==``.
        """
        merged = []
        for tid in sorted(self._rings):
            for seq, (ph, ts, dur, name, args) in enumerate(self._rings[tid]):
                merged.append((ts, tid, seq, ph, name, dur, args))
        merged.sort(key=lambda ev: (ev[0], ev[1], ev[2]))
        return merged

    # ---------------------------------------------------------------- export

    def chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON document (dict form)."""
        trace_events: list[dict] = [{
            "ph": PH_METADATA,
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulated machine"},
        }]
        for tid in sorted(self._rings):
            trace_events.append({
                "ph": PH_METADATA,
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"sim-thread-{tid}"},
            })
        events = self.events()
        if self.total_dropped:
            # make ring-buffer loss *visible* in the viewer: a counter
            # track at the first retained timestamp, so a truncated
            # timeline announces itself instead of silently starting late
            ts0 = events[0][0] if events else 0
            trace_events.append({
                "ph": PH_COUNTER,
                "name": "dropped_events",
                "pid": 0,
                "tid": 0,
                "ts": ts0,
                "args": {"dropped": self.total_dropped},
            })
        for ts, tid, _seq, ph, name, dur, args in events:
            ev = {"name": name, "ph": ph, "pid": 0, "tid": tid, "ts": ts}
            if ph == PH_COMPLETE:
                ev["dur"] = dur
            elif ph == PH_INSTANT:
                ev["s"] = "t"  # thread-scoped instant
            if args:
                ev["args"] = args
            trace_events.append(ev)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "source": "repro.obs",
                "time_unit": "simulated cycles",
                "events_dropped": self.total_dropped,
            },
        }

    def write(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON; returns the path written."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            json.dump(self.chrome_trace(), fh)
        return path
