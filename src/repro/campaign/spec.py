"""Declarative job specifications and campaign DAGs.

A :class:`JobSpec` is everything needed to reproduce one unit of work:
either a single simulated run (``kind="run"``) or a pure reduction over
other jobs' records (``kind="overhead"``, ``kind="speedup"``, ...).  Its
identity is a stable SHA-256 content hash over the canonical JSON form,
so the same experiment always maps to the same key in the result store
— across processes, sessions, and machines.

A :class:`Campaign` is a set of specs addressed by key, plus the list of
*target* keys whose records the driver will consume.  Dependencies are
part of a spec (``deps`` holds the keys of the jobs it reduces over), so
the DAG is content-addressed too: change any input and every dependent
job's key — and therefore its cache slot — changes with it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from ..sim.config import DEFAULT_THREADS, MachineConfig

#: bump when the record layout produced by the worker changes
#: incompatibly; old cache entries then miss instead of misleading.
SPEC_VERSION = 1


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class JobSpec:
    """One content-addressed unit of campaign work.

    ``kind="run"`` executes :func:`repro.experiments.runner.run_workload`
    with the given parameters; reducer kinds compute derived records
    from the dependency records listed in ``deps``.  ``extra`` carries
    reducer arguments (e.g. ``runs``/``drop`` for the trimmed mean).

    ``inject`` is a fault-injection hook for tests and chaos drills
    (see :mod:`repro.campaign.worker`); it is deliberately *excluded*
    from the content hash because it alters how a job executes, never
    what it computes.
    """

    kind: str = "run"
    workload: str = ""
    n_threads: int = DEFAULT_THREADS
    scale: float = 1.0
    seed: int = 0
    profile: bool = False
    instrument: bool = False
    trace: bool = False
    metrics: bool = False
    #: MachineConfig field overrides (applied with ``evolve``)
    config: dict | None = None
    #: workload build parameters (e.g. clomp_tm's txn_size/scatter)
    params: dict | None = None
    #: keys of the jobs this one reduces over, in reduction order
    deps: tuple[str, ...] = ()
    #: reducer arguments / labels riding along with the job
    extra: dict | None = None
    #: fault injection (worker-side); excluded from the content hash
    inject: dict | None = None

    def identity(self) -> dict:
        """The hash-relevant content of this spec."""
        return {
            "v": SPEC_VERSION,
            "kind": self.kind,
            "workload": self.workload,
            "n_threads": self.n_threads,
            "scale": self.scale,
            "seed": self.seed,
            "profile": self.profile,
            "instrument": self.instrument,
            "trace": self.trace,
            "metrics": self.metrics,
            "config": self.config,
            "params": self.params,
            "deps": list(self.deps),
            "extra": self.extra,
        }

    @property
    def key(self) -> str:
        """Stable content hash; the job's address in the store."""
        digest = hashlib.sha256(canonical_json(self.identity()).encode())
        return digest.hexdigest()

    @property
    def label(self) -> str:
        """Human-oriented short name for logs and status panes."""
        tag = (self.extra or {}).get("label")
        if tag:
            return str(tag)
        mode = "profiled" if self.profile else "native"
        if self.kind == "run":
            return f"run:{self.workload}:{mode}:seed{self.seed}"
        return f"{self.kind}:{self.workload or '-'}"

    def to_dict(self) -> dict:
        doc = self.identity()
        if self.inject is not None:
            doc["inject"] = self.inject
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> JobSpec:
        return cls(
            kind=doc["kind"],
            workload=doc.get("workload", ""),
            n_threads=doc.get("n_threads", DEFAULT_THREADS),
            scale=doc.get("scale", 1.0),
            seed=doc.get("seed", 0),
            profile=doc.get("profile", False),
            instrument=doc.get("instrument", False),
            trace=doc.get("trace", False),
            metrics=doc.get("metrics", False),
            config=doc.get("config"),
            params=doc.get("params"),
            deps=tuple(doc.get("deps", ())),
            extra=doc.get("extra"),
            inject=doc.get("inject"),
        )


def config_to_overrides(config: MachineConfig | dict | None,
                        n_threads: int) -> dict | None:
    """Canonicalize a machine config into the minimal override dict.

    Only fields differing from ``MachineConfig(n_threads=n_threads)``
    survive, so a full :class:`MachineConfig` object and a hand-written
    override dict describing the same machine hash to the same spec —
    the property that lets different harnesses share cached runs.
    """
    if config is None:
        return None
    base = asdict(MachineConfig(n_threads=n_threads))
    given = asdict(config) if isinstance(config, MachineConfig) else \
        dict(config)
    # n_threads needs no special casing: the base is built with the
    # spec's thread count, so a matching value diffs away and a
    # deliberately different engine thread count is preserved
    overrides = {
        k: v for k, v in given.items()
        if k not in base or base[k] != v
    }
    return overrides or None


def make_run_spec(
    workload: str,
    *,
    n_threads: int = DEFAULT_THREADS,
    scale: float = 1.0,
    seed: int = 0,
    profile: bool = False,
    metrics: bool = False,
    config: MachineConfig | dict | None = None,
    params: dict | None = None,
) -> JobSpec:
    """The canonical run-job spec every harness builds its keys from."""
    return JobSpec(
        kind="run",
        workload=workload,
        n_threads=n_threads,
        scale=scale,
        seed=seed,
        profile=profile,
        metrics=metrics,
        config=config_to_overrides(config, n_threads),
        params=params or None,
    )


class CampaignGraphError(ValueError):
    """The campaign DAG is malformed (missing dep or cycle)."""


@dataclass
class Campaign:
    """A named set of jobs plus the target keys the driver consumes.

    ``meta`` is builder-defined assembly context (e.g. the (label, key)
    pairs a figure assembler iterates); the scheduler never reads it.
    """

    name: str
    jobs: dict[str, JobSpec] = field(default_factory=dict)
    targets: list[str] = field(default_factory=list)
    meta: list = field(default_factory=list)

    def add(self, spec: JobSpec, target: bool = False) -> str:
        """Register ``spec``; returns its key.  Adding the same content
        twice is a no-op (jobs are deduplicated by hash), which is what
        lets e.g. a speedup job and an overhead job share one native
        run."""
        key = spec.key
        self.jobs.setdefault(key, spec)
        if target and key not in self.targets:
            self.targets.append(key)
        return key

    def __len__(self) -> int:
        return len(self.jobs)

    def topo_order(self) -> list[str]:
        """All job keys, dependencies first.  Raises
        :class:`CampaignGraphError` on unknown deps or cycles."""
        order: list[str] = []
        state: dict[str, int] = {}  # 0 visiting, 1 done

        def visit(key: str, chain: tuple[str, ...]) -> None:
            mark = state.get(key)
            if mark == 1:
                return
            if mark == 0:
                raise CampaignGraphError(
                    f"dependency cycle through job {key[:12]}"
                )
            if key not in self.jobs:
                raise CampaignGraphError(
                    f"job {chain[-1][:12] if chain else '?'} depends on "
                    f"unknown job {key[:12]}"
                )
            state[key] = 0
            for dep in self.jobs[key].deps:
                visit(dep, chain + (key,))
            state[key] = 1
            order.append(key)

        for key in self.jobs:
            visit(key, ())
        return order

    def describe(self) -> dict:
        """Status-pane summary: job counts by kind."""
        by_kind: dict[str, int] = {}
        for spec in self.jobs.values():
            by_kind[spec.kind] = by_kind.get(spec.kind, 0) + 1
        return {
            "name": self.name,
            "jobs": len(self.jobs),
            "targets": len(self.targets),
            "by_kind": by_kind,
        }
