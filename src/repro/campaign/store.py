"""The on-disk, content-addressed result store (LSM shape).

Layout under the cache root (default ``.repro-cache/``)::

    MANIFEST              write-ahead ledger (JSON lines)
    wal-00000001.log      write-ahead log of unflushed records
    seg-00000001.jsonl    immutable sorted record segments (JSON lines)
    seg-00000002.jsonl
    replay/<key>.rlog     content-addressed replay-log sidecars

Every record is one JSON line ``{"seq": n, "key": h, "record": {...}}``;
``key`` is a :class:`JobSpec` content hash, so the store is
content-addressed — re-running an identical job lands on the same key
and is a cache hit.  ``seq`` totally orders writes, which makes recovery
order-insensitive: the highest sequence number for a key wins no matter
which file it is found in.

The write path is LSM-shaped (the LevelDB recipe):

* **memtable + WAL** — :meth:`put` appends the encoded record to the
  current WAL (flush + fsync *before* acknowledging) and installs it in
  an in-memory memtable; :meth:`put_batch` groups many records under a
  single fsync (write-batch grouping).
* **flush** — when the memtable exceeds ``segment_bytes`` it is swapped
  for an empty one (writers continue immediately on a fresh WAL) and
  the immutable memtable is written out as a *sorted* level-0 segment;
  the segment is manifested before the WALs that covered it are
  dropped, so a crash at any byte offset replays cleanly.
* **leveled compaction** — when a level accumulates ``level_trigger``
  segments they are folded (newest ``seq`` per key wins) into one
  sorted segment at the next level; superseded records die on the way.
* **reference-counted segments** — readers pin the segment they are
  about to read; compaction retires input segments to a zombie list and
  the last reader's unpin unlinks them, so a reader holding a segment
  reference is never blocked or corrupted by a concurrent compaction.
* **single background worker** — with ``background=True`` one worker
  thread (coordinated by a condition variable) performs flushes and
  compactions off the write path; otherwise they run inline on the
  writing thread, which keeps the CLI path deterministic.

Locking: ``_mu`` is the coarse metadata mutex (memtable, index, segment
lists, refcounts) and is only ever held briefly; ``_maint_mu``
serializes the segment-producing maintenance operations (flush,
compaction) and is never acquired while holding ``_mu``; ``_manifest_mu``
guards manifest appends.  Reads copy the record location and pin the
segment under ``_mu``, then do file I/O with no lock held.

Durability is crash-tolerant in the append-only style the store has
always had: the manifest is written (flushed + fsynced) *before* a data
file goes live; a torn trailing line — the signature of a hard kill
mid-append — is detected on replay and amputated, for the manifest,
segments and WAL alike; and no acknowledged write (one whose
``put``/``put_batch`` returned) is ever lost, because acknowledgement
happens strictly after the WAL fsync.

Replay-log sidecars: a record carrying a ``replay_log`` (the
:mod:`repro.replay` observation stream of a profiled run) has the log
body split out into ``replay/<key>.rlog`` and the stored record keeps
only the ``replay`` reference.  Reads rehydrate transparently, so
callers see the same record shape whether the run was fresh or cached.
Full compaction prunes sidecars no longer referenced by a surviving
record.

The store is safe for concurrent use from many threads of one process —
the ``repro serve`` daemon's HTTP readers, campaign-runner writers and
the background worker all share one instance.  Legacy stores (pre-LSM:
unsorted append segments, no WAL, no levels in the manifest) recover
transparently; their segments are treated as level 0.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections.abc import Callable, Iterable
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricsRegistry


class StoreError(RuntimeError):
    """The store directory is unusable or the ledger is inconsistent."""


class CrashPoint(BaseException):
    """Raised by a test-injected crash hook to abandon an operation
    mid-write, leaving partial on-disk state exactly as a hard kill
    would (see the crash-recovery property tests).  Derives from
    ``BaseException`` so production ``except Exception`` paths cannot
    absorb a simulated kill."""


_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.jsonl$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")

#: level-N segment count that triggers a fold into level N+1
DEFAULT_LEVEL_TRIGGER = 4
#: deepest level; folds out of it land back in it
DEFAULT_MAX_LEVEL = 3


def _fsync(fh: IO[Any]) -> None:
    fh.flush()
    os.fsync(fh.fileno())


class MemoryStore:
    """Dict-backed stand-in with the same interface (``--no-cache``)."""

    def __init__(self) -> None:
        self._data: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    @property
    def root(self) -> None:
        return None

    def probe(self, key: str) -> bool:
        return key in self._data

    def fetch(self, key: str) -> dict | None:
        return self._data.get(key)

    def get(self, key: str) -> dict | None:
        record = self._data.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        self._data[key] = record

    def put_batch(self, items: Iterable[tuple[str, dict]]) -> int:
        n = 0
        for key, record in items:
            self._data[key] = record
            n += 1
        return n

    def keys(self) -> list[str]:
        return list(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def flush(self) -> None:
        pass

    def compact(self) -> int:
        return 0

    def close(self) -> None:
        pass

    def stats(self) -> dict:
        return {"backend": "memory", "records": len(self._data),
                "hits": self.hits, "misses": self.misses}


class ResultStore:
    """LSM-shaped segmented store with a write-ahead manifest."""

    MANIFEST = "MANIFEST"
    REPLAY_DIR = "replay"

    def __init__(self, root: str | Path,
                 segment_bytes: int = 8 << 20,
                 level_trigger: int = DEFAULT_LEVEL_TRIGGER,
                 max_level: int = DEFAULT_MAX_LEVEL,
                 background: bool = False,
                 crash_hook: Callable[[str], None] | None = None) -> None:
        self.root = Path(root)
        self.segment_bytes = segment_bytes
        self.level_trigger = max(2, level_trigger)
        self.max_level = max(1, max_level)
        self.hits = 0
        self.misses = 0
        #: records made unreachable by a later write with the same key
        self.superseded = 0
        self.flushes = 0
        self.compactions = 0
        self.batches = 0
        #: the most recent :meth:`scrub` report (None until one runs)
        self.last_scrub: dict | None = None
        #: test-only: called at each durability boundary; raising
        #: :class:`CrashPoint` abandons the operation mid-write
        self._crash_hook = crash_hook
        # ---- guarded by _mu (the coarse metadata mutex) ----
        self._mu = threading.RLock()
        self._work = threading.Condition(self._mu)
        self._mem: dict[str, tuple[int, bytes]] = {}      # key -> (seq, line)
        self._mem_bytes = 0
        self._imm: dict[str, tuple[int, bytes]] = {}      # being flushed
        self._imm_wals: list[str] = []                    # WALs it covers
        self._index: dict[str, tuple[int, str, int, int]] = {}
        self._live: list[str] = []          # live segments, ledger order
        self._levels: dict[str, int] = {}   # segment -> level
        self._refs: dict[str, int] = {}     # segment -> live readers
        self._zombies: set[str] = set()     # dropped, awaiting last unpin
        self._next_seq = 1
        self._next_segment_no = 1
        self._next_wal_no = 1
        self._wal: str | None = None        # WAL receiving appends
        self._wal_fh: IO[bytes] | None = None
        self._wal_files: list[str] = []     # live WALs, ledger order
        self._wal_bytes = 0
        # ---- maintenance (flush/compaction) serialization ----
        self._maint_mu = threading.Lock()
        self._manifest_mu = threading.Lock()
        self._bg: threading.Thread | None = None
        self._closing = False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:  # pragma: no cover - depends on the fs
            raise StoreError(f"cannot create store at {self.root}: {exc}") \
                from exc
        self._recover()
        if background:
            self._bg = threading.Thread(target=self._bg_loop,
                                        name="repro-store-bg", daemon=True)
            self._bg.start()

    # ------------------------------------------------------------ recovery

    def _crash(self, step: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(step)

    def _replay_lines(self, path: Path) -> tuple[list[dict], int]:
        """Parse JSON lines, stopping at the first torn/corrupt line.

        Returns ``(entries, valid_bytes)`` — the intact prefix length,
        so the caller can amputate a torn tail before appending again.
        """
        entries: list[dict] = []
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return entries, 0
        offset = 0
        for line in raw.split(b"\n"):
            length = len(line)
            if line.strip():
                try:
                    entry = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    # torn tail from a hard kill mid-append; everything
                    # before it is intact, everything after is garbage
                    return entries, offset
                if not isinstance(entry, dict):
                    # parseable junk (a bare scalar) is still junk
                    return entries, offset
                entries.append(entry)
            offset += length + 1  # the newline
        return entries, min(offset, len(raw))

    def _amputate(self, path: Path, valid: int) -> int:
        """Make ``path`` safe to append to after a torn tail.

        Cuts everything past the ``valid`` prefix, then terminates an
        unterminated final line — a cut can land exactly at end-of-line
        but before the newline, leaving a parseable last record that the
        next append would otherwise glue onto, destroying both on the
        following replay.  Returns the resulting file size.
        """
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            return 0
        with path.open("ab") as fh:
            if size > valid:
                fh.truncate(valid)
                size = valid
            if size:
                with path.open("rb") as rfh:
                    rfh.seek(size - 1)
                    terminated = rfh.read(1) == b"\n"
                if not terminated:
                    fh.write(b"\n")
                    _fsync(fh)
                    size += 1
        return size

    def _recover(self) -> None:
        live: list[str] = []
        levels: dict[str, int] = {}
        manifest = self.root / self.MANIFEST
        manifest_entries, manifest_valid = self._replay_lines(manifest)
        if manifest.exists():
            # repair the tail NOW: the next manifest append would
            # otherwise glue onto a torn or unterminated line, and both
            # the garbage and the new entry would be unreadable on replay
            self._amputate(manifest, manifest_valid)
        for entry in manifest_entries:
            op = entry.get("op")
            segment = entry.get("segment")
            if isinstance(segment, str):
                if op == "add" and segment not in live:
                    live.append(segment)
                    levels[segment] = int(entry.get("level", 0))
                elif op == "drop" and segment in live:
                    live.remove(segment)
                    levels.pop(segment, None)
                m = _SEGMENT_RE.match(segment)
                if m:
                    self._next_segment_no = max(self._next_segment_no,
                                                int(m.group(1)) + 1)
            wal = entry.get("wal")
            if isinstance(wal, str):
                m = _WAL_RE.match(wal)
                if m:
                    self._next_wal_no = max(self._next_wal_no,
                                            int(m.group(1)) + 1)
        # never reuse the number of ANY data file on disk: an amputated
        # manifest (external corruption) can orphan files, and rotating
        # onto one would append fresh records to a file whose old bytes
        # the index knows nothing about
        for path in self.root.glob("seg-*.jsonl"):
            m = _SEGMENT_RE.match(path.name)
            if m:
                self._next_segment_no = max(self._next_segment_no,
                                            int(m.group(1)) + 1)
        wal_names: list[str] = []
        for path in self.root.glob("wal-*.log"):
            m = _WAL_RE.match(path.name)
            if m:
                wal_names.append(path.name)
                self._next_wal_no = max(self._next_wal_no,
                                        int(m.group(1)) + 1)
        self._live = live
        self._levels = levels
        valid_sizes = {segment: self._scan_segment(segment)
                       for segment in live}
        if live:
            # torn tail from a hard kill mid-append (legacy stores
            # appended records straight to the live segment): cut the
            # garbage off so the file stays parseable forever
            self._amputate(self.root / live[-1], valid_sizes[live[-1]])
        # WAL replay: every wal file on disk is replayed (a manifested
        # drop whose unlink never happened only re-applies writes the
        # segments already hold — the seq comparison absorbs them) and
        # entries newer than the flushed state rebuild the memtable
        for name in sorted(wal_names):
            entries, valid = self._replay_lines(self.root / name)
            self._amputate(self.root / name, valid)
            for entry in entries:
                key = entry.get("key")
                if not isinstance(key, str):
                    continue
                seq = int(entry.get("seq", 0))
                self._next_seq = max(self._next_seq, seq + 1)
                indexed = self._index.get(key)
                if indexed is not None and indexed[0] >= seq:
                    continue  # already flushed into a segment
                line = json.dumps(entry, sort_keys=True).encode()
                prev = self._mem.get(key)
                if prev is not None:
                    if prev[0] >= seq:
                        continue
                    self.superseded += 1
                    self._mem_bytes -= len(prev[1]) + 1
                elif indexed is not None:
                    self.superseded += 1
                self._mem[key] = (seq, line)
                self._mem_bytes += len(line) + 1
        self._wal_files = sorted(wal_names)
        if self._wal_files:
            # keep appending to the newest WAL; it was amputated above
            self._wal = self._wal_files[-1]
            self._wal_bytes = (self.root / self._wal).stat().st_size

    def _scan_segment(self, segment: str) -> int:
        """Index one segment; returns the length of its valid prefix."""
        path = self.root / segment
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            # manifested before its first write, then crashed: legal,
            # just empty
            return 0
        offset = 0
        for line in raw.split(b"\n"):
            length = len(line)
            if line.strip():
                try:
                    entry = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    return offset  # torn tail starts here
                if not isinstance(entry, dict):
                    return offset  # parseable junk: still a torn tail
                key = entry.get("key")
                if isinstance(key, str):
                    seq = int(entry.get("seq", 0))
                    self._next_seq = max(self._next_seq, seq + 1)
                    prev = self._index.get(key)
                    if prev is None:
                        self._index[key] = (seq, segment, offset, length)
                    elif seq > prev[0]:
                        self.superseded += 1
                        self._index[key] = (seq, segment, offset, length)
                    elif seq < prev[0]:
                        self.superseded += 1
                    # seq == prev: the same write found twice (a flush
                    # that crashed before dropping its WAL) — a dedupe,
                    # not a supersession
            offset += length + 1  # the newline
        return min(offset, len(raw))

    # ----------------------------------------------------- manifest + WAL

    def _append_manifest(self, doc: dict) -> None:
        with self._manifest_mu, \
                (self.root / self.MANIFEST).open("ab") as fh:
            fh.write(json.dumps(doc, sort_keys=True).encode() + b"\n")
            _fsync(fh)

    def _open_wal(self) -> None:
        """Start a fresh WAL (manifested before its first byte).
        Caller holds ``_mu``."""
        name = f"wal-{self._next_wal_no:08d}.log"
        self._next_wal_no += 1
        self._append_manifest({"op": "wal", "wal": name})
        if self._wal_fh is not None:
            self._wal_fh.close()
        self._wal_fh = (self.root / name).open("ab")
        self._wal = name
        self._wal_files.append(name)
        self._wal_bytes = 0

    def _wal_append(self, lines: list[bytes]) -> None:
        """Append encoded records to the WAL under ONE fsync — the
        write-batch grouping that makes group commit cheap.  Caller
        holds ``_mu``."""
        if self._wal is None:
            self._open_wal()
        if self._wal_fh is None:
            self._wal_fh = (self.root / str(self._wal)).open("ab")
        self._crash("wal-append")
        blob = b"".join(line + b"\n" for line in lines)
        self._wal_fh.write(blob)
        _fsync(self._wal_fh)
        self._wal_bytes += len(blob)

    # ------------------------------------------------------------- writing

    def _stash_replay(self, key: str, record: dict) -> dict:
        """Split an inline ``replay_log`` into its sidecar file."""
        if "replay_log" not in record:
            return record
        record = dict(record)
        text = record.pop("replay_log")
        rel = f"{self.REPLAY_DIR}/{key}.rlog"
        if isinstance(text, str):
            path = self.root / rel
            path.parent.mkdir(exist_ok=True)
            path.write_text(text)
            record["replay"] = rel
        return record

    def _resolve_replay(self, record: dict) -> dict:
        """Rehydrate a ``replay`` sidecar reference back inline."""
        rel = record.get("replay")
        if not isinstance(rel, str):
            return record
        record = dict(record)
        del record["replay"]
        try:
            record["replay_log"] = (self.root / rel).read_text()
        except OSError:
            pass  # sidecar lost: degrade to a record without a log
        return record

    def _install_mem(self, key: str, seq: int, line: bytes) -> None:
        prev = self._mem.get(key)
        if prev is not None:
            self.superseded += 1
            self._mem_bytes -= len(prev[1]) + 1
        elif key in self._imm or key in self._index:
            self.superseded += 1
        self._mem[key] = (seq, line)
        self._mem_bytes += len(line) + 1

    def put(self, key: str, record: dict) -> None:
        """Durably store one record; returns only after the WAL fsync."""
        self._write([(key, record)])

    def put_batch(self, items: Iterable[tuple[str, dict]]) -> int:
        """Durably store many records under a single fsync.

        Returns the number of records written.  The batch acknowledges
        atomically: either every record survives a crash after this
        returns, or (if the crash lands mid-append) the torn tail is
        discarded on recovery — never a mix of torn and glued lines.
        """
        n = self._write(list(items))
        if n:
            self.batches += 1
        return n

    def _write(self, items: list[tuple[str, dict]]) -> int:
        encoded: list[tuple[str, int, bytes]] = []
        need_flush = False
        with self._mu:
            for key, record in items:
                record = self._stash_replay(key, record)
                seq = self._next_seq
                self._next_seq += 1
                line = json.dumps(
                    {"seq": seq, "key": key, "record": record},
                    sort_keys=True,
                ).encode()
                encoded.append((key, seq, line))
            if not encoded:
                return 0
            self._wal_append([line for _, _, line in encoded])
            # acknowledged: the records are durable in the WAL
            for key, seq, line in encoded:
                self._install_mem(key, seq, line)
            if self._mem_bytes >= self.segment_bytes:
                need_flush = True
                self._swap_memtable()
                self._work.notify_all()
        if need_flush and self._bg is None:
            self._flush_imm()
            self._maybe_compact()
        return len(encoded)

    # -------------------------------------------------------------- flush

    def _swap_memtable(self) -> None:
        """Swap the memtable for an empty one so writers continue on a
        fresh WAL while the old contents flush.  Caller holds ``_mu``.

        With a background worker, at most one immutable memtable exists
        at a time (the LevelDB rule) — the writer briefly waits for the
        in-flight flush.  Inline, a leftover immutable memtable (a
        crashed flush) is merged instead: every colliding key's
        memtable entry carries the newer seq by construction.
        """
        if not self._mem:
            return
        if self._imm and self._bg is not None:
            while self._imm and not self._closing:
                self._work.wait(timeout=0.1)
        if self._imm:
            self._imm.update(self._mem)
            self._imm_wals = sorted(set(self._imm_wals)
                                    | set(self._wal_files))
        else:
            self._imm = self._mem
            self._imm_wals = list(self._wal_files)
        self._mem = {}
        self._mem_bytes = 0
        self._open_wal()
        self._wal_files = [self._wal] if self._wal is not None else []

    def flush(self) -> None:
        """Force the memtable out to a level-0 segment (durability is
        already guaranteed by the WAL; this tidies the on-disk shape
        before a close or a full compaction)."""
        with self._mu:
            self._swap_memtable()
            self._work.notify_all()
        if self._bg is None:
            self._flush_imm()
        else:
            with self._mu:
                while self._imm and not self._closing:
                    self._work.wait(timeout=0.1)

    def _flush_imm(self) -> None:
        """Write the immutable memtable as a sorted level-0 segment.
        Runs on the flushing thread with ``_maint_mu`` held; takes
        ``_mu`` only around the metadata snapshot and install."""
        with self._maint_mu:
            with self._mu:
                if not self._imm:
                    return
                snapshot = dict(self._imm)
                wals = list(self._imm_wals)
                segment = f"seg-{self._next_segment_no:08d}.jsonl"
                self._next_segment_no += 1
            ordered = sorted(snapshot)
            self._crash("flush-segment")
            path = self.root / segment
            with path.open("wb") as fh:
                fh.write(b"".join(snapshot[key][1] + b"\n"
                                  for key in ordered))
                _fsync(fh)
            self._crash("flush-manifest")
            self._append_manifest({"op": "add", "segment": segment,
                                   "level": 0})
            with self._mu:
                self._live.append(segment)
                self._levels[segment] = 0
                offset = 0
                for key in ordered:
                    seq, line = snapshot[key]
                    prev = self._index.get(key)
                    if prev is None or seq >= prev[0]:
                        self._index[key] = (seq, segment, offset, len(line))
                    offset += len(line) + 1
                self._imm = {}
                self._imm_wals = []
                self.flushes += 1
                self._work.notify_all()
            # the flushed records now live in a manifested segment: the
            # WALs that covered them are dead weight — drop, then unlink
            self._crash("flush-wal-drop")
            for name in wals:
                self._append_manifest({"op": "wal-drop", "wal": name})
            for name in wals:
                try:
                    (self.root / name).unlink()
                except FileNotFoundError:
                    pass

    # ---------------------------------------------------------- compaction

    def _level_segments(self, level: int) -> list[str]:
        """Caller holds ``_mu``."""
        return [s for s in self._live if self._levels.get(s, 0) == level]

    def _maybe_compact(self) -> None:
        """Leveled compaction policy: any level holding ``level_trigger``
        segments folds into the next (capped at ``max_level``)."""
        for level in range(self.max_level + 1):
            with self._mu:
                crowded = (len(self._level_segments(level))
                           >= self.level_trigger)
            if crowded:
                self.compact_level(level)

    def _fold(self, inputs: list[str]) -> dict[str, tuple[int, bytes]]:
        """Newest record per key across ``inputs`` — immutable files,
        read with no lock held."""
        folded: dict[str, tuple[int, bytes]] = {}
        for segment in inputs:
            try:
                raw = (self.root / segment).read_bytes()
            except FileNotFoundError:  # pragma: no cover - defensive
                continue
            for line in raw.split(b"\n"):
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue  # torn tails are amputated on recovery
                if not isinstance(entry, dict):
                    continue
                key = entry.get("key")
                if not isinstance(key, str):
                    continue
                seq = int(entry.get("seq", 0))
                prev = folded.get(key)
                if prev is None or seq > prev[0]:
                    folded[key] = (seq, bytes(line))
        return folded

    def compact_level(self, level: int) -> int:
        """Fold every segment at ``level`` into one sorted segment at
        the next level.  Returns the number of records dropped."""
        with self._mu:
            inputs = self._level_segments(level)
        if len(inputs) < 2:
            return 0
        return self._compact_segments(inputs,
                                      min(level + 1, self.max_level))

    def _compact_segments(self, inputs: list[str], out_level: int) -> int:
        """Fold ``inputs`` into one sorted segment at ``out_level``.

        Readers holding a reference to an input keep reading it; the
        file is unlinked only after the last reference drops.  Writers
        are never blocked: the fold reads immutable files without the
        metadata mutex and takes it only to install the result.
        """
        with self._maint_mu:
            with self._mu:
                inputs = [s for s in inputs if s in self._live]
                if not inputs:
                    return 0
            folded = self._fold(inputs)
            # keep only records the index still deems current — a key
            # superseded by a newer write elsewhere dies right here
            survivors: list[tuple[str, int, bytes]] = []
            dropped = 0
            with self._mu:
                input_set = set(inputs)
                for key in sorted(folded):
                    seq, line = folded[key]
                    loc = self._index.get(key)
                    if (loc is not None and loc[1] in input_set
                            and loc[0] == seq):
                        survivors.append((key, seq, line))
                    else:
                        dropped += 1
                segment = f"seg-{self._next_segment_no:08d}.jsonl"
                self._next_segment_no += 1
            self._crash("compact-segment")
            path = self.root / segment
            with path.open("wb") as fh:
                fh.write(b"".join(line + b"\n"
                                  for _, _, line in survivors))
                _fsync(fh)
            self._crash("compact-manifest")
            self._append_manifest({"op": "add", "segment": segment,
                                   "level": out_level})
            with self._mu:
                self._live.append(segment)
                self._levels[segment] = out_level
                offset = 0
                for key, seq, line in survivors:
                    loc = self._index.get(key)
                    # repoint only entries still living in an input — a
                    # concurrent flush may have landed a newer record
                    if loc is not None and loc[1] in input_set:
                        self._index[key] = (seq, segment, offset,
                                            len(line))
                    offset += len(line) + 1
                self.compactions += 1
            self._crash("compact-drop")
            for old in inputs:
                self._append_manifest({"op": "drop", "segment": old})
            with self._mu:
                for old in inputs:
                    if old in self._live:
                        self._live.remove(old)
                    self._levels.pop(old, None)
                    if self._refs.get(old, 0) > 0:
                        self._zombies.add(old)  # a reader still holds it
                    else:
                        self._unlink_segment(old)
            return dropped

    def compact(self) -> int:
        """Full fold: flush the memtable, merge every live segment into
        one at the deepest level, drop superseded records, prune
        orphaned replay sidecars.  Returns the records dropped."""
        self.flush()
        with self._mu:
            dropped = self.superseded
            inputs = list(self._live)
        if inputs:
            self._compact_segments(inputs, self.max_level)
        with self._mu:
            self.superseded = 0
            live_keys = set(self._index)
        # prune replay sidecars whose key no longer survives the fold
        # (a superseded record's log is as dead as the record itself)
        for path in (self.root / self.REPLAY_DIR).glob("*.rlog"):
            if path.stem not in live_keys:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
        return dropped

    def _unlink_segment(self, segment: str) -> None:
        """Caller holds ``_mu``."""
        self._zombies.discard(segment)
        self._refs.pop(segment, None)
        try:
            (self.root / segment).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------- reading

    def _pin(self, segment: str) -> None:
        """Caller holds ``_mu``."""
        self._refs[segment] = self._refs.get(segment, 0) + 1

    def _unpin(self, segment: str) -> None:
        with self._mu:
            refs = self._refs.get(segment, 1) - 1
            if refs <= 0:
                self._refs.pop(segment, None)
                if segment in self._zombies:
                    self._unlink_segment(segment)
            else:
                self._refs[segment] = refs

    def probe(self, key: str) -> bool:
        """Presence test that does not touch the hit/miss counters."""
        with self._mu:
            return (key in self._mem or key in self._imm
                    or key in self._index)

    def _read(self, key: str) -> dict | None:
        with self._mu:
            entry = self._mem.get(key) or self._imm.get(key)
            if entry is not None:
                return self._resolve_replay(json.loads(entry[1])["record"])
            loc = self._index.get(key)
            if loc is None:
                return None
            _, segment, offset, length = loc
            self._pin(segment)
        try:
            with (self.root / segment).open("rb") as fh:
                fh.seek(offset)
                line = fh.read(length)
        finally:
            self._unpin(segment)
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt record for {key[:12]} in {segment}@{offset}"
            ) from exc
        return self._resolve_replay(doc["record"])

    def fetch(self, key: str) -> dict | None:
        """Read without touching the hit/miss counters (plumbing reads:
        dependency handoff, target delivery, compaction)."""
        return self._read(key)

    def get(self, key: str) -> dict | None:
        record = self._read(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def keys(self) -> list[str]:
        with self._mu:
            seen = dict.fromkeys(self._index)
            seen.update(dict.fromkeys(self._imm))
            seen.update(dict.fromkeys(self._mem))
            return list(seen)

    def __contains__(self, key: str) -> bool:
        return self.probe(key)

    def __len__(self) -> int:
        return len(self.keys())

    # --------------------------------------------------- background worker

    def _bg_loop(self) -> None:
        """The single background worker: flushes immutable memtables
        and runs due compactions, coordinated by a condition variable."""
        while True:
            with self._mu:
                while not self._imm and not self._closing:
                    self._work.wait(timeout=0.2)
                if self._closing and not self._imm:
                    return
            try:
                self._flush_imm()
                self._maybe_compact()
            except CrashPoint:  # pragma: no cover - test hooks only
                return
            except Exception:  # pragma: no cover - keep the daemon alive
                import logging

                logging.getLogger("repro.campaign").exception(
                    "background maintenance failed")

    def close(self) -> None:
        """Flush, stop the background worker, release file handles."""
        bg = self._bg
        with self._mu:
            self._closing = True
            self._work.notify_all()
        if bg is not None:
            bg.join(timeout=5.0)
            self._bg = None
        self._closing = False
        self.flush()
        with self._mu:
            self._closing = True
            if self._wal_fh is not None:
                self._wal_fh.close()
                self._wal_fh = None

    # --------------------------------------------------------------- scrub

    def scrub(self) -> dict:
        """Verify every on-disk structure (read-only) and cache the
        report for :meth:`stats`/:meth:`export_metrics`.

        Flushes first so the memtable is on disk, then runs the same
        walk as :func:`scrub_files`.  Repair (quarantining) is the
        offline CLI's job — ``repro store scrub --repair`` against a
        drained store — never a live store's, whose open readers may
        still pin the very files a repair would move.
        """
        self.flush()
        report = scrub_files(self.root)
        self.last_scrub = report
        return report

    # --------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Operational snapshot: record/segment counts plus the LSM
        vitals — WAL size, memtable fill, per-level segment shapes,
        live-reader refcounts and flush/compaction totals."""
        with self._mu:
            per_level: dict[str, dict[str, int]] = {}
            for segment in self._live:
                shape = per_level.setdefault(
                    f"L{self._levels.get(segment, 0)}",
                    {"segments": 0, "bytes": 0})
                shape["segments"] += 1
                try:
                    shape["bytes"] += (self.root / segment).stat().st_size
                except OSError:  # pragma: no cover - racing an unlink
                    pass
            return {
                "backend": "disk",
                "root": str(self.root),
                "records": len(self.keys()),
                "segments": len(self._live),
                "superseded": self.superseded,
                "hits": self.hits,
                "misses": self.misses,
                "wal_bytes": self._wal_bytes,
                "wal_files": len(self._wal_files),
                "memtable_records": len(self._mem) + len(self._imm),
                "memtable_bytes": self._mem_bytes,
                "levels": per_level,
                "live_readers": sum(self._refs.values()),
                "pinned_segments": sum(1 for v in self._refs.values()
                                       if v > 0),
                "zombie_segments": len(self._zombies),
                "flushes": self.flushes,
                "compactions": self.compactions,
                "batches": self.batches,
                "scrub": (None if self.last_scrub is None
                          else self.last_scrub["summary"]),
            }

    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Surface :meth:`stats` through an obs metrics registry (the
        daemon scrapes this on every ``/v1/stats`` hit)."""
        st = self.stats()
        g = registry.gauge
        g("store.records").set(st["records"])
        g("store.segments").set(st["segments"])
        g("store.superseded").set(st["superseded"])
        g("store.wal.bytes").set(st["wal_bytes"])
        g("store.wal.files").set(st["wal_files"])
        g("store.memtable.records").set(st["memtable_records"])
        g("store.memtable.bytes").set(st["memtable_bytes"])
        g("store.readers.live").set(st["live_readers"])
        g("store.segments.pinned").set(st["pinned_segments"])
        g("store.segments.zombie").set(st["zombie_segments"])
        g("store.flushes").set(st["flushes"])
        g("store.compactions").set(st["compactions"])
        g("store.batches").set(st["batches"])
        for level, shape in sorted(st["levels"].items()):
            g(f"store.level.{level}.segments").set(shape["segments"])
            g(f"store.level.{level}.bytes").set(shape["bytes"])
        if st["scrub"] is not None:
            for name, value in sorted(st["scrub"].items()):
                g(f"store.scrub.{name}").set(value)


# --------------------------------------------------------------- scrubbing


def _valid_prefix(
    path: Path,
    check: Callable[[bytes], dict | None] | None = None,
) -> tuple[list[dict], int, int]:
    """Parse a JSON-lines file like ``_replay_lines`` does, plus how
    many bytes sit past the valid prefix: ``(entries, valid, excess)``.

    ``check`` swaps in a stricter per-line decoder (e.g. the task
    journal's CRC framing) returning the entry or ``None`` on damage —
    scrub must reach the same verdict the file's own recovery would.
    """
    entries: list[dict] = []
    try:
        raw = path.read_bytes()
    except (FileNotFoundError, OSError):
        return entries, 0, 0
    offset = 0
    for line in raw.split(b"\n"):
        length = len(line)
        if line.strip():
            if check is not None:
                entry = check(bytes(line))
            else:
                try:
                    entry = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    entry = None
                if not isinstance(entry, dict):
                    entry = None
            if entry is None:
                return entries, offset, len(raw) - offset
            entries.append(entry)
        offset += length + 1
    return entries, min(offset, len(raw)), 0


def _damage_kind(path: Path, valid: int) -> str:
    """Classify bytes past the valid prefix: a ``torn`` tail (hard-kill
    debris — parseable records never follow it) versus mid-file
    ``corrupt`` damage (intact records *after* the bad line mean a
    recovery would silently drop them — bit rot, not a crash)."""
    raw = path.read_bytes()[valid:]
    bad_seen = False
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            bad_seen = True
            continue
        if isinstance(entry, dict) and bad_seen:
            return "corrupt"
        bad_seen = True
    return "torn"


def _quarantine(root: Path, name: str) -> None:
    target = root / "quarantine" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    (root / name).replace(target)


def scrub_files(root: str | Path, repair: bool = False) -> dict:
    """Walk a store directory and verify every on-disk structure.

    Checks, without opening a live store:

    * **manifest** — parseable JSON lines all the way down;
    * **segments** — each manifest-live segment parses cleanly; any
      ``seg-*.jsonl`` the manifest doesn't reference is an *orphan*
      (crash-abandoned zombie — its records were compacted elsewhere);
    * **WALs** — every ``wal-*.log`` parses cleanly (recovery replays
      them all, so damage here is damage to un-flushed acked writes);
    * **replay sidecars** — each ``replay/*.rlog`` passes the replay
      reader's per-line CRC + manifest-digest verification (sidecars
      are written whole, so an incomplete one is corrupt, not torn);
    * **task journal** — ``serve-journal.log`` passes the serve
      layer's per-line CRC check — the same verdict its recovery
      reaches, so a flipped bit that still parses as JSON counts as
      damage here too.

    With ``repair=True``, torn tails are amputated in place (exactly
    what recovery would do) and corrupt sidecars + orphan segments are
    moved to ``<root>/quarantine/`` — never deleted.  Run repair only
    against a drained store: a live daemon's readers may pin segments.

    Returns a report dict whose ``summary`` block is what
    ``stats()``/obs metrics surface; ``summary["corrupt"] == 0`` and
    ``summary["orphans"] == 0`` together mean the store is clean
    (``torn`` tails self-heal on the next open).
    """
    root = Path(root)
    report: dict = {"root": str(root), "files": {}, "summary": {}}
    torn = corrupt = orphans = repaired = records = 0
    live: set[str] = set()

    def note(name: str, entries: list[dict], valid: int,
             excess: int) -> None:
        nonlocal torn, corrupt, repaired
        state = "ok"
        if excess:
            state = _damage_kind(root / name, valid)
            if state == "torn":
                torn += 1
            else:
                corrupt += 1
            if repair:
                # amputation is exactly the recovery-time repair; do it
                # for torn tails AND mid-file corruption (the damaged
                # suffix is unreadable to every reader anyway).  The
                # valid prefix always ends on a newline, so the file
                # stays safe to append to.
                with (root / name).open("ab") as fh:
                    fh.truncate(valid)
                    _fsync(fh)
                repaired += 1
        report["files"][name] = {"state": state, "records": len(entries),
                                 "valid_bytes": valid,
                                 "excess_bytes": excess}

    manifest = root / ResultStore.MANIFEST
    if manifest.exists():
        entries, valid, excess = _valid_prefix(manifest)
        note(ResultStore.MANIFEST, entries, valid, excess)
        for entry in entries:
            segment = entry.get("segment")
            if isinstance(segment, str):
                if entry.get("op") == "add":
                    live.add(segment)
                elif entry.get("op") == "drop":
                    live.discard(segment)
    for path in sorted(root.glob("seg-*.jsonl")):
        entries, valid, excess = _valid_prefix(path)
        records += len(entries)
        if path.name not in live:
            orphans += 1
            report["files"][path.name] = {"state": "orphan",
                                          "records": len(entries),
                                          "valid_bytes": valid,
                                          "excess_bytes": excess}
            if repair:
                _quarantine(root, path.name)
                repaired += 1
            continue
        note(path.name, entries, valid, excess)
    for path in sorted(root.glob("wal-*.log")):
        entries, valid, excess = _valid_prefix(path)
        records += len(entries)
        note(path.name, entries, valid, excess)
    journal = root / "serve-journal.log"
    if journal.exists():
        from ..serve.journal import TaskJournal

        # CRC-framed: a bit flip that still parses as JSON is damage
        # the journal's own recovery would truncate, so scrub must not
        # call it ok
        entries, valid, excess = _valid_prefix(
            journal, check=TaskJournal._check_line)
        note(journal.name, entries, valid, excess)
    replay_dir = root / ResultStore.REPLAY_DIR
    sidecars = 0
    if replay_dir.is_dir():
        from ..replay.log import ReplayFormatError, load_replay

        for path in sorted(replay_dir.glob("*.rlog")):
            sidecars += 1
            name = f"{ResultStore.REPLAY_DIR}/{path.name}"
            try:
                log = load_replay(path)
                ok = log.complete
            except (ReplayFormatError, OSError, UnicodeDecodeError):
                ok = False
            if ok:
                report["files"][name] = {"state": "ok"}
                continue
            corrupt += 1
            report["files"][name] = {"state": "corrupt"}
            if repair:
                _quarantine(root, name)
                repaired += 1
    report["summary"] = {
        "files": len(report["files"]),
        "records": records,
        "sidecars": sidecars,
        "torn": torn,
        "corrupt": corrupt,
        "orphans": orphans,
        "repaired": repaired,
    }
    report["clean"] = corrupt == 0 and orphans == 0 and torn == 0
    return report
