"""The on-disk, content-addressed result store (toy-LSM shape).

Layout under the cache root (default ``.repro-cache/``)::

    MANIFEST              write-ahead segment ledger (JSON lines)
    seg-00000001.jsonl    append-only record segments (JSON lines)
    seg-00000002.jsonl

Every record is one JSON line ``{"seq": n, "key": h, "record": {...}}``
appended to the current segment; ``key`` is a :class:`JobSpec` content
hash, so the store is content-addressed — re-running an identical job
lands on the same key and is a cache hit.  The in-memory index maps key
to ``(segment, offset, length)`` and is rebuilt on open by replaying the
manifest and scanning the live segments in ledger order; the *last*
occurrence of a key wins, which makes rewrites (``--refresh``) simple
appends.

Durability is crash-tolerant in the append-only style:

* the manifest is written (and flushed + fsynced) *before* a segment
  receives its first record, so a segment file is never live-unknown;
* a torn trailing line — the signature of a hard kill mid-append — is
  detected on replay (JSON parse failure) and ignored, for both the
  manifest and the segments;
* compaction writes the folded segment and manifests it *before*
  dropping the old ones, so a crash at any point leaves a replayable
  ledger (at worst with duplicate records, which last-wins absorbs).

Compaction (:meth:`ResultStore.compact`) folds all live segments into
one, keeping only the newest record per key and dropping superseded
ones.  The store is single-writer by design: only the campaign driver
process touches it (workers hand records back over the pool's result
channel), so no cross-process locking is needed.

Replay-log sidecars: a record carrying a ``replay_log`` (the
:mod:`repro.replay` observation stream of a profiled run) has the log
body split out into ``replay/<key>.rlog`` — content-addressed next to
the results, one file per store key — and the stored record keeps only
the ``replay`` reference.  Reads rehydrate transparently, so callers
see the same record shape whether the run was fresh or cached, and any
cached experiment is re-analyzable offline.  Compaction prunes sidecars
no longer referenced by the surviving records.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import IO, Any


class StoreError(RuntimeError):
    """The store directory is unusable or the ledger is inconsistent."""


_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.jsonl$")


def _fsync(fh: IO[Any]) -> None:
    fh.flush()
    os.fsync(fh.fileno())


class MemoryStore:
    """Dict-backed stand-in with the same interface (``--no-cache``)."""

    def __init__(self) -> None:
        self._data: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    @property
    def root(self) -> None:
        return None

    def probe(self, key: str) -> bool:
        return key in self._data

    def fetch(self, key: str) -> dict | None:
        return self._data.get(key)

    def get(self, key: str) -> dict | None:
        record = self._data.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        self._data[key] = record

    def keys(self) -> list[str]:
        return list(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def compact(self) -> int:
        return 0

    def close(self) -> None:
        pass

    def stats(self) -> dict:
        return {"backend": "memory", "records": len(self._data),
                "hits": self.hits, "misses": self.misses}


class ResultStore:
    """Append-only segmented store with a write-ahead manifest."""

    MANIFEST = "MANIFEST"

    def __init__(self, root: str | Path,
                 segment_bytes: int = 8 << 20) -> None:
        self.root = Path(root)
        self.segment_bytes = segment_bytes
        self.hits = 0
        self.misses = 0
        #: records made unreachable by a later write with the same key
        self.superseded = 0
        self._index: dict[str, tuple[str, int, int]] = {}
        self._live: list[str] = []          # live segments, ledger order
        self._next_seq = 1
        self._next_segment_no = 1
        self._current: str | None = None    # segment receiving appends
        self._current_size = 0
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:  # pragma: no cover - depends on the fs
            raise StoreError(f"cannot create store at {self.root}: {exc}") \
                from exc
        self._recover()

    # ------------------------------------------------------------ recovery

    def _replay_lines(self, path: Path) -> tuple[list[dict], int]:
        """Parse JSON lines, stopping at the first torn/corrupt line.

        Returns ``(entries, valid_bytes)`` — the intact prefix length,
        so the caller can amputate a torn tail before appending again.
        """
        entries: list[dict] = []
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return entries, 0
        offset = 0
        for line in raw.split(b"\n"):
            length = len(line)
            if line.strip():
                try:
                    entry = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    # torn tail from a hard kill mid-append; everything
                    # before it is intact, everything after is garbage
                    return entries, offset
                if not isinstance(entry, dict):
                    # parseable junk (a bare scalar) is still junk
                    return entries, offset
                entries.append(entry)
            offset += length + 1  # the newline
        return entries, min(offset, len(raw))

    def _amputate(self, path: Path, valid: int) -> int:
        """Make ``path`` safe to append to after a torn tail.

        Cuts everything past the ``valid`` prefix, then terminates an
        unterminated final line — a cut can land exactly at end-of-line
        but before the newline, leaving a parseable last record that the
        next append would otherwise glue onto, destroying both on the
        following replay.  Returns the resulting file size.
        """
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            return 0
        with path.open("ab") as fh:
            if size > valid:
                fh.truncate(valid)
                size = valid
            if size:
                with path.open("rb") as rfh:
                    rfh.seek(size - 1)
                    terminated = rfh.read(1) == b"\n"
                if not terminated:
                    fh.write(b"\n")
                    _fsync(fh)
                    size += 1
        return size

    def _recover(self) -> None:
        live: list[str] = []
        manifest = self.root / self.MANIFEST
        manifest_entries, manifest_valid = self._replay_lines(manifest)
        if manifest.exists():
            # repair the tail NOW: the next manifest append would
            # otherwise glue onto a torn or unterminated line, and both
            # the garbage and the new entry would be unreadable on replay
            self._amputate(manifest, manifest_valid)
        for entry in manifest_entries:
            op, segment = entry.get("op"), entry.get("segment")
            if not isinstance(segment, str):
                continue
            if op == "add" and segment not in live:
                live.append(segment)
            elif op == "drop" and segment in live:
                live.remove(segment)
            m = _SEGMENT_RE.match(segment)
            if m:
                self._next_segment_no = max(self._next_segment_no,
                                            int(m.group(1)) + 1)
        # never reuse the number of ANY segment file on disk: an
        # amputated manifest (external corruption) can orphan segment
        # files, and rotating onto one would append fresh records to a
        # file whose old bytes the index knows nothing about
        for path in self.root.glob("seg-*.jsonl"):
            m = _SEGMENT_RE.match(path.name)
            if m:
                self._next_segment_no = max(self._next_segment_no,
                                            int(m.group(1)) + 1)
        self._live = live
        valid_sizes = {segment: self._scan_segment(segment)
                       for segment in live}
        if live:
            # torn tail from a hard kill mid-append: cut the garbage off
            # (and re-terminate the last intact line) before continuing
            # to append, or the next record would land on the same
            # unterminated line and be lost
            size = self._amputate(self.root / live[-1], valid_sizes[live[-1]])
            if size < self.segment_bytes:
                self._current, self._current_size = live[-1], size

    def _scan_segment(self, segment: str) -> int:
        """Index one segment; returns the length of its valid prefix."""
        path = self.root / segment
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            # manifested before its first write, then crashed: legal,
            # just empty
            return 0
        offset = 0
        for line in raw.split(b"\n"):
            length = len(line)
            if line.strip():
                try:
                    entry = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    return offset  # torn tail starts here
                if not isinstance(entry, dict):
                    return offset  # parseable junk: still a torn tail
                key = entry.get("key")
                if isinstance(key, str):
                    if key in self._index:
                        self.superseded += 1
                    self._index[key] = (segment, offset, length)
                    self._next_seq = max(self._next_seq,
                                         int(entry.get("seq", 0)) + 1)
            offset += length + 1  # the newline
        return min(offset, len(raw))

    # ------------------------------------------------------------- writing

    def _append_manifest(self, op: str, segment: str) -> None:
        with (self.root / self.MANIFEST).open("ab") as fh:
            fh.write(json.dumps({"op": op, "segment": segment})
                     .encode() + b"\n")
            _fsync(fh)

    def _rotate(self) -> None:
        segment = f"seg-{self._next_segment_no:08d}.jsonl"
        self._next_segment_no += 1
        # WAL discipline: ledger first, data file second
        self._append_manifest("add", segment)
        (self.root / segment).touch()
        self._live.append(segment)
        self._current, self._current_size = segment, 0

    REPLAY_DIR = "replay"

    def _stash_replay(self, key: str, record: dict) -> dict:
        """Split an inline ``replay_log`` into its sidecar file."""
        if "replay_log" not in record:
            return record
        record = dict(record)
        text = record.pop("replay_log")
        rel = f"{self.REPLAY_DIR}/{key}.rlog"
        if isinstance(text, str):
            path = self.root / rel
            path.parent.mkdir(exist_ok=True)
            path.write_text(text)
            record["replay"] = rel
        return record

    def _resolve_replay(self, record: dict) -> dict:
        """Rehydrate a ``replay`` sidecar reference back inline."""
        rel = record.get("replay")
        if not isinstance(rel, str):
            return record
        record = dict(record)
        del record["replay"]
        try:
            record["replay_log"] = (self.root / rel).read_text()
        except OSError:
            pass  # sidecar lost: degrade to a record without a log
        return record

    def put(self, key: str, record: dict) -> None:
        record = self._stash_replay(key, record)
        if self._current is None or self._current_size >= self.segment_bytes:
            self._rotate()
        line = json.dumps(
            {"seq": self._next_seq, "key": key, "record": record},
            sort_keys=True,
        ).encode()
        self._next_seq += 1
        assert self._current is not None
        path = self.root / self._current
        offset = self._current_size
        with path.open("ab") as fh:
            fh.write(line + b"\n")
            _fsync(fh)
        if key in self._index:
            self.superseded += 1
        self._index[key] = (self._current, offset, len(line))
        self._current_size += len(line) + 1

    # ------------------------------------------------------------- reading

    def probe(self, key: str) -> bool:
        """Presence test that does not touch the hit/miss counters."""
        return key in self._index

    def fetch(self, key: str) -> dict | None:
        """Read without touching the hit/miss counters (plumbing reads:
        dependency handoff, target delivery, compaction)."""
        loc = self._index.get(key)
        if loc is None:
            return None
        segment, offset, length = loc
        with (self.root / segment).open("rb") as fh:
            fh.seek(offset)
            line = fh.read(length)
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt record for {key[:12]} in {segment}@{offset}"
            ) from exc
        return self._resolve_replay(entry["record"])

    def get(self, key: str) -> dict | None:
        loc = self._index.get(key)
        if loc is None:
            self.misses += 1
            return None
        segment, offset, length = loc
        with (self.root / segment).open("rb") as fh:
            fh.seek(offset)
            line = fh.read(length)
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt record for {key[:12]} in {segment}@{offset}"
            ) from exc
        self.hits += 1
        return self._resolve_replay(entry["record"])

    def keys(self) -> list[str]:
        return list(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    # ---------------------------------------------------------- compaction

    def compact(self) -> int:
        """Fold live segments into one, dropping superseded records.
        Returns the number of records dropped."""
        if not self._live:
            return 0
        old = list(self._live)
        dropped = self.superseded
        # fold: newest record per key, written in stable key order
        folded: list[tuple[str, dict]] = []
        for key in sorted(self._index):
            folded.append((key, self.fetch(key) or {}))
        self._current = None  # force a fresh segment
        self._index.clear()
        self._live = []
        for key, record in folded:
            self.put(key, record)
        self.superseded = 0
        for segment in old:
            self._append_manifest("drop", segment)
        for segment in old:
            try:
                (self.root / segment).unlink()
            except FileNotFoundError:
                pass
        # prune replay sidecars whose key no longer survives the fold
        # (a superseded record's log is as dead as the record itself)
        for path in (self.root / self.REPLAY_DIR).glob("*.rlog"):
            if path.stem not in self._index:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
        return dropped

    def close(self) -> None:
        pass

    def stats(self) -> dict:
        return {
            "backend": "disk",
            "root": str(self.root),
            "records": len(self._index),
            "segments": len(self._live),
            "superseded": self.superseded,
            "hits": self.hits,
            "misses": self.misses,
        }
