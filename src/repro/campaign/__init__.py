"""repro.campaign — batch-experiment orchestration with a persistent,
content-addressed result store.

The paper's evaluation protocol (§7.1) is a large, embarrassingly
parallel campaign: every HTMBench program runs several times native and
several times sampled, and derived statistics (trimmed-mean overhead,
speedups, figure rows) reduce over those runs.  This package turns that
protocol into data:

* :mod:`~repro.campaign.spec` — a declarative :class:`JobSpec` (workload,
  threads, scale, seed, config, profile flag) with a stable content
  hash, and :class:`Campaign` DAGs whose derived jobs depend on the run
  jobs they reduce over.
* :mod:`~repro.campaign.scheduler` — a dependency-aware executor that
  runs ready jobs on a ``ProcessPoolExecutor`` (``--jobs N``), with
  per-job timeouts, bounded retry with backoff for crashed workers, and
  graceful degradation to serial in-process execution at ``--jobs 1``.
* :mod:`~repro.campaign.store` — an on-disk, log-structured result store
  under ``.repro-cache/``: append-only segment files of JSON records
  keyed by job hash, an in-memory index rebuilt from a write-ahead
  manifest, and a compaction pass that folds segments and drops
  superseded records.  Re-running any campaign is incremental.
* :mod:`~repro.campaign.suites` — campaign builders for the paper's
  harnesses (``table1``, ``figure7``, ``figure8``, ``overhead``,
  ``speedup``) whose assembled output is identical to the serial
  ``python -m repro`` commands.

Determinism: a run job executed in a worker process is bit-identical to
the same run executed serially in-process — every run seeds its own
RNGs from the spec (no RNG state is shared across workers), and the
scheduler never reorders anything a result depends on.
"""

from .scheduler import CampaignError, CampaignRunner, JobFailed, RetryPolicy
from .spec import Campaign, JobSpec
from .store import MemoryStore, ResultStore, StoreError
from .worker import outcome_from_record

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignRunner",
    "JobFailed",
    "JobSpec",
    "MemoryStore",
    "ResultStore",
    "RetryPolicy",
    "StoreError",
    "outcome_from_record",
]
