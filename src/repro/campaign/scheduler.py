"""The dependency-aware campaign executor.

:class:`CampaignRunner` walks a :class:`Campaign` DAG and executes the
jobs whose records are not already in the store:

* **planning** — targets are traversed depth-first; a job whose record
  is cached (and ``refresh`` is off) is a cache *hit* and its subtree is
  pruned, so re-running a campaign is incremental: only the missing
  frontier executes.
* **execution** — ready jobs (all deps resolved) run on a
  ``concurrent.futures.ProcessPoolExecutor`` with ``jobs`` workers; at
  ``jobs=1`` the runner degrades gracefully to serial in-process
  execution (no pool, no pickling — the debugging-friendly path).
* **failure policy** — each job gets ``RetryPolicy.max_attempts``
  attempts with exponential backoff; a worker that raises, times out
  (per-job ``timeout``, enforced by ``SIGALRM`` inside the worker) or
  dies outright (``BrokenProcessPool`` — the pool is rebuilt) consumes
  an attempt.  A job that exhausts its attempts raises
  :class:`JobFailed` after in-flight siblings drain.

Scheduler decisions are observable: a ``repro.obs`` metrics registry
counts submissions, cache hits/misses, retries, timeouts, pool breaks
and failures, and an optional :class:`~repro.obs.trace.Tracer` records
per-job spans (wall-clock microseconds) for Chrome-trace export.  An
optional ``on_event`` callback receives every scheduling decision as a
JSON-serializable dict (``plan`` / ``job`` / ``done``) — the feed the
``repro serve`` daemon streams to HTTP clients.
"""

from __future__ import annotations

import logging
import multiprocessing
import random
import time
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .spec import Campaign, JobSpec
from .store import MemoryStore, ResultStore
from .worker import execute_job

_log = logging.getLogger("repro.campaign")


class CampaignError(RuntimeError):
    """The campaign could not complete."""


class JobFailed(CampaignError):
    """One job exhausted its retry budget."""

    def __init__(self, key: str, label: str, attempts: int,
                 cause: BaseException) -> None:
        super().__init__(
            f"job {label} ({key[:12]}) failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.key = key
        self.attempts = attempts
        self.cause = cause


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded full jitter.

    Jitter spreads concurrent retries across ``[0, backoff *
    factor**(attempt-1)]`` so clients/jobs that failed together don't
    hammer the same resource in lockstep on the way back.  The draw is
    seeded from ``(seed, token, attempt)`` — fully deterministic, so
    fixed-seed campaign byte-identity tests keep pinning; ``token`` is
    the retrying job's key, giving each job its own sequence.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    factor: float = 2.0
    jitter: bool = True
    seed: int = 0

    def delay(self, attempt: int, token: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        ceiling = self.backoff * (self.factor ** (attempt - 1))
        if not self.jitter:
            return ceiling
        rng = random.Random(f"{self.seed}:{token}:{attempt}")
        return rng.uniform(0.0, ceiling)


@dataclass
class Plan:
    """What an incremental run will and won't do."""

    cached: list[str]
    to_run: list[str]

    @property
    def hit_rate(self) -> float:
        total = len(self.cached) + len(self.to_run)
        return len(self.cached) / total if total else 1.0


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available: workers inherit the parent's function
    registry, which keeps code addresses — and therefore profile
    symbols — identical between serial and pooled execution."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class CampaignRunner:
    """Execute campaigns against a result store."""

    def __init__(
        self,
        store: ResultStore | MemoryStore | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        refresh: bool = False,
        tracer: Tracer | None = None,
        on_event: Callable[[dict], None] | None = None,
        deadline: float | None = None,
    ) -> None:
        self.store = store if store is not None else MemoryStore()
        self.jobs = max(1, jobs)
        self.timeout = timeout
        #: absolute ``time.monotonic()`` timestamp the whole campaign
        #: must finish by (the caller's propagated deadline); each
        #: job's timeout is trimmed to the remaining budget, so no
        #: worker runs past the caller's patience
        self.deadline = deadline
        self.retry = retry or RetryPolicy()
        self.refresh = refresh
        self.metrics = MetricsRegistry()
        self.tracer = tracer
        self.on_event = on_event
        self._t0 = time.monotonic_ns()

    def _emit(self, event: dict) -> None:
        """Hand a progress event to the observer; a broken observer
        must never take the campaign down with it."""
        if self.on_event is None:
            return
        try:
            self.on_event(event)
        except Exception:  # pragma: no cover - observer bug, not ours
            _log.debug("on_event observer raised", exc_info=True)

    # ------------------------------------------------------------ planning

    def plan(self, campaign: Campaign) -> Plan:
        """Split the DAG into cached jobs and the frontier to execute.
        A cached job prunes its whole dependency subtree — unless a
        non-cached sibling still needs one of those deps."""
        campaign.topo_order()  # validate the graph up front
        cached: list[str] = []
        to_run: list[str] = []
        state: dict[str, str] = {}

        def visit(key: str) -> None:
            if key in state:
                return
            if not self.refresh and self.store.probe(key):
                state[key] = "cached"
                cached.append(key)
                return
            state[key] = "run"
            to_run.append(key)
            for dep in campaign.jobs[key].deps:
                visit(dep)

        for key in campaign.targets or list(campaign.jobs):
            visit(key)
        return Plan(cached=cached, to_run=to_run)

    def status(self, campaign: Campaign) -> dict:
        """Status pane data for ``--status`` (no execution)."""
        plan = self.plan(campaign)
        doc = campaign.describe()
        doc.update({
            "cached": len(plan.cached),
            "pending": len(plan.to_run),
            "hit_rate": plan.hit_rate,
            "store": self.store.stats(),
        })
        return doc

    # ----------------------------------------------------------- execution

    def run(self, campaign: Campaign) -> dict[str, dict]:
        """Execute the campaign; returns ``{target_key: record}``.

        Cached jobs are counted as hits and never re-executed; computed
        records are appended to the store as they land, so an
        interrupted campaign resumes from wherever it died."""
        plan = self.plan(campaign)
        c = self.metrics.counter
        c("campaign.jobs").inc(len(plan.cached) + len(plan.to_run))
        c("campaign.cache.hits").inc(len(plan.cached))
        c("campaign.cache.misses").inc(len(plan.to_run))
        _log.debug(
            f"campaign {campaign.name}: {len(campaign.jobs)} jobs, "
            f"{len(plan.cached)} cached, {len(plan.to_run)} to run "
            f"(jobs={self.jobs})"
        )
        self._emit({"type": "plan", "campaign": campaign.name,
                    "jobs": len(campaign.jobs),
                    "cached": len(plan.cached),
                    "to_run": len(plan.to_run)})
        if plan.to_run:
            run_set = set(plan.to_run)
            order = [k for k in campaign.topo_order() if k in run_set]
            if self.jobs == 1:
                self._run_serial(campaign, order)
            else:
                self._run_pool(campaign, order)
        results: dict[str, dict] = {}
        for key in campaign.targets or list(campaign.jobs):
            record = self.store.fetch(key)
            if record is None:  # pragma: no cover - defensive
                raise CampaignError(
                    f"campaign {campaign.name}: no record for target "
                    f"{key[:12]} after execution"
                )
            results[key] = record
        self._emit({"type": "done", "campaign": campaign.name,
                    "targets": len(results)})
        return results

    def summary(self) -> dict:
        """Headline numbers for the end-of-run status line."""

        def val(name: str) -> int:
            snap = self.metrics.snapshot()
            return snap.get(name, {}).get("value", 0)

        hits, misses = val("campaign.cache.hits"), val("campaign.cache.misses")
        total = hits + misses
        return {
            "jobs": total,
            "hits": hits,
            "executed": val("campaign.executed"),
            "retries": val("campaign.retries"),
            "hit_rate": hits / total if total else 1.0,
        }

    # ------------------------------------------------- deadline budgeting

    def _remaining(self) -> float | None:
        """Seconds left in the campaign budget; None = unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def _effective_timeout(self) -> float | None:
        """The per-job timeout after trimming to the remaining budget.
        Raises :class:`CampaignError` once the budget is spent — the
        campaign fails fast instead of starting work nobody waits for.
        """
        remaining = self._remaining()
        if remaining is None:
            return self.timeout
        if remaining <= 0:
            raise CampaignError("campaign deadline exceeded")
        if self.timeout is None:
            return remaining
        return min(self.timeout, remaining)

    # ----------------------------------------------------- serial fallback

    def _run_serial(self, campaign: Campaign, order: list[str]) -> None:
        for key in order:
            # serial jobs run in-process where SIGALRM is off-limits
            # (runner threads); the deadline is enforced coarsely,
            # between jobs
            self._effective_timeout()
            spec = campaign.jobs[key]
            attempt = 0
            while True:
                attempt += 1
                try:
                    self._trace_instant(key, "submit", attempt)
                    self._emit({"type": "job", "state": "submit",
                                "key": key, "attempt": attempt})
                    start = time.monotonic_ns()
                    record = execute_job(spec.to_dict(),
                                         self._dep_records(campaign, spec),
                                         timeout=None)
                    self._finish(key, record, start)
                    break
                except Exception as exc:
                    if not self._note_failure(key, spec, attempt, exc):
                        raise JobFailed(key, spec.label, attempt, exc) \
                            from exc

    # ------------------------------------------------------------ the pool

    def _run_pool(self, campaign: Campaign, order: list[str]) -> None:
        pending = set(order)
        unresolved = {
            key: {d for d in campaign.jobs[key].deps if d in pending}
            for key in order
        }
        attempts: dict[str, int] = {}
        inflight: dict[Future, str] = {}
        started: dict[Future, int] = {}
        executor = self._new_pool()
        self.metrics.gauge("campaign.workers").set(self.jobs)
        try:
            while pending or inflight:
                submitted = {inflight[f] for f in inflight}
                for key in [k for k in order
                            if k in pending and k not in submitted
                            and not unresolved[k]]:
                    fut = self._submit(executor, campaign, key,
                                       attempts.get(key, 0) + 1)
                    inflight[fut] = key
                    started[fut] = time.monotonic_ns()
                if not inflight:  # pragma: no cover - graph is validated
                    raise CampaignError(
                        f"campaign {campaign.name}: deadlock — "
                        f"{len(pending)} jobs pending, none ready"
                    )
                done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
                for fut in done:
                    key = inflight.pop(fut, None)
                    if key is None:
                        # already drained by a pool-break cleanup below
                        continue
                    start = started.pop(fut)
                    spec = campaign.jobs[key]
                    try:
                        record = fut.result()
                    except BrokenProcessPool as exc:
                        # the worker died (segfault analogue); every
                        # other in-flight future is poisoned too —
                        # rebuild the pool and resubmit them all
                        self.metrics.counter("campaign.pool.broken").inc()
                        executor.shutdown(wait=False, cancel_futures=True)
                        executor = self._new_pool()
                        inflight.clear()
                        started.clear()
                        attempts[key] = attempts.get(key, 0) + 1
                        if not self._note_failure(key, spec,
                                                  attempts[key], exc):
                            raise JobFailed(key, spec.label,
                                            attempts[key], exc) from exc
                        break  # the rest of `done` is poisoned too
                    except Exception as exc:
                        attempts[key] = attempts.get(key, 0) + 1
                        if not self._note_failure(key, spec,
                                                  attempts[key], exc):
                            executor.shutdown(wait=False,
                                              cancel_futures=True)
                            raise JobFailed(key, spec.label,
                                            attempts[key], exc) from exc
                        continue
                    self._finish(key, record, start)
                    pending.discard(key)
                    for waiter in unresolved.values():
                        waiter.discard(key)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs,
                                   mp_context=_pool_context())

    def _submit(self, executor: ProcessPoolExecutor, campaign: Campaign,
                key: str, attempt: int) -> Future:
        spec = campaign.jobs[key]
        self._trace_instant(key, "submit", attempt)
        self._emit({"type": "job", "state": "submit", "key": key,
                    "attempt": attempt})
        self.metrics.counter("campaign.submitted").inc()
        # the worker enforces this with SIGALRM; trimming it to the
        # remaining campaign budget is what carries a client deadline
        # all the way down to the simulating process
        return executor.submit(execute_job, spec.to_dict(),
                               self._dep_records(campaign, spec),
                               self._effective_timeout())

    # ------------------------------------------------------------- helpers

    def _dep_records(self, campaign: Campaign,
                     spec: JobSpec) -> dict[str, dict]:
        records: dict[str, dict] = {}
        for dep in spec.deps:
            record = self.store.fetch(dep)
            if record is None:  # pragma: no cover - ordering guarantees it
                raise CampaignError(f"dependency {dep[:12]} has no record")
            records[dep] = record
        return records

    def _finish(self, key: str, record: dict, started_ns: int) -> None:
        self.store.put(key, record)
        elapsed_ms = (time.monotonic_ns() - started_ns) / 1e6
        self.metrics.counter("campaign.executed").inc()
        self.metrics.histogram("campaign.job_ms").observe(elapsed_ms)
        self._emit({"type": "job", "state": "done", "key": key,
                    "ms": round(elapsed_ms, 3)})
        if self.tracer is not None:
            self.tracer.span(0, started_ns // 1000,
                             time.monotonic_ns() // 1000,
                             f"job:{key[:12]}", {"ms": round(elapsed_ms, 3)})

    def _note_failure(self, key: str, spec: JobSpec, attempt: int,
                      exc: BaseException) -> bool:
        """Record a failed attempt; True when a retry is still allowed
        (after sleeping out the backoff)."""
        from .worker import JobTimeout

        if isinstance(exc, JobTimeout):
            self.metrics.counter("campaign.timeouts").inc()
        self._trace_instant(key, "failed", attempt)
        self._emit({"type": "job", "state": "failed", "key": key,
                    "attempt": attempt, "error": f"{type(exc).__name__}: "
                                                 f"{exc}"})
        if attempt >= self.retry.max_attempts:
            self.metrics.counter("campaign.failures").inc()
            _log.error(f"campaign job {spec.label} failed permanently "
                       f"({attempt} attempts): {type(exc).__name__}: {exc}")
            return False
        self.metrics.counter("campaign.retries").inc()
        delay = self.retry.delay(attempt, token=key)
        remaining = self._remaining()
        if remaining is not None:
            if remaining <= 0:
                self.metrics.counter("campaign.failures").inc()
                return False  # no budget left to retry in
            delay = min(delay, remaining)
        _log.debug(f"campaign job {spec.label} attempt {attempt} failed "
                   f"({type(exc).__name__}: {exc}); retrying in {delay:.2f}s")
        if delay > 0:
            time.sleep(delay)
        return True

    def _trace_instant(self, key: str, what: str, attempt: int) -> None:
        if self.tracer is not None:
            self.tracer.instant(0, time.monotonic_ns() // 1000,
                                f"{what}:{key[:12]}", {"attempt": attempt})
