"""Job execution: what actually runs inside a campaign worker.

:func:`execute_job` is the single entry point the scheduler submits to
the process pool (it must stay a module-level function so it pickles).
It dispatches on :attr:`JobSpec.kind`:

``run``
    one :func:`repro.experiments.runner.run_workload` invocation; the
    record carries the full :class:`RunResult` plus the profile
    database (when ``profile=True``) so a cache hit can reconstruct a
    usable :class:`Outcome` without re-simulating.
``overhead``
    §7.1's trimmed mean over interleaved (native, sampled) run deps.
``speedup``
    makespan ratio of its (baseline, optimized) run deps.
``noop`` / ``sum``
    trivial self-test kinds used by the scheduler's own test suite and
    chaos drills; ``noop`` echoes ``extra``, ``sum`` adds dep values.

Determinism: a run job seeds every RNG it uses from the spec alone, so
executing it in a pool worker is bit-identical to executing it serially
in the driver process.

Fault injection (``JobSpec.inject``) makes the retry/crash machinery
testable: a marker file counts attempts across processes, and while the
count is below ``fail_times`` the worker raises, hard-exits, or sleeps
(``mode``: ``raise`` / ``exit`` / ``sleep``) before doing real work —
or, with ``mode="kill_mid_run"``, arms a :mod:`repro.faults` kill so
the simulation dies from *inside* after ``after_samples`` delivered
samples (``kill_mode`` ``"raise"`` for an in-process crash the
scheduler retries, ``"exit"`` for a hard worker death the pool sees as
``BrokenProcessPool``).
"""

from __future__ import annotations

import os
import signal
from collections.abc import Iterator
from contextlib import contextmanager
from types import FrameType
from typing import TYPE_CHECKING
from dataclasses import asdict, replace
from pathlib import Path

from ..core.export import profile_from_dict, profile_to_dict
from ..sim.config import MachineConfig
from ..sim.engine import RunResult
from .spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.runner import Outcome


class JobTimeout(Exception):
    """The job exceeded the scheduler's per-job timeout (retryable)."""


class InjectedFault(RuntimeError):
    """A test-injected failure (see ``JobSpec.inject``)."""


@contextmanager
def _deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`JobTimeout` after ``seconds`` of wall time.

    Uses ``SIGALRM``, so it only arms on platforms that have it and in
    a main thread — exactly the situation of a pool worker process.
    """
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return
    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not in the main thread
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _on_alarm(signum: int, frame: FrameType | None) -> None:
    raise JobTimeout("per-job timeout expired")


def _apply_injection(inject: dict) -> dict | None:
    """Misbehave until the attempt counter reaches ``fail_times``.

    Returns fault-plan overrides to arm on the run's config (mode
    ``kill_mid_run``), or ``None`` when the injection acts — or does
    nothing — before the job body runs.
    """
    marker = inject.get("marker")
    fail_times = int(inject.get("fail_times", 0))
    if not marker or fail_times <= 0:
        return None
    path = Path(marker)
    attempts = len(path.read_text().splitlines()) if path.exists() else 0
    if attempts >= fail_times:
        return None
    with path.open("a") as fh:
        fh.write(f"attempt {attempts + 1} pid {os.getpid()}\n")
    mode = inject.get("mode", "raise")
    if mode == "kill_mid_run":
        # die *during* the simulation, not before it: arm the faults
        # layer to kill after N delivered samples (WorkerKilled for
        # "raise", a hard exit for "exit")
        return {
            "kill_after_samples": int(inject.get("after_samples", 50)),
            "kill_mode": inject.get("kill_mode", "raise"),
        }
    if mode == "exit":
        # simulate a segfaulting / OOM-killed worker: the pool sees a
        # BrokenProcessPool, not an exception
        os._exit(66)
    if mode == "sleep":
        import time

        time.sleep(float(inject.get("sleep", 60.0)))
        return None
    raise InjectedFault(f"injected failure (attempt {attempts + 1} of "
                        f"{fail_times})")


def _arm_kill(spec: JobSpec, overrides: dict) -> JobSpec:
    """Merge mid-run kill overrides into the spec's config fault plan.

    Only this attempt's in-memory spec changes; the stored record key is
    the scheduler's, and an armed attempt dies before producing one.
    """
    config = dict(spec.config or {})
    plan = dict(config.get("fault_plan") or {})
    plan.update(overrides)
    config["fault_plan"] = plan
    return replace(spec, config=config)


# ---------------------------------------------------------------------------
# kind handlers
# ---------------------------------------------------------------------------


def _run_job(spec: JobSpec, deps: dict[str, dict]) -> dict:
    # imported here: repro.experiments.runner lazily imports this
    # package for its store-aware paths, so a module-level import would
    # be circular
    from ..experiments.runner import run_workload

    config = None
    if spec.config is not None:
        config = MachineConfig(n_threads=spec.n_threads).evolve(**spec.config)
    out = run_workload(
        spec.workload,
        n_threads=spec.n_threads,
        scale=spec.scale,
        seed=spec.seed,
        config=config,
        profile=spec.profile,
        instrument=spec.instrument,
        trace=spec.trace,
        metrics=spec.metrics,
        # every profiled campaign run records its observation stream
        # (repro.replay), so any cached experiment replays offline
        record=spec.profile,
        **(spec.params or {}),
    )
    record: dict = {
        "kind": "run",
        "spec": spec.identity(),
        "result": asdict(out.result),
    }
    if out.profile is not None:
        record["profile_db"] = profile_to_dict(out.profile)
    if out.replay_log is not None:
        record["replay_log"] = out.replay_log
    return record


def _makespan(record: dict) -> int:
    return record["result"]["makespan"]


def _overhead_job(spec: JobSpec, deps: dict[str, dict]) -> dict:
    """Trimmed-mean overhead over interleaved (native, sampled) deps."""
    extra = spec.extra or {}
    drop = int(extra.get("drop", 0))
    pairs = [(spec.deps[i], spec.deps[i + 1])
             for i in range(0, len(spec.deps), 2)]
    overheads = [
        _makespan(deps[sampled]) / _makespan(deps[native]) - 1.0
        for native, sampled in pairs
    ]
    trimmed = sorted(overheads)
    if drop and len(trimmed) > 2 * drop:
        trimmed = trimmed[drop:-drop]
    return {
        "kind": "overhead",
        "spec": spec.identity(),
        "mean": sum(trimmed) / len(trimmed),
        "overheads": overheads,
        "runs": len(overheads),
        "drop": drop,
    }


def _speedup_job(spec: JobSpec, deps: dict[str, dict]) -> dict:
    base_key, opt_key = spec.deps
    return {
        "kind": "speedup",
        "spec": spec.identity(),
        "speedup": _makespan(deps[base_key]) / _makespan(deps[opt_key]),
        "baseline_makespan": _makespan(deps[base_key]),
        "optimized_makespan": _makespan(deps[opt_key]),
    }


def _noop_job(spec: JobSpec, deps: dict[str, dict]) -> dict:
    return {"kind": "noop", "spec": spec.identity(),
            "value": (spec.extra or {}).get("value")}


def _sum_job(spec: JobSpec, deps: dict[str, dict]) -> dict:
    return {"kind": "sum", "spec": spec.identity(),
            "value": sum(deps[d]["value"] for d in spec.deps)}


HANDLERS = {
    "run": _run_job,
    "overhead": _overhead_job,
    "speedup": _speedup_job,
    "noop": _noop_job,
    "sum": _sum_job,
}


def execute_job(spec_dict: dict, dep_records: dict[str, dict],
                timeout: float | None = None) -> dict:
    """Execute one job; the scheduler's pool entry point."""
    spec = JobSpec.from_dict(spec_dict)
    handler = HANDLERS.get(spec.kind)
    if handler is None:
        raise ValueError(f"unknown job kind {spec.kind!r}")
    with _deadline(timeout):
        if spec.inject:
            overrides = _apply_injection(spec.inject)
            if overrides is not None:
                spec = _arm_kill(spec, overrides)
        return handler(spec, dep_records)


# ---------------------------------------------------------------------------
# record → Outcome reconstruction
# ---------------------------------------------------------------------------


def outcome_from_record(record: dict) -> Outcome:
    """Rebuild a harness-usable :class:`Outcome` from a cached run
    record.  ``sim``/``profiler``/``instrument``/``obs`` are ``None`` —
    a cache hit has no live simulator — but ``result`` and ``profile``
    are exact reconstructions of the original run's."""
    from ..experiments.runner import Outcome

    if record.get("kind") != "run":
        raise ValueError(f"not a run record (kind={record.get('kind')!r})")
    profile = None
    if "profile_db" in record:
        profile = profile_from_dict(record["profile_db"])
    return Outcome(result=RunResult(**record["result"]), profile=profile,
                   replay_log=record.get("replay_log"))
