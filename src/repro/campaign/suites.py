"""Campaign builders for the paper's measurement suites.

Each builder expands one evaluation protocol into a content-addressed
job DAG; each assembler turns the resulting records into exactly the
text the serial ``python -m repro`` command prints.  Because every
harness goes through :func:`repro.campaign.spec.make_run_spec`, runs
shared between suites (e.g. a speedup baseline and an overhead native
run for the same seed) occupy a single store slot and execute once.

Suites:

``table1``
    materializes the six CLOMP-TM configurations of Table 1 / Figure 7
    (profile databases land in the store) and renders the static table.
``figure7``
    the same six runs, assembled into the three Figure 7 decompositions
    plus the paper-narrative check.
``figure8``
    one profiled run per (non-optimized) HTMBench program, assembled
    into the Type I/II/III categorization.
``overhead``
    §7.1's trimmed-mean protocol: per workload, ``runs`` seeds ×
    (native, sampled) run jobs feeding one ``overhead`` reducer job.
``speedup``
    Table 2: per program, (naive, optimized) run jobs feeding one
    ``speedup`` reducer job.
"""

from __future__ import annotations

from typing import Any

from ..core.export import profile_from_dict
from ..htmbench.clomp_tm import FIGURE7_CONFIGS
from ..sim.config import DEFAULT_THREADS
from .spec import Campaign, JobSpec, make_run_spec

SUITES = ("table1", "figure7", "figure8", "overhead", "speedup")


class SuiteError(ValueError):
    """Unknown suite or invalid suite arguments."""


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def _clomp_jobs(campaign: Campaign, n_threads: int, scale: float,
                seed: int) -> None:
    """The six profiled CLOMP-TM runs; records (label, size, scatter,
    key) in Figure 7 order into ``campaign.meta``."""
    from ..experiments.clomp import FIG7_SAMPLE_PERIODS

    for label, size, scatter in FIGURE7_CONFIGS:
        spec = make_run_spec(
            "clomp_tm", n_threads=n_threads, scale=scale, seed=seed,
            profile=True,
            config={"sample_periods": dict(FIG7_SAMPLE_PERIODS)},
            params={"txn_size": size, "scatter": scatter},
        )
        key = campaign.add(spec, target=True)
        campaign.meta.append((label, size, scatter, key))


def build_table1(n_threads: int = DEFAULT_THREADS, scale: float = 1.0,
                 seed: int = 0, **_: object) -> Campaign:
    campaign = Campaign(name="table1")
    _clomp_jobs(campaign, n_threads, scale, seed)
    return campaign


def build_figure7(n_threads: int = DEFAULT_THREADS, scale: float = 1.0,
                  seed: int = 0, **_: object) -> Campaign:
    campaign = Campaign(name="figure7")
    _clomp_jobs(campaign, n_threads, scale, seed)
    return campaign


def build_figure8(n_threads: int = DEFAULT_THREADS, scale: float = 1.0,
                  seed: int = 0, workloads: list[str] | None = None,
                  **_: object) -> Campaign:
    from ..experiments.categorize import FIG8_SAMPLE_PERIODS, figure8_names

    campaign = Campaign(name="figure8")
    names = list(workloads) if workloads else figure8_names()
    for name in names:
        spec = make_run_spec(
            name, n_threads=n_threads, scale=scale, seed=seed,
            profile=True,
            config={"sample_periods": dict(FIG8_SAMPLE_PERIODS)},
        )
        key = campaign.add(spec, target=True)
        campaign.meta.append((name, key))
    return campaign


def build_overhead(n_threads: int = DEFAULT_THREADS, scale: float = 1.0,
                   seed: int = 0, workloads: list[str] | None = None,
                   runs: int = 7, drop: int = 1, **_: object) -> Campaign:
    from ..experiments.overhead import FIG5_BENCHMARKS

    if drop and runs <= 2 * drop:
        raise SuiteError(
            f"runs must exceed 2*drop to leave a mean: got runs={runs}, "
            f"drop={drop} (need runs > {2 * drop})"
        )
    campaign = Campaign(name="overhead")
    names = list(workloads) if workloads else list(FIG5_BENCHMARKS)
    for name in names:
        deps: list[str] = []
        for run_seed in range(runs):
            for profiled in (False, True):
                deps.append(campaign.add(make_run_spec(
                    name, n_threads=n_threads, scale=scale,
                    seed=run_seed, profile=profiled,
                )))
        key = campaign.add(JobSpec(
            kind="overhead", workload=name, n_threads=n_threads,
            scale=scale, deps=tuple(deps),
            extra={"runs": runs, "drop": drop},
        ), target=True)
        campaign.meta.append((name, key))
    return campaign


def build_speedup(n_threads: int = DEFAULT_THREADS, scale: float = 1.0,
                  seed: int = 0, workloads: list[str] | None = None,
                  **_: object) -> Campaign:
    from ..htmbench.optimized import TABLE2

    pairs = {naive: (opt, paper) for naive, opt, paper, _ in TABLE2}
    names = list(workloads) if workloads else list(pairs)
    unknown = [n for n in names if n not in pairs]
    if unknown:
        raise SuiteError(
            f"not Table 2 programs: {', '.join(unknown)} "
            f"(known: {', '.join(pairs)})"
        )
    campaign = Campaign(name="speedup")
    for name in names:
        opt, paper = pairs[name]
        base_key = campaign.add(make_run_spec(
            name, n_threads=n_threads, scale=scale, seed=seed,
        ))
        opt_key = campaign.add(make_run_spec(
            opt, n_threads=n_threads, scale=scale, seed=seed,
        ))
        key = campaign.add(JobSpec(
            kind="speedup", workload=name, n_threads=n_threads,
            scale=scale, seed=seed, deps=(base_key, opt_key),
            extra={"optimized": opt},
        ), target=True)
        campaign.meta.append((name, opt, paper, key))
    return campaign


BUILDERS = {
    "table1": build_table1,
    "figure7": build_figure7,
    "figure8": build_figure8,
    "overhead": build_overhead,
    "speedup": build_speedup,
}


def build_campaign(suite: str, **kw: Any) -> Campaign:
    builder = BUILDERS.get(suite)
    if builder is None:
        raise SuiteError(
            f"unknown suite {suite!r} (known: {', '.join(SUITES)})"
        )
    return builder(**kw)


# ---------------------------------------------------------------------------
# remote submissions: one validator shared by the ``repro serve`` daemon
# and the CLI, so a JSON document submitted over HTTP builds exactly the
# campaign the equivalent command line would
# ---------------------------------------------------------------------------

#: campaign-identity fields a submission document may carry, with the
#: coercion applied to each (everything arrives as JSON scalars)
SUBMISSION_FIELDS: dict[str, Any] = {
    "n_threads": int,
    "scale": float,
    "seed": int,
    "runs": int,
    "drop": int,
}

#: executor knobs that ride along in a submission but are the *runner's*
#: business, not the campaign's content hash
RUNNER_FIELDS = ("jobs", "timeout", "refresh", "deadline")


def submission_kwargs(doc: dict) -> tuple[str, dict[str, Any]]:
    """Validate a submission document into ``(suite, builder kwargs)``.

    Raises :class:`SuiteError` on an unknown suite, an unknown field, or
    a value of the wrong shape — the daemon turns that into an HTTP 400
    instead of a half-built campaign.
    """
    if not isinstance(doc, dict):
        raise SuiteError("submission must be a JSON object")
    suite = doc.get("suite")
    if not isinstance(suite, str) or suite not in SUITES:
        raise SuiteError(
            f"unknown suite {suite!r} (known: {', '.join(SUITES)})"
        )
    unknown = sorted(set(doc) - set(SUBMISSION_FIELDS)
                     - set(RUNNER_FIELDS) - {"suite", "workloads"})
    if unknown:
        raise SuiteError(f"unknown submission field(s): "
                         f"{', '.join(unknown)}")
    kwargs: dict[str, Any] = {}
    workloads = doc.get("workloads")
    if workloads is not None:
        if (not isinstance(workloads, list)
                or not all(isinstance(w, str) for w in workloads)):
            raise SuiteError("workloads must be a list of strings")
        kwargs["workloads"] = list(workloads) or None
    for field_name, coerce in SUBMISSION_FIELDS.items():
        if field_name not in doc:
            continue
        value = doc[field_name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SuiteError(f"{field_name} must be a number, "
                             f"got {value!r}")
        kwargs[field_name] = coerce(value)
    if kwargs.get("n_threads", 1) < 1:
        raise SuiteError("n_threads must be >= 1")
    if kwargs.get("scale", 1.0) <= 0:
        raise SuiteError("scale must be > 0")
    if kwargs.get("runs", 1) < 1 or kwargs.get("drop", 0) < 0:
        raise SuiteError("runs must be >= 1 and drop >= 0")
    return suite, kwargs


# ---------------------------------------------------------------------------
# assembly: records → the serial commands' data structures
# ---------------------------------------------------------------------------


def clomp_rows_from_records(campaign: Campaign,
                            records: dict[str, dict]) -> list:
    """Figure 7 rows from cached clomp records — same code path as the
    serial harness, so the rendered output is identical."""
    from ..experiments.clomp import clomp_row

    rows = []
    for label, size, scatter, key in campaign.meta:
        record = records[key]
        rows.append(clomp_row(
            label, size, scatter,
            profile_from_dict(record["profile_db"]),
            record["result"]["commits"],
            record["result"]["aborts_by_reason"],
        ))
    return rows


def figure8_rows_from_records(campaign: Campaign,
                              records: dict[str, dict]) -> list:
    from ..core.categorize import categorize
    from ..experiments.categorize import CategorizedRow
    from ..htmbench.base import WORKLOADS

    rows = []
    for name, key in campaign.meta:
        profile = profile_from_dict(records[key]["profile_db"])
        rows.append(CategorizedRow(
            category=categorize(name, profile),
            expected_type=WORKLOADS[name].expected_type,
        ))
    return rows


def overhead_rows_from_records(campaign: Campaign,
                               records: dict[str, dict]) \
        -> list[tuple[str, float, list[float]]]:
    """(name, trimmed mean, per-seed overheads) per workload."""
    return [
        (name, records[key]["mean"], records[key]["overheads"])
        for name, key in campaign.meta
    ]


def speedup_rows_from_records(campaign: Campaign,
                              records: dict[str, dict]) \
        -> list[tuple[str, str, float, float]]:
    """(naive, optimized, paper speedup, measured speedup) per program."""
    return [
        (name, opt, paper, records[key]["speedup"])
        for name, opt, paper, key in campaign.meta
    ]
