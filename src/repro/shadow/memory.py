"""Shadow memory for contention analysis (§3.3).

Driven purely by sampled memory accesses (effective address, thread id,
read/write flag, timestamp), the detector keeps two shadow maps:

* **per cache line** — detects *contention*: the current sample touches a
  line recently touched by a different thread, at least one of the two
  accesses is a store, and the accesses are closer than the threshold
  ``P``;
* **per byte** — classifies contention: if the *same address* was last
  touched by a different thread the sharing is **true**, otherwise the
  threads collide on the line while using different bytes — **false**
  sharing.

The paper sets P = 100 ms empirically; we express it in simulated cycles.
"""

from __future__ import annotations


from ..sim.config import line_of

TRUE_SHARING = "true"
FALSE_SHARING = "false"

#: shadow record: (tid, is_store, timestamp)
Record = tuple[int, bool, int]


class ShadowMemory:
    """Two-level shadow memory with the paper's sharing classifier."""

    __slots__ = ("threshold", "by_byte", "by_line",
                 "true_sharing_events", "false_sharing_events")

    def __init__(self, threshold: int = 50_000) -> None:
        #: max cycle distance between two accesses to count as contention
        self.threshold = threshold
        self.by_byte: dict[int, Record] = {}
        self.by_line: dict[int, Record] = {}
        self.true_sharing_events = 0
        self.false_sharing_events = 0

    def observe(self, addr: int, tid: int, is_store: bool,
                ts: int) -> str | None:
        """Record one sampled access; returns the sharing class if the
        access is contended, else None."""
        line = line_of(addr)
        verdict: str | None = None
        prev_line = self.by_line.get(line)
        if prev_line is not None:
            p_tid, p_store, p_ts = prev_line
            if (
                p_tid != tid
                and (p_store or is_store)
                and ts - p_ts < self.threshold
            ):
                prev_byte = self.by_byte.get(addr)
                if prev_byte is not None and prev_byte[0] != tid:
                    verdict = TRUE_SHARING
                    self.true_sharing_events += 1
                else:
                    verdict = FALSE_SHARING
                    self.false_sharing_events += 1
        rec = (tid, is_store, ts)
        self.by_byte[addr] = rec
        self.by_line[line] = rec
        return verdict

    def reset(self) -> None:
        self.by_byte.clear()
        self.by_line.clear()
        self.true_sharing_events = 0
        self.false_sharing_events = 0
