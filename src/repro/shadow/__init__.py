"""Shadow-memory contention analysis."""

from .memory import FALSE_SHARING, TRUE_SHARING, ShadowMemory

__all__ = ["ShadowMemory", "TRUE_SHARING", "FALSE_SHARING"]
