"""HTTP/1.1 wire plumbing for the serve front end.

Everything here is pure and synchronous — request-line/header parsing,
response rendering, chunked-transfer encoding — so the protocol layer
tests without sockets and the asyncio server stays a thin shell.

The daemon speaks a deliberately small dialect: JSON request and
response bodies, ``Connection: close`` on every exchange (one request
per connection keeps the state machine trivial), and chunked transfer
encoding only on the streaming endpoints (progress events as NDJSON,
``.rlog`` sidecars as raw bytes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import unquote

#: the subset of reason phrases the daemon ever emits
STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: submission bodies above this are rejected with 413 — a JobSpec
#: campaign document is small; anything huge is a client bug
MAX_BODY_BYTES = 1 << 20


class ProtocolError(ValueError):
    """The request is not something the daemon can parse."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object (400 on anything else)."""
        try:
            doc = json.loads(self.body or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, f"request body is not JSON: {exc}") \
                from exc
        if not isinstance(doc, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return doc


def parse_request_line(line: str) -> tuple[str, str, dict[str, str]]:
    """``"GET /v1/x?a=1 HTTP/1.1"`` → ``("GET", "/v1/x", {"a": "1"})``."""
    parts = line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, target = parts[0].upper(), parts[1]
    path, _, raw_query = target.partition("?")
    query: dict[str, str] = {}
    for pair in raw_query.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[unquote(key)] = unquote(value)
    return method, unquote(path) or "/", query


def parse_headers(lines: list[str]) -> dict[str, str]:
    """Header lines → a lower-cased name→value dict (last wins)."""
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


def split_path(path: str) -> list[str]:
    """``"/v1/campaigns/c-1/events"`` → segments, empties dropped."""
    return [seg for seg in path.split("/") if seg]


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: dict[str, str] | None = None) -> bytes:
    """A complete non-streaming response, Content-Length framed."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    head = "".join(f"{name}: {value}\r\n"
                   for name, value in headers.items())
    return (f"HTTP/1.1 {status} {phrase}\r\n{head}\r\n".encode()
            + body)


def json_response(status: int, doc: object,
                  extra_headers: dict[str, str] | None = None) -> bytes:
    """A JSON-body response (sorted keys — byte-stable for tests)."""
    body = (json.dumps(doc, sort_keys=True) + "\n").encode()
    return render_response(status, body, extra_headers=extra_headers)


def error_response(status: int, message: str,
                   retry_after: int | None = None) -> bytes:
    """An error body; ``retry_after`` adds the ``Retry-After`` header
    (429/503 backpressure answers carry the polite wait hint)."""
    doc: dict[str, object] = {"error": message, "status": status}
    headers: dict[str, str] | None = None
    if retry_after is not None:
        doc["retry_after"] = retry_after
        headers = {"Retry-After": str(retry_after)}
    return json_response(status, doc, extra_headers=headers)


def stream_head(status: int = 200,
                content_type: str = "application/x-ndjson") -> bytes:
    """Response head opening a chunked-transfer stream."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    return (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        "Transfer-Encoding: chunked\r\n"
        "Connection: close\r\n\r\n"
    ).encode()


def chunk(data: bytes) -> bytes:
    """One chunked-transfer frame (empty data is NOT the terminator —
    use :func:`last_chunk` for that, an empty ``data`` yields nothing)."""
    if not data:
        return b""
    return f"{len(data):x}\r\n".encode() + data + b"\r\n"


def last_chunk() -> bytes:
    """The zero-length chunk terminating a stream."""
    return b"0\r\n\r\n"


def event_line(event: dict) -> bytes:
    """One NDJSON progress-event line for the stream endpoint."""
    return (json.dumps(event, sort_keys=True) + "\n").encode()
