"""The crash-safe task journal behind the serve daemon.

Every accepted submission — and every state transition it makes
afterwards — is appended to one write-ahead journal file before the
in-memory registry learns about it (``accepted → running(lease) →
publishing → done | failed``).  A daemon that is SIGKILLed at any point
and restarted replays the journal, rebuilds its registry, expires the
dead process's leases, and resumes unfinished campaigns through the
content-addressed result store (republication is idempotent: finished
jobs are cache hits).

The file reuses the conventions of the sibling stores:

* **torn-tail amputation** (``repro.campaign.store``) — JSON lines;
  replay stops at the first unparseable line and truncates the file
  back to the intact prefix, then newline-terminates it so the next
  append can never glue onto a torn record.
* **per-line CRC** (``repro.replay.log``) — each line wraps its entry
  as ``{"c": crc32(canonical entry), "j": {...}}``; a flipped bit is
  contained exactly like a torn tail.
* **group commit** (the store's ``put_batch``) — concurrent appenders
  enqueue their entries and one leader writes the whole batch under a
  single ``fsync``; every appender still returns only after *its* entry
  is durable.  One transition, one fsync — amortized under load.

Crash boundaries: a test/chaos ``crash_hook`` fires at two named points
per transition — ``journal-<type>`` before the bytes reach the file
(the entry is lost with the process) and ``journal-<type>-durable``
after the fsync (the entry survives, everything in memory after it is
lost) — plus ``journal-snapshot`` inside the compaction rewrite.
Raising :class:`~repro.campaign.store.CrashPoint` from the hook is the
in-process analogue of ``kill -9``.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from ..campaign.store import _fsync

#: the journaled lifecycle, in order (terminal states last)
TASK_STATES = ("accepted", "running", "publishing", "done", "failed")
#: terminal journal states — a task here needs no recovery
FINAL_STATES = ("done", "failed")

#: every named crash boundary the journal can die at: before the bytes
#: hit the file and after the fsync, per transition, plus the snapshot
#: rewrite.  The chaos drill kills the daemon at each one of these.
BOUNDARIES: tuple[str, ...] = tuple(
    f"journal-{t}{suffix}"
    for t in (*TASK_STATES, "epoch")
    for suffix in ("", "-durable")
) + ("journal-snapshot",)


class JournalError(RuntimeError):
    """The journal file is unusable (not: torn — torn tails self-heal)."""


@dataclass
class TaskRecord:
    """One task as the journal remembers it (folded, last state wins)."""

    id: str
    suite: str
    doc: dict
    state: str = "accepted"
    epoch: int = 0          # lease epoch of the last `running` entry
    pid: int | None = None  # owner of that lease
    error: str | None = None
    summary: dict | None = None
    submitted_at: float = 0.0
    finished_at: float | None = None
    deadline: float | None = None  # wall-clock budget in seconds

    @property
    def finished(self) -> bool:
        return self.state in FINAL_STATES


@dataclass
class JournalState:
    """What :meth:`TaskJournal.recover` found on disk."""

    epoch: int = 0
    records: dict[str, TaskRecord] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    entries: int = 0
    torn_bytes: int = 0

    @property
    def unfinished(self) -> list[TaskRecord]:
        """Tasks needing recovery, in submission order."""
        return [self.records[tid] for tid in self.order
                if not self.records[tid].finished]

    @property
    def stale_leases(self) -> int:
        """Leases owned by a dead epoch (every unfinished ``running``
        task — the restart itself proves the owner died)."""
        return sum(1 for rec in self.unfinished
                   if rec.state in ("running", "publishing"))


def _encode(entry: dict) -> bytes:
    payload = json.dumps(entry, sort_keys=True)
    line = json.dumps({"c": zlib.crc32(payload.encode()), "j": entry},
                      sort_keys=True)
    return line.encode() + b"\n"


class TaskJournal:
    """Append-only, CRC-framed, group-committed task lifecycle log."""

    #: file name under the store root
    NAME = "serve-journal.log"

    def __init__(self, path: str | Path,
                 crash_hook: Callable[[str], None] | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: test/chaos only: called at each named boundary; raising
        #: CrashPoint abandons the append exactly like a hard kill
        self._crash_hook = crash_hook
        self._mu = threading.Lock()      # seq + pending queue
        self._io = threading.Lock()      # the file handle
        self._fh: IO[bytes] | None = None
        self._pending: list[tuple[int, bytes]] = []
        self._next_seq = 1
        self._durable_seq = 0
        self._closed = False
        # ---- telemetry (stats()) ----
        self.appended = 0
        self.fsyncs = 0
        self.group_commits = 0

    # ------------------------------------------------------------ plumbing

    def _crash(self, step: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(step)

    def _replay(self) -> tuple[list[dict], int]:
        """Parse the journal, stopping at the first torn or corrupt
        line (bad JSON, bad shape, or CRC mismatch).  Returns
        ``(entries, valid_bytes)`` like the store's ``_replay_lines``.
        """
        entries: list[dict] = []
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return entries, 0
        offset = 0
        for line in raw.split(b"\n"):
            length = len(line)
            if line.strip():
                entry = self._check_line(bytes(line))
                if entry is None:
                    return entries, offset
                entries.append(entry)
            offset += length + 1
        return entries, min(offset, len(raw))

    @staticmethod
    def _check_line(line: bytes) -> dict | None:
        """Decode one CRC-framed line; None on any damage."""
        try:
            frame = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(frame, dict) or not isinstance(frame.get("j"),
                                                         dict):
            return None
        entry = frame["j"]
        payload = json.dumps(entry, sort_keys=True)
        if zlib.crc32(payload.encode()) != frame.get("c"):
            return None  # flipped bit: contained like a torn tail
        return dict(entry)

    def _amputate(self, valid: int) -> None:
        """Truncate past the intact prefix and newline-terminate, so
        the next append never glues onto a torn record.

        The termination matters even when nothing is truncated: a torn
        write can end exactly at the end of a complete record, missing
        only the trailing newline.  Appending onto that line would fuse
        two records, and the next replay would drop *both* — including
        the acked, durable one.
        """
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        with self.path.open("ab") as fh:
            dirty = False
            if size > valid:
                fh.truncate(valid)
                size = valid
                dirty = True
            if size:
                with self.path.open("rb") as rfh:
                    rfh.seek(size - 1)
                    if rfh.read(1) != b"\n":
                        fh.write(b"\n")
                        dirty = True
            if dirty:
                _fsync(fh)

    # ------------------------------------------------------------ recovery

    def recover(self) -> JournalState:
        """Replay the journal into a folded :class:`JournalState`,
        repairing any torn tail in place.  Safe to call exactly once,
        before the first append."""
        entries, valid = self._replay()
        try:
            torn = max(0, self.path.stat().st_size - valid)
        except FileNotFoundError:
            torn = 0
        self._amputate(valid)
        state = JournalState(torn_bytes=torn)
        for entry in sorted(entries, key=lambda e: int(e.get("seq", 0))):
            seq = int(entry.get("seq", 0))
            self._next_seq = max(self._next_seq, seq + 1)
            self._fold(state, entry)
        state.entries = len(entries)
        self._durable_seq = self._next_seq - 1
        return state

    @staticmethod
    def _fold(state: JournalState, entry: dict) -> None:
        kind = entry.get("type")
        if kind == "epoch":
            state.epoch = max(state.epoch, int(entry.get("epoch", 0)))
            return
        task_id = entry.get("task")
        if not isinstance(task_id, str):
            return
        if kind == "accepted":
            if task_id in state.records:
                return  # duplicate accept: first one wins
            doc = entry.get("doc")
            suite = entry.get("suite")
            if not isinstance(doc, dict) or not isinstance(suite, str):
                return
            deadline = entry.get("deadline")
            state.records[task_id] = TaskRecord(
                id=task_id, suite=suite, doc=doc,
                submitted_at=float(entry.get("submitted_at", 0.0)),
                deadline=float(deadline) if isinstance(
                    deadline, (int, float)) else None,
            )
            state.order.append(task_id)
            return
        rec = state.records.get(task_id)
        if rec is None or kind not in TASK_STATES:
            return  # transition for a task we never saw accepted
        rec.state = str(kind)
        if kind == "running":
            rec.epoch = int(entry.get("epoch", 0))
            pid = entry.get("pid")
            rec.pid = int(pid) if isinstance(pid, int) else None
        elif kind == "done":
            summary = entry.get("summary")
            rec.summary = summary if isinstance(summary, dict) else None
            rec.finished_at = float(entry.get("finished_at", 0.0))
        elif kind == "failed":
            rec.error = str(entry.get("error", ""))
            rec.finished_at = float(entry.get("finished_at", 0.0))

    # ------------------------------------------------------------- writing

    def append(self, entry_type: str, **fields: object) -> dict:
        """Durably append one transition; returns the stamped entry.

        Group commit: the entry is queued, then whichever appender gets
        the file lock first writes *every* queued entry under one
        fsync.  Latecomers whose entry was covered by another leader's
        fsync return without touching the file at all.
        """
        with self._mu:
            if self._closed:
                raise JournalError(f"journal {self.path} is closed")
            seq = self._next_seq
            self._next_seq += 1
            entry: dict = {"seq": seq, "type": entry_type, **fields}
            self._pending.append((seq, _encode(entry)))
        self._crash(f"journal-{entry_type}")
        with self._io:
            with self._mu:
                if self._durable_seq >= seq:
                    batch = []  # a concurrent leader already flushed us
                else:
                    batch = [line for _, line in self._pending]
                    top = max(s for s, _ in self._pending)
                    if len(batch) > 1:
                        self.group_commits += 1
                    self._pending.clear()
            if batch:
                if self._fh is None:
                    self._fh = self.path.open("ab")
                self._fh.write(b"".join(batch))
                _fsync(self._fh)
                with self._mu:
                    self.fsyncs += 1
                    self._durable_seq = max(self._durable_seq, top)
        with self._mu:
            self.appended += 1
        self._crash(f"journal-{entry_type}-durable")
        return entry

    # ------------------------------------------------------------ snapshot

    def snapshot(self, state: JournalState) -> None:
        """Compact the journal to the folded ``state`` (clean-shutdown
        path): per task, its ``accepted`` entry plus one entry for its
        current state; one trailing ``epoch`` entry.  Original seq
        numbers are preserved, so snapshotting the same state twice is
        byte-for-byte idempotent — the restart-is-a-no-op invariant the
        chaos drill asserts.

        The rewrite is atomic (tmp + fsync + rename): a crash inside it
        leaves either the old journal or the new one, never a mix.
        """
        lines: list[bytes] = []
        seq = 0
        for task_id in state.order:
            rec = state.records[task_id]
            seq += 1
            accepted: dict = {"seq": seq, "type": "accepted",
                              "task": rec.id, "suite": rec.suite,
                              "doc": rec.doc,
                              "submitted_at": rec.submitted_at}
            if rec.deadline is not None:
                accepted["deadline"] = rec.deadline
            lines.append(_encode(accepted))
            if rec.state == "accepted":
                continue
            seq += 1
            entry: dict = {"seq": seq, "type": rec.state, "task": rec.id}
            if rec.state == "running":
                entry.update(epoch=rec.epoch, pid=rec.pid)
            elif rec.state == "done":
                entry.update(summary=rec.summary,
                             finished_at=rec.finished_at)
            elif rec.state == "failed":
                entry.update(error=rec.error,
                             finished_at=rec.finished_at)
            lines.append(_encode(entry))
        if state.epoch:
            seq += 1
            lines.append(_encode({"seq": seq, "type": "epoch",
                                  "epoch": state.epoch}))
        tmp = self.path.with_suffix(".tmp")
        with self._io:
            self._crash("journal-snapshot")
            with tmp.open("wb") as fh:
                fh.write(b"".join(lines))
                _fsync(fh)
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            tmp.replace(self.path)
            with self._mu:
                self._next_seq = seq + 1
                self._durable_seq = seq

    # ------------------------------------------------------------- queries

    def stats(self) -> dict:
        with self._mu:
            return {
                "path": str(self.path),
                "next_seq": self._next_seq,
                "appended": self.appended,
                "fsyncs": self.fsyncs,
                "group_commits": self.group_commits,
            }

    def close(self) -> None:
        with self._io, self._mu:
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None
