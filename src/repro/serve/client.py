"""A stdlib client for the serve daemon.

``http.client`` only — the same no-new-deps rule as the server.  Used
by ``repro submit`` / ``repro status --url``, the smoke driver, and the
tests.  One :class:`ServeClient` per base URL; each call opens its own
connection (the server speaks ``Connection: close``), so a client
instance is safe to share across threads.

Streaming: :meth:`stream_events` iterates the chunked NDJSON progress
feed live — ``http.client`` decodes the chunked framing transparently,
so each ``readline`` yields one complete event.
"""

from __future__ import annotations

import http.client
import json
import time
from collections.abc import Iterator
from urllib.parse import urlsplit


class ServeError(RuntimeError):
    """The daemon answered with an error (or not at all)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status
                         else message)
        self.status = status
        self.message = message


class ServeClient:
    """Synchronous JSON client for one ``repro serve`` base URL."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ServeError(0, f"only http:// URLs, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8750
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _request(self, method: str, path: str,
                 doc: dict | None = None) -> dict:
        conn = self._connect()
        try:
            body = None
            headers = {}
            if doc is not None:
                body = json.dumps(doc).encode()
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                payload = resp.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    0, f"cannot reach http://{self.host}:{self.port}"
                       f"{path}: {exc}") from exc
            return self._decode(resp.status, payload)
        finally:
            conn.close()

    @staticmethod
    def _decode(status: int, payload: bytes) -> dict:
        try:
            doc = json.loads(payload or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServeError(status,
                             f"non-JSON response: {payload[:120]!r}") \
                from exc
        if status >= 400:
            message = doc.get("error", "") if isinstance(doc, dict) \
                else str(doc)
            raise ServeError(status, message or f"status {status}")
        if not isinstance(doc, dict):
            raise ServeError(status, f"expected a JSON object, "
                                     f"got {type(doc).__name__}")
        return doc

    # ------------------------------------------------------------ endpoints

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, doc: dict) -> dict:
        """POST a campaign submission; returns the accepted status doc
        (its ``id`` addresses every other endpoint)."""
        return self._request("POST", "/v1/campaigns", doc)

    def campaigns(self) -> list[dict]:
        return list(self._request("GET", "/v1/campaigns")["campaigns"])

    def status(self, campaign_id: str) -> dict:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def result(self, campaign_id: str) -> dict[str, dict]:
        doc = self._request("GET", f"/v1/campaigns/{campaign_id}/result")
        records = doc["records"]
        assert isinstance(records, dict)
        return records

    def record(self, key: str) -> dict:
        doc = self._request("GET", f"/v1/records/{key}")
        record = doc["record"]
        assert isinstance(record, dict)
        return record

    def rlog(self, key: str) -> bytes:
        """The raw ``.rlog`` sidecar bytes for a content hash."""
        conn = self._connect()
        try:
            try:
                conn.request("GET", f"/v1/records/{key}/rlog")
                resp = conn.getresponse()
                payload = resp.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(0, f"cannot fetch rlog: {exc}") from exc
            if resp.status >= 400:
                self._decode(resp.status, payload)  # raises
            return payload
        finally:
            conn.close()

    def stream_events(self, campaign_id: str, since: int = 0,
                      follow: bool = True) -> Iterator[dict]:
        """Yield progress events live until the campaign finishes
        (or the current feed is drained, with ``follow=False``)."""
        conn = self._connect()
        try:
            flag = "1" if follow else "0"
            try:
                conn.request("GET", f"/v1/campaigns/{campaign_id}/events"
                                    f"?since={since}&follow={flag}")
                resp = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(0, f"cannot open event stream: {exc}") \
                    from exc
            if resp.status >= 400:
                self._decode(resp.status, resp.read())  # raises
            while True:
                line = resp.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if isinstance(event, dict):
                    yield event
        finally:
            conn.close()

    # ------------------------------------------------------------- helpers

    def wait(self, campaign_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the campaign reaches a terminal state; returns the
        final status doc.  Raises :class:`ServeError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(campaign_id)
            if doc.get("state") in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise ServeError(0, f"campaign {campaign_id} still "
                                    f"{doc.get('state')!r} after "
                                    f"{timeout:.0f}s")
            time.sleep(poll)
