"""A stdlib client for the serve daemon.

``http.client`` only — the same no-new-deps rule as the server.  Used
by ``repro submit`` / ``repro status --url``, the smoke driver, and the
tests.  One :class:`ServeClient` per base URL; each call opens its own
connection (the server speaks ``Connection: close``), so a client
instance is safe to share across threads.

Resilience: idempotent GETs retry with seeded full-jitter backoff on
transport errors and on the daemon's backpressure answers (429/503
honour ``Retry-After``).  POSTs never retry — a submission is not
idempotent until the daemon has acked it.  :meth:`stream_events`
transparently resumes a broken progress stream on a fresh connection
from its ``since`` cursor, so a mid-stream connection reset costs a
reconnect, not a gap in the feed.

Streaming: ``http.client`` decodes the chunked framing transparently,
so each ``readline`` yields one complete NDJSON event.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from collections.abc import Iterator
from urllib.parse import urlsplit

#: transport-level failures worth retrying on idempotent verbs
_RETRYABLE_STATUS = (0, 429, 503)


class ServeError(RuntimeError):
    """The daemon answered with an error (or not at all)."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}" if status
                         else message)
        self.status = status
        self.message = message
        #: the server's Retry-After hint, when it sent one
        self.retry_after = retry_after


class ServeClient:
    """Synchronous JSON client for one ``repro serve`` base URL."""

    def __init__(self, url: str, timeout: float = 30.0,
                 retries: int = 2, retry_backoff: float = 0.2,
                 retry_seed: int = 0) -> None:
        try:
            parts = urlsplit(url if "//" in url else f"http://{url}")
            port = parts.port  # urlsplit defers the port check
        except ValueError as exc:
            raise ServeError(0, f"bad server URL {url!r}: {exc}") from exc
        if parts.scheme not in ("", "http"):
            raise ServeError(0, f"only http:// URLs, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = port or 8750
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_backoff = retry_backoff
        self.retry_seed = retry_seed

    # ------------------------------------------------------------ plumbing

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _retry_delay(self, attempt: int, exc: ServeError) -> float:
        """Seconds to back off before retry ``attempt`` (1-based):
        the server's Retry-After when it sent one, else seeded full
        jitter over an exponential ceiling — deterministic, and
        decorrelated across clients via the seed."""
        if exc.retry_after is not None:
            return float(exc.retry_after)
        ceiling = self.retry_backoff * (2.0 ** (attempt - 1))
        rng = random.Random(f"{self.retry_seed}:{attempt}")
        return rng.uniform(0.0, ceiling)

    def _request(self, method: str, path: str,
                 doc: dict | None = None) -> dict:
        # only idempotent verbs may retry: a replayed POST could
        # double-submit a campaign the daemon already acked
        attempts = 1 + (self.retries if method == "GET" else 0)
        for attempt in range(1, attempts + 1):
            try:
                return self._request_once(method, path, doc)
            except ServeError as exc:
                if (attempt >= attempts
                        or exc.status not in _RETRYABLE_STATUS):
                    raise
                time.sleep(self._retry_delay(attempt, exc))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, method: str, path: str,
                      doc: dict | None = None) -> dict:
        conn = self._connect()
        try:
            body = None
            headers = {}
            if doc is not None:
                body = json.dumps(doc).encode()
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                payload = resp.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    0, f"cannot reach http://{self.host}:{self.port}"
                       f"{path}: {exc} — is `repro serve` running "
                       "there?") from exc
            retry_after = self._retry_after_header(resp)
            return self._decode(resp.status, payload, retry_after)
        finally:
            conn.close()

    @staticmethod
    def _retry_after_header(
            resp: http.client.HTTPResponse) -> float | None:
        raw = resp.getheader("Retry-After")
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return None

    @staticmethod
    def _decode(status: int, payload: bytes,
                retry_after: float | None = None) -> dict:
        try:
            doc = json.loads(payload or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServeError(status,
                             f"non-JSON response: {payload[:120]!r}") \
                from exc
        if status >= 400:
            message = doc.get("error", "") if isinstance(doc, dict) \
                else str(doc)
            raise ServeError(status, message or f"status {status}",
                             retry_after)
        if not isinstance(doc, dict):
            raise ServeError(status, f"expected a JSON object, "
                                     f"got {type(doc).__name__}")
        return doc

    # ------------------------------------------------------------ endpoints

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, doc: dict) -> dict:
        """POST a campaign submission; returns the accepted status doc
        (its ``id`` addresses every other endpoint)."""
        return self._request("POST", "/v1/campaigns", doc)

    def drain(self, timeout: float | None = None) -> dict:
        """Ask the daemon to stop admissions, finish in-flight work and
        snapshot its journal (``POST /v1/drain``)."""
        path = "/v1/drain"
        if timeout is not None:
            path += f"?timeout={timeout}"
        return self._request("POST", path)

    def campaigns(self) -> list[dict]:
        return list(self._request("GET", "/v1/campaigns")["campaigns"])

    def status(self, campaign_id: str) -> dict:
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def result(self, campaign_id: str) -> dict[str, dict]:
        doc = self._request("GET", f"/v1/campaigns/{campaign_id}/result")
        records = doc["records"]
        assert isinstance(records, dict)
        return records

    def record(self, key: str) -> dict:
        doc = self._request("GET", f"/v1/records/{key}")
        record = doc["record"]
        assert isinstance(record, dict)
        return record

    def rlog(self, key: str) -> bytes:
        """The raw ``.rlog`` sidecar bytes for a content hash."""
        conn = self._connect()
        try:
            try:
                conn.request("GET", f"/v1/records/{key}/rlog")
                resp = conn.getresponse()
                payload = resp.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(0, f"cannot fetch rlog: {exc}") from exc
            if resp.status >= 400:
                self._decode(resp.status, payload)  # raises
            return payload
        finally:
            conn.close()

    def stream_events(self, campaign_id: str, since: int = 0,
                      follow: bool = True) -> Iterator[dict]:
        """Yield progress events live until the campaign finishes
        (or the current feed is drained, with ``follow=False``).

        A dropped connection mid-feed does not end the iterator: the
        client reopens the stream from its ``since`` cursor (events
        carry monotone indices ``i``, so the resume point is exact) up
        to ``retries`` times per delivered event.  Only a stream that
        keeps dying without progressing raises :class:`ServeError`.
        """
        resets_left = self.retries
        while True:
            progressed = False
            try:
                for event in self._stream_once(campaign_id, since,
                                               follow):
                    progressed = True
                    index = event.get("i")
                    if isinstance(index, int):
                        since = index + 1
                    yield event
                return  # feed ended cleanly (terminal chunk seen)
            except ServeError as exc:
                if exc.status != 0:
                    raise  # the daemon answered; not a transport fault
                if progressed:
                    resets_left = self.retries  # reset the budget
                if resets_left <= 0 or not follow:
                    raise
                resets_left -= 1
                time.sleep(self._retry_delay(
                    self.retries - resets_left, exc))

    def _stream_once(self, campaign_id: str, since: int,
                     follow: bool) -> Iterator[dict]:
        conn = self._connect()
        try:
            flag = "1" if follow else "0"
            try:
                conn.request("GET", f"/v1/campaigns/{campaign_id}/events"
                                    f"?since={since}&follow={flag}")
                resp = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(0, f"cannot open event stream: {exc}") \
                    from exc
            if resp.status >= 400:
                self._decode(resp.status, resp.read())  # raises
            while True:
                try:
                    line = resp.readline()
                except (OSError, http.client.HTTPException) as exc:
                    # mid-stream reset (RST / truncated chunk): the
                    # outer loop resumes from the advanced cursor
                    raise ServeError(
                        0, f"event stream dropped: {exc}") from exc
                if not line:
                    # EOF without the server's end-of-stream sentinel:
                    # the connection died mid-feed (a reset that lands
                    # after the kernel buffer drains reads as a plain
                    # EOF, indistinguishable from a clean close)
                    raise ServeError(0, "event stream ended without "
                                        "the end-of-stream sentinel")
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if not isinstance(event, dict):
                    continue
                if event.get("eos"):
                    return  # the only clean way out
                yield event
        finally:
            conn.close()

    # ------------------------------------------------------------- helpers

    def wait(self, campaign_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the campaign reaches a terminal state; returns the
        final status doc.  Raises :class:`ServeError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(campaign_id)
            if doc.get("state") in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise ServeError(0, f"campaign {campaign_id} still "
                                    f"{doc.get('state')!r} after "
                                    f"{timeout:.0f}s")
            time.sleep(poll)
