"""Service supervision: admission control, circuit breaking, drain.

The :class:`Supervisor` sits between the HTTP layer and the daemon's
task registry and enforces the service-level robustness contracts:

* **bounded admission** — a full submission queue rejects with
  :class:`QueueFull` (HTTP 429 + ``Retry-After``), never a silent drop
  or unbounded memory;
* **per-suite circuit breaking** — a suite whose jobs keep failing
  trips its :class:`CircuitBreaker` open; subsequent submissions are
  rejected fast (:class:`CircuitOpen`, HTTP 503) until a cooldown
  elapses, then exactly one probe submission is let through half-open;
* **graceful drain** — :meth:`Supervisor.drain` stops admissions
  (:class:`Draining`, HTTP 503), waits for in-flight campaigns up to a
  deadline, then snapshots the task journal so the next start replays
  a compact, byte-stable file;
* **journaled lifecycle** — every transition is appended to the
  :class:`~repro.serve.journal.TaskJournal` *before* the in-memory
  registry moves, so a hard kill at any point is recoverable.

Everything takes an injectable monotonic ``clock`` so tests can drive
cooldowns without sleeping.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from threading import Lock

from .journal import JournalState, TaskJournal, TaskRecord
from .registry import CampaignTask, TaskRegistry


class Busy(RuntimeError):
    """Admission refused; carries the HTTP status + Retry-After hint."""

    status = 503

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = max(1, int(retry_after + 0.999))


class QueueFull(Busy):
    """The bounded submission queue is at capacity."""

    status = 429


class CircuitOpen(Busy):
    """The suite's circuit breaker is open after repeated failures."""


class Draining(Busy):
    """The daemon is draining for shutdown; no new admissions."""


class CircuitBreaker:
    """Classic closed → open → half-open breaker for one job class.

    ``threshold`` consecutive failures open the circuit; after
    ``cooldown`` seconds one probe is allowed through (half-open); a
    probe success closes it, a probe failure re-opens it for another
    full cooldown.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._mu = Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> str:
        with self._mu:
            return self._probe_state()

    def _probe_state(self) -> str:
        # must hold _mu; promotes open → half-open once cooled down
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown):
            self._state = "half-open"
            self._probe_inflight = False
        return self._state

    def retry_after(self) -> float:
        with self._mu:
            if self._probe_state() != "open":
                return 1.0
            return max(1.0,
                       self._opened_at + self.cooldown - self._clock())

    def allow(self) -> bool:
        """May one more submission enter?  In half-open this admits a
        single probe and shuts the door behind it until the probe
        reports back."""
        with self._mu:
            state = self._probe_state()
            if state == "closed":
                return True
            if state == "half-open" and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        with self._mu:
            self._state = "closed"
            self._failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._mu:
            if self._state != "closed":
                # failed probe (or failure while open): restart cooldown
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_inflight = False
                return
            self._failures += 1
            if self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = self._clock()


class Supervisor:
    """Admission + lifecycle journaling for the serve daemon."""

    def __init__(self, journal: TaskJournal | None, *,
                 max_queue: int = 64,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.journal = journal
        self.max_queue = max_queue
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._clock = clock
        self._mu = Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self.epoch = 0
        self.recovered_tasks = 0
        self.expired_leases = 0
        self.rejected = 0
        self.draining = False
        self.drained = False

    # ----------------------------------------------------------- admission

    def breaker(self, suite: str) -> CircuitBreaker:
        with self._mu:
            br = self._breakers.get(suite)
            if br is None:
                br = CircuitBreaker(self.breaker_threshold,
                                    self.breaker_cooldown, self._clock)
                self._breakers[suite] = br
            return br

    def admit(self, suite: str, queue_depth: int) -> None:
        """Gate one submission; raises a :class:`Busy` subtype to
        reject (the HTTP layer maps it to 429/503 + Retry-After)."""
        if self.draining:
            self.rejected += 1
            raise Draining("daemon is draining; not accepting work")
        br = self.breaker(suite)
        if not br.allow():
            self.rejected += 1
            raise CircuitOpen(
                f"circuit open for suite {suite!r} after repeated "
                "failures; retry later", br.retry_after())
        if queue_depth >= self.max_queue:
            self.rejected += 1
            raise QueueFull(
                f"submission queue full ({queue_depth}/{self.max_queue})")

    # ------------------------------------------------- journaled lifecycle
    # Journal first, memory second: each helper appends the durable
    # record, then mutates the registry.  A kill between the two is the
    # exact situation recovery replays.

    def accept(self, task: CampaignTask, doc: dict,
               deadline: float | None) -> None:
        """The ack point: once this returns, the submission is durable
        and must survive any crash."""
        if self.journal is not None:
            entry: dict = {"task": task.id, "suite": task.suite,
                           "doc": doc, "submitted_at": task.submitted_at}
            if deadline is not None:
                entry["deadline"] = deadline
            self.journal.append("accepted", **entry)

    def lease(self, task: CampaignTask, registry: TaskRegistry) -> None:
        if self.journal is not None:
            self.journal.append("running", task=task.id,
                                epoch=self.epoch, pid=os.getpid())
        registry.mark_running(task)

    def publishing(self, task: CampaignTask) -> None:
        if self.journal is not None:
            self.journal.append("publishing", task=task.id)
        task.state = "publishing"

    def finish(self, task: CampaignTask, registry: TaskRegistry,
               summary: dict) -> None:
        if self.journal is not None:
            self.journal.append("done", task=task.id, summary=summary,
                                finished_at=time.time())
        registry.mark_done(task, summary)
        self.breaker(task.suite).record_success()

    def fail(self, task: CampaignTask, registry: TaskRegistry,
             error: str) -> None:
        if self.journal is not None:
            self.journal.append("failed", task=task.id, error=error,
                                finished_at=time.time())
        registry.mark_failed(task, error)
        self.breaker(task.suite).record_failure()

    # ------------------------------------------------------------ recovery

    def recover(self) -> JournalState:
        """Replay the journal; if it left unfinished work behind, bump
        the lease epoch and journal the takeover.  An idle restart
        appends nothing — that is the restart-is-a-no-op invariant."""
        if self.journal is None:
            return JournalState()
        state = self.journal.recover()
        self.epoch = state.epoch
        unfinished = state.unfinished
        self.recovered_tasks = len(unfinished)
        self.expired_leases = state.stale_leases
        if unfinished:
            self.epoch += 1
            self.journal.append("epoch", epoch=self.epoch,
                                pid=os.getpid(),
                                recovered=len(unfinished),
                                expired=self.expired_leases)
        return state

    @staticmethod
    def record_to_doc(rec: TaskRecord) -> dict:
        """The submission document to replay for a recovered task."""
        return dict(rec.doc)

    # --------------------------------------------------------------- drain

    def drain(self, pending: Callable[[], int],
              snapshot: Callable[[], JournalState] | None,
              timeout: float = 30.0, poll: float = 0.05) -> bool:
        """Stop admissions, wait for in-flight work up to ``timeout``
        seconds, then snapshot the journal.  Returns True if the queue
        fully drained before the deadline."""
        self.draining = True
        deadline = self._clock() + timeout
        while pending() > 0 and self._clock() < deadline:
            time.sleep(poll)
        clean = pending() == 0
        if self.journal is not None and snapshot is not None and clean:
            self.journal.snapshot(snapshot())
        self.drained = True
        return clean

    # --------------------------------------------------------------- stats

    def stats(self, queue_depth: int) -> dict:
        doc: dict = {
            "queue_depth": queue_depth,
            "max_queue": self.max_queue,
            "draining": self.draining,
            "rejected": self.rejected,
            "epoch": self.epoch,
            "recovered_tasks": self.recovered_tasks,
            "expired_leases": self.expired_leases,
            "breakers": {suite: br.state
                         for suite, br in sorted(self._breakers.items())},
        }
        if self.journal is not None:
            doc["journal"] = self.journal.stats()
        return doc
