"""Campaign-task lifecycle tracking for the serve daemon.

A :class:`CampaignTask` is one accepted submission: the validated
document, the built :class:`~repro.campaign.spec.Campaign`, a state
machine (``queued → running → publishing → done | failed``), and an
ordered list of
progress events (each stamped with a monotonically increasing index
``i``) appended by the scheduler's ``on_event`` callback.  The
:class:`TaskRegistry` owns the id namespace and the lock; the streaming
endpoint reads ``events_since`` snapshots and never blocks a writer.

Nothing here knows about HTTP — the registry is shared state between
the asyncio front end and the runner threads, guarded by one mutex.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..campaign.spec import Campaign

#: terminal task states
FINAL_STATES = ("done", "failed")


def campaign_status_doc(suite: str, campaign: Campaign, state: str,
                        submission: dict) -> dict:
    """The shared campaign-status schema.

    Both ``GET /v1/campaigns/{id}`` and the local
    ``repro campaign --status --json`` build on this document, so a
    client parses one shape whether the campaign runs in a daemon or
    in-process: :meth:`Campaign.describe` (name / jobs / targets /
    by_kind) plus suite, state, the submission document, and the
    content-addressed target keys.
    """
    doc = campaign.describe()
    doc.update({
        "suite": suite,
        "state": state,
        "submission": submission,
        "target_keys": list(campaign.targets),
    })
    return doc


@dataclass
class CampaignTask:
    """One submitted campaign and everything the API reports about it."""

    id: str
    suite: str
    doc: dict
    campaign: Campaign
    jobs: int
    timeout: float | None
    refresh: bool
    state: str = "queued"
    error: str | None = None
    events: list[dict] = field(default_factory=list)
    summary: dict | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    #: wall-clock budget in seconds (client deadline, propagated down)
    deadline: float | None = None
    #: monotonic timestamp the budget expires at (set on acceptance)
    deadline_at: float | None = None
    #: True when this task was rebuilt from the journal after a crash
    recovered: bool = False

    @property
    def finished(self) -> bool:
        return self.state in FINAL_STATES

    def status_doc(self) -> dict:
        """The JSON shape of ``GET /v1/campaigns/{id}`` — the shared
        :func:`campaign_status_doc` schema plus the daemon-side fields
        (id, event count, timestamps)."""
        doc = campaign_status_doc(self.suite, self.campaign, self.state,
                                  self.doc)
        doc.update({
            "id": self.id,
            "events": len(self.events),
            "submitted_at": self.submitted_at,
        })
        if self.error is not None:
            doc["error"] = self.error
        if self.summary is not None:
            doc["summary"] = self.summary
        if self.finished_at is not None:
            doc["finished_at"] = self.finished_at
        if self.deadline is not None:
            doc["deadline"] = self.deadline
        if self.recovered:
            doc["recovered"] = True
        return doc


class TaskRegistry:
    """Thread-safe task table + per-task ordered event feeds."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._tasks: dict[str, CampaignTask] = {}
        self._order: list[str] = []
        self._next_id = 1

    def create(self, suite: str, doc: dict, campaign: Campaign,
               jobs: int, timeout: float | None, refresh: bool,
               deadline: float | None = None,
               task_id: str | None = None,
               submitted_at: float | None = None,
               recovered: bool = False) -> CampaignTask:
        """Allocate (or, with ``task_id``, restore) one task.

        Journal recovery passes the pre-crash id so ``status`` keeps
        resolving it; the id counter always advances past restored ids
        so fresh submissions never collide with replayed ones.
        """
        with self._mu:
            if task_id is None:
                task_id = f"c-{self._next_id:06d}"
                self._next_id += 1
            else:
                if task_id in self._tasks:
                    raise ValueError(f"duplicate task id {task_id!r}")
                tail = task_id.rsplit("-", 1)[-1]
                if tail.isdigit():
                    self._next_id = max(self._next_id, int(tail) + 1)
            task = CampaignTask(id=task_id, suite=suite, doc=doc,
                                campaign=campaign, jobs=jobs,
                                timeout=timeout, refresh=refresh,
                                deadline=deadline, recovered=recovered)
            if submitted_at is not None:
                task.submitted_at = submitted_at
            self._tasks[task_id] = task
            self._order.append(task_id)
            return task

    def get(self, task_id: str) -> CampaignTask | None:
        with self._mu:
            return self._tasks.get(task_id)

    def remove(self, task_id: str) -> CampaignTask | None:
        """Forget a task that never got acked (its journal append
        failed) — otherwise it would occupy a queue slot forever."""
        with self._mu:
            task = self._tasks.pop(task_id, None)
            if task is not None:
                self._order.remove(task_id)
            return task

    def list(self) -> list[CampaignTask]:
        with self._mu:
            return [self._tasks[tid] for tid in self._order]

    def counts(self) -> dict[str, int]:
        """Tasks by state (the queue-depth gauge reads this)."""
        with self._mu:
            by_state: dict[str, int] = {}
            for task in self._tasks.values():
                by_state[task.state] = by_state.get(task.state, 0) + 1
            return by_state

    # ---------------------------------------------------------- lifecycle

    def mark_running(self, task: CampaignTask) -> None:
        with self._mu:
            task.state = "running"

    def mark_done(self, task: CampaignTask, summary: dict) -> None:
        with self._mu:
            task.state = "done"
            task.summary = summary
            task.finished_at = time.time()

    def mark_failed(self, task: CampaignTask, error: str) -> None:
        with self._mu:
            task.state = "failed"
            task.error = error
            task.finished_at = time.time()

    # ------------------------------------------------------------- events

    def append_event(self, task: CampaignTask, event: dict) -> None:
        """Stamp ``event`` with its index and append it to the feed.
        Called from runner threads via the scheduler's ``on_event``."""
        with self._mu:
            stamped = dict(event)
            stamped["i"] = len(task.events)
            stamped["task"] = task.id
            task.events.append(stamped)

    def events_since(self, task: CampaignTask,
                     since: int) -> tuple[list[dict], bool]:
        """Events with index >= ``since`` plus whether the feed is
        complete (task finished — no more events will ever arrive)."""
        with self._mu:
            fresh = task.events[since:] if since < len(task.events) \
                else []
            return list(fresh), task.state in FINAL_STATES
