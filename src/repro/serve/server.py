"""The asyncio HTTP/JSON front end (stdlib only).

One ``asyncio.start_server`` accept loop; each connection carries one
request (``Connection: close``).  Handlers delegate to the
:class:`~repro.serve.daemon.ServeDaemon` — whose calls are all short
and lock-light (the LSM store's flushes and compactions run on its own
background thread) — so the event loop never parks behind a simulation.

Endpoints::

    GET  /healthz                      liveness
    GET  /v1/stats                     store + queue + metrics snapshot
    POST /v1/drain                     stop admissions, drain, snapshot
    POST /v1/campaigns                 submit a campaign document (202;
                                       429/503 + Retry-After when the
                                       queue is full, a breaker is
                                       open, or the daemon is draining)
    GET  /v1/campaigns                 all campaign statuses
    GET  /v1/campaigns/{id}            one campaign status
    GET  /v1/campaigns/{id}/result     {target_key: record} (finished)
    GET  /v1/campaigns/{id}/events     chunked NDJSON progress stream
                                       (?since=N resumes mid-feed,
                                        ?follow=0 returns and closes)
    GET  /v1/records/{key}             one content-addressed record
    GET  /v1/records/{key}/rlog        the .rlog sidecar, chunked raw

The events endpoint streams with chunked transfer encoding: each
scheduler decision (plan / job submit / job done / job failed / done)
is one NDJSON line, flushed as its own chunk, so a client watches a
campaign live.  The stream ends when the campaign reaches a terminal
state and the feed is drained.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import threading
import time

from ..campaign.suites import SuiteError
from .daemon import ServeDaemon, UnknownKeyError
from .registry import CampaignTask
from .supervise import Busy
from .protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    chunk,
    error_response,
    event_line,
    json_response,
    last_chunk,
    parse_headers,
    parse_request_line,
    split_path,
    stream_head,
)

_log = logging.getLogger("repro.serve")

#: how long a client may take to deliver its request
READ_TIMEOUT_S = 10.0
#: poll interval while waiting for fresh progress events
EVENT_POLL_S = 0.05
#: raw-bytes chunk size for .rlog streaming
RLOG_CHUNK = 64 << 10


class HttpFrontend:
    """The accept loop plus routing, bound to one daemon."""

    def __init__(self, daemon: ServeDaemon, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.daemon = daemon
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        _log.info(f"repro serve listening on "
                  f"http://{self.host}:{self.port}")

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ----------------------------------------------------------- connection

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        t0 = time.perf_counter()
        status = 500
        try:
            try:
                request = await asyncio.wait_for(
                    self._read_request(reader), timeout=READ_TIMEOUT_S)
            except asyncio.TimeoutError:
                writer.write(error_response(408, "request read timed out"))
                status = 408
                return
            except ProtocolError as exc:
                writer.write(error_response(exc.status, exc.message))
                status = exc.status
                return
            if request is None:  # connection closed before a request
                return
            status = await self._route(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # pragma: no cover - defensive
            _log.exception("request handler crashed")
            try:
                writer.write(error_response(
                    500, f"{type(exc).__name__}: {exc}"))
            except Exception:
                pass
        finally:
            m = self.daemon.metrics
            m.counter("serve.http.requests").inc()
            m.counter(f"serve.http.status.{status // 100}xx").inc()
            m.histogram("serve.http.request_ms").observe(
                (time.perf_counter() - t0) * 1e3)
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self,
                            reader: asyncio.StreamReader) -> Request | None:
        line = (await reader.readline()).decode("latin-1").strip()
        if not line:
            return None
        method, path, query = parse_request_line(line)
        raw_headers: list[str] = []
        while True:
            header = (await reader.readline()).decode("latin-1")
            if header in ("\r\n", "\n", ""):
                break
            raw_headers.append(header.rstrip("\r\n"))
        headers = parse_headers(raw_headers)
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError as exc:
                raise ProtocolError(
                    400, f"bad Content-Length: {length!r}") from exc
            if n > MAX_BODY_BYTES:
                raise ProtocolError(413, f"body of {n} bytes exceeds "
                                         f"{MAX_BODY_BYTES}")
            body = await reader.readexactly(n)
        return Request(method=method, path=path, query=query,
                       headers=headers, body=body)

    # -------------------------------------------------------------- routing

    async def _route(self, request: Request,
                     writer: asyncio.StreamWriter) -> int:
        segments = split_path(request.path)
        try:
            if segments == ["healthz"]:
                return self._write(writer, 200, {"ok": True})
            if segments == ["v1", "stats"] and request.method == "GET":
                return self._write(writer, 200, self.daemon.stats())
            if segments == ["v1", "drain"]:
                if request.method != "POST":
                    writer.write(error_response(405, "POST only"))
                    return 405
                return await self._drain(request, writer)
            if segments == ["v1", "campaigns"]:
                if request.method == "POST":
                    task = self.daemon.submit(request.json())
                    return self._write(writer, 202, task.status_doc())
                if request.method == "GET":
                    return self._write(writer, 200, {
                        "campaigns": [t.status_doc()
                                      for t in self.daemon.registry.list()],
                    })
                writer.write(error_response(405, "GET or POST"))
                return 405
            if (len(segments) in (3, 4)
                    and segments[:2] == ["v1", "campaigns"]):
                return await self._route_campaign(request, writer,
                                                  segments)
            if (len(segments) in (3, 4)
                    and segments[:2] == ["v1", "records"]):
                return await self._route_record(request, writer, segments)
        except ProtocolError as exc:
            writer.write(error_response(exc.status, exc.message))
            return exc.status
        except SuiteError as exc:
            writer.write(error_response(400, str(exc)))
            return 400
        except Busy as exc:
            # backpressure, not failure: 429 (queue full) or 503
            # (draining / circuit open), always with Retry-After
            writer.write(error_response(exc.status, str(exc),
                                        retry_after=exc.retry_after))
            return exc.status
        except UnknownKeyError as exc:
            writer.write(error_response(
                404, f"no record for key {exc.args[0]!r}"))
            return 404
        writer.write(error_response(404, f"no route for "
                                         f"{request.method} "
                                         f"{request.path}"))
        return 404

    async def _route_campaign(self, request: Request,
                              writer: asyncio.StreamWriter,
                              segments: list[str]) -> int:
        if request.method != "GET":
            writer.write(error_response(405, "GET only"))
            return 405
        task = self.daemon.registry.get(segments[2])
        if task is None:
            writer.write(error_response(
                404, f"no campaign {segments[2]!r}"))
            return 404
        if len(segments) == 3:
            return self._write(writer, 200, task.status_doc())
        if segments[3] == "result":
            if not task.finished:
                writer.write(error_response(
                    400, f"campaign {task.id} is {task.state}; "
                         "stream /events or poll status"))
                return 400
            if task.state == "failed":
                writer.write(error_response(
                    400, f"campaign {task.id} failed: {task.error}"))
                return 400
            return self._write(writer, 200,
                               {"id": task.id,
                                "records": self.daemon.result(task)})
        if segments[3] == "events":
            return await self._stream_events(request, writer, task)
        writer.write(error_response(404, f"no route for {request.path}"))
        return 404

    async def _route_record(self, request: Request,
                            writer: asyncio.StreamWriter,
                            segments: list[str]) -> int:
        if request.method != "GET":
            writer.write(error_response(405, "GET only"))
            return 405
        key = segments[2]
        if len(segments) == 3:
            return self._write(writer, 200,
                               {"key": key,
                                "record": self.daemon.record(key)})
        if segments[3] == "rlog":
            return await self._stream_rlog(writer, key)
        writer.write(error_response(404, f"no route for {request.path}"))
        return 404

    # ------------------------------------------------------------ lifecycle

    async def _drain(self, request: Request,
                     writer: asyncio.StreamWriter) -> int:
        """``POST /v1/drain``: stop admissions, wait for in-flight
        campaigns (``?timeout=S`` caps the wait), snapshot the journal,
        then report.  ``run_server`` notices ``daemon.drained`` and
        exits cleanly right after this response goes out."""
        timeout: float | None = None
        raw = request.query.get("timeout")
        if raw is not None:
            try:
                timeout = float(raw)
            except ValueError:
                writer.write(error_response(400,
                                            "timeout must be a number"))
                return 400
        loop = asyncio.get_running_loop()
        clean = await loop.run_in_executor(
            None, lambda: self.daemon.drain(timeout))
        return self._write(writer, 200, {
            "draining": True,
            "clean": clean,
            "queue_depth": self.daemon.queue_depth(),
        })

    # ------------------------------------------------------------ streaming

    async def _stream_events(self, request: Request,
                             writer: asyncio.StreamWriter,
                             task: CampaignTask) -> int:
        try:
            since = int(request.query.get("since", "0"))
        except ValueError:
            writer.write(error_response(400, "since must be an integer"))
            return 400
        follow = request.query.get("follow", "1") not in ("0", "false")
        writer.write(stream_head())
        await writer.drain()
        while True:
            events, finished = self.daemon.registry.events_since(task,
                                                                 since)
            for event in events:
                writer.write(chunk(event_line(event)))
            if events:
                since = events[-1]["i"] + 1
                await writer.drain()
                if self.daemon.stream_resets_remaining > 0:
                    # chaos drill: hard-reset the connection mid-feed
                    # (RST, no terminating chunk) — the client must
                    # resume from its `since` cursor on a fresh socket
                    self.daemon.stream_resets_remaining -= 1
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
                    return 200
            if finished or not follow:
                break
            await asyncio.sleep(EVENT_POLL_S)
        # explicit end-of-stream sentinel: a feed that stops without it
        # was cut mid-flight (TCP semantics alone can't tell a clean
        # close from a reset once the kernel buffer is drained, so the
        # client keys its resume decision off this line)
        writer.write(chunk(event_line({"eos": True})))
        writer.write(last_chunk())
        return 200

    async def _stream_rlog(self, writer: asyncio.StreamWriter,
                           key: str) -> int:
        blob = self.daemon.rlog(key)  # raises UnknownKeyError → 404
        writer.write(stream_head(content_type="application/octet-stream"))
        for start in range(0, len(blob), RLOG_CHUNK):
            writer.write(chunk(blob[start:start + RLOG_CHUNK]))
            await writer.drain()
        writer.write(last_chunk())
        return 200

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _write(writer: asyncio.StreamWriter, status: int,
               doc: object) -> int:
        writer.write(json_response(status, doc))
        return status


class BackgroundServer:
    """The front end hosted on a dedicated event-loop thread.

    Lets synchronous code (tests, the smoke driver) run a live server
    next to blocking clients in one process::

        server = BackgroundServer(daemon)
        port = server.start()
        ... ServeClient(f"http://127.0.0.1:{port}") ...
        server.stop()
    """

    def __init__(self, daemon: ServeDaemon, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.frontend = HttpFrontend(daemon, host=host, port=port)
        self._loop = asyncio.new_event_loop()
        self._thread: threading.Thread | None = None

    def start(self, timeout: float = 10.0) -> int:
        """Start serving; returns the bound port."""
        ready = threading.Event()

        def body() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.frontend.start())
            ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=body, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not ready.wait(timeout):  # pragma: no cover - startup hang
            raise RuntimeError("server failed to start in time")
        return self.frontend.port

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.frontend.close(),
                                                  self._loop)
        try:
            future.result(timeout)
        except Exception:  # pragma: no cover - teardown is best-effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._thread = None


async def run_server(daemon: ServeDaemon, host: str = "127.0.0.1",
                     port: int = 8750, *,
                     install_signals: bool = False,
                     poll_s: float = 0.2) -> None:
    """Start the front end and serve until cancelled or drained.

    With ``install_signals=True`` a SIGTERM triggers the graceful
    path: admissions stop, in-flight campaigns drain up to the
    daemon's drain timeout, the journal is snapshotted, and the loop
    exits clean — same effect as ``POST /v1/drain``.  (SIGINT stays
    the CLI's KeyboardInterrupt, the abrupt-but-journaled path.)
    """
    frontend = HttpFrontend(daemon, host=host, port=port)
    await frontend.start()
    loop = asyncio.get_running_loop()

    def _on_sigterm() -> None:
        _log.info("SIGTERM: draining before shutdown")
        threading.Thread(target=daemon.drain, daemon=True,
                         name="repro-serve-drain").start()

    if install_signals:
        try:
            loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            install_signals = False
    try:
        while not daemon.drained:
            await asyncio.sleep(poll_s)
        # one extra beat so the /v1/drain response flushes before the
        # listener goes away
        await asyncio.sleep(poll_s)
        _log.info("drained; shutting down")
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        if install_signals:
            try:
                loop.remove_signal_handler(signal.SIGTERM)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await frontend.close()
