"""Profiling-as-a-service: the ``repro serve`` campaign daemon.

The paper's profiler is a batch tool; this package promotes the
campaign layer into a long-lived service.  A stdlib-only asyncio
HTTP/JSON front end (:mod:`repro.serve.server`) accepts
:class:`~repro.campaign.spec.JobSpec` campaign submissions from many
concurrent clients, a small pool of runner threads drains them through
the existing dependency-aware :class:`~repro.campaign.scheduler.
CampaignRunner` (process workers underneath, same retry/timeout/
pool-rebuild machinery as the CLI), and every result lands in one
shared LSM-shaped :class:`~repro.campaign.store.ResultStore` — so an
HTTP-submitted job is byte-identical to, and shares cache slots with,
the serial ``repro campaign`` command.

Modules:

- :mod:`repro.serve.protocol` — HTTP/1.1 wire plumbing (parsing,
  responses, chunked transfer), pure and synchronous.
- :mod:`repro.serve.registry` — campaign-task lifecycle + the ordered
  progress-event feed the streaming endpoint reads.
- :mod:`repro.serve.journal` — the crash-safe task journal (WAL-style,
  CRC-framed, group-committed) every state transition is appended to.
- :mod:`repro.serve.supervise` — admission control (bounded queue,
  per-suite circuit breakers), journaled lifecycle, graceful drain.
- :mod:`repro.serve.daemon` — the service core: validation, journal
  recovery, runner threads, store/metrics access.  No sockets.
- :mod:`repro.serve.server` — the asyncio front end and routes.
- :mod:`repro.serve.client` — a stdlib ``http.client`` client (with
  jittered retries and stream resume) used by ``repro submit`` /
  ``repro status --url`` and the tests.
- :mod:`repro.serve.smoke` — the CI smoke driver
  (``python -m repro.serve.smoke``).
"""

from .client import ServeClient, ServeError
from .daemon import ServeDaemon
from .journal import JournalState, TaskJournal, TaskRecord
from .registry import CampaignTask, TaskRegistry
from .server import BackgroundServer, HttpFrontend, run_server
from .supervise import (
    Busy,
    CircuitBreaker,
    CircuitOpen,
    Draining,
    QueueFull,
    Supervisor,
)

__all__ = [
    "BackgroundServer",
    "Busy",
    "CampaignTask",
    "CircuitBreaker",
    "CircuitOpen",
    "Draining",
    "HttpFrontend",
    "JournalState",
    "QueueFull",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "Supervisor",
    "TaskJournal",
    "TaskRecord",
    "TaskRegistry",
    "run_server",
]
