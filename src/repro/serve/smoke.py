"""CI smoke driver: the serve daemon end to end, in one process.

``python -m repro.serve.smoke`` proves the acceptance contract of
profiling-as-a-service:

1. **Serial baseline** — run two campaign suites through the plain
   ``repro campaign`` CLI path into a fresh store directory.
2. **Service run** — start a live HTTP server (ephemeral port) over a
   second fresh store, submit the same two suites concurrently from two
   client threads, and stream one campaign's progress events while it
   runs.
3. **kill -9 mid-job** — while the campaigns execute, SIGKILL one of
   the pool's worker processes; the scheduler's BrokenProcessPool
   recovery must rebuild the pool, retry, and finish both campaigns.
4. **Byte-identity** — every result record (canonical JSON) and every
   content-addressed ``.rlog`` sidecar in the service store must be
   byte-identical to the serial store's; one sidecar is also fetched
   over HTTP and compared against the on-disk bytes.

Prints one ``smoke: ...`` line per check; exits non-zero on the first
failure.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from ..campaign.store import ResultStore
from .client import ServeClient
from .daemon import ServeDaemon
from .server import BackgroundServer

#: the two suites under test: one reducer DAG (overhead), one profiled
#: suite producing .rlog sidecars (figure8) — small enough for CI
SUBMISSIONS: tuple[dict, ...] = (
    {"suite": "overhead", "workloads": ["micro_low_abort"],
     "n_threads": 2, "scale": 0.25, "runs": 3, "drop": 0, "jobs": 2},
    {"suite": "figure8", "workloads": ["micro_low_abort",
                                       "micro_capacity"],
     "n_threads": 2, "scale": 0.25, "seed": 0, "jobs": 2},
)


def _ok(label: str) -> None:
    print(f"smoke: {label}: OK", flush=True)


def _fail(label: str, detail: str) -> None:
    print(f"smoke: {label}: FAIL — {detail}", flush=True)
    raise SystemExit(1)


def _serial_baseline(root: Path) -> None:
    """The plain CLI path the service must match byte-for-byte."""
    from ..cli import main as cli_main

    for doc in SUBMISSIONS:
        argv = ["-q", "campaign", doc["suite"],
                *doc.get("workloads", []),
                "--threads", str(doc["n_threads"]),
                "--scale", str(doc["scale"]),
                "--seed", str(doc.get("seed", 0)),
                "--jobs", "1", "--cache-dir", str(root)]
        if doc["suite"] == "overhead":
            argv += ["--runs", str(doc["runs"]),
                     "--drop", str(doc["drop"])]
        rc = cli_main(argv)
        if rc != 0:
            _fail("serial baseline", f"CLI exited {rc} for "
                                     f"{doc['suite']}")
    _ok("serial baseline (2 suites via repro campaign CLI)")


def _kill_one_worker(stop: threading.Event, killed: list[int]) -> None:
    """SIGKILL the first pool worker process that appears — the
    hard-death the scheduler must absorb via pool rebuild + retry."""
    deadline = time.monotonic() + 60.0
    while not stop.is_set() and time.monotonic() < deadline:
        children = multiprocessing.active_children()
        if children:
            victim = children[0]
            pid = victim.pid
            if pid is not None:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    continue
                killed.append(pid)
                return
        time.sleep(0.02)


def _submit_and_wait(client: ServeClient, doc: dict,
                     out: dict[str, dict]) -> None:
    accepted = client.submit(doc)
    final = client.wait(accepted["id"], timeout=600.0)
    out[doc["suite"]] = final


def _service_run(root: Path) -> tuple[dict[str, dict], list[dict], int]:
    """Submit both suites from two concurrent clients, kill a worker
    mid-run, stream events; returns (final statuses, events, killed)."""
    daemon = ServeDaemon(store=ResultStore(root, background=True),
                         runners=2)
    server = BackgroundServer(daemon)
    port = server.start()
    url = f"http://127.0.0.1:{port}"
    try:
        client_a, client_b = ServeClient(url), ServeClient(url)
        if not client_a.health().get("ok"):
            _fail("health", "healthz did not answer ok")
        finals: dict[str, dict] = {}
        stop = threading.Event()
        killed: list[int] = []
        killer = threading.Thread(target=_kill_one_worker,
                                  args=(stop, killed))
        killer.start()
        threads = [
            threading.Thread(target=_submit_and_wait,
                             args=(client_a, SUBMISSIONS[0], finals)),
            threading.Thread(target=_submit_and_wait,
                             args=(client_b, SUBMISSIONS[1], finals)),
        ]
        for t in threads:
            t.start()
        # stream whichever campaign was accepted first, live
        events: list[dict] = []
        for _ in range(200):
            campaigns = client_a.campaigns()
            if campaigns:
                events = list(client_a.stream_events(campaigns[0]["id"]))
                break
            time.sleep(0.05)
        for t in threads:
            t.join(timeout=600.0)
        stop.set()
        killer.join(timeout=5.0)
        stats = client_a.stats()
        if stats["store"]["backend"] != "disk":
            _fail("stats", f"unexpected stats doc: {stats}")
        _ok(f"stats endpoint (queue_depth={stats['queue_depth']}, "
            f"records={stats['store']['records']})")
        # one .rlog over HTTP vs the file on disk
        fig8 = finals.get("figure8")
        if fig8 is None or fig8.get("state") != "done":
            _fail("figure8 over HTTP", f"final status: {fig8}")
        key = fig8["target_keys"][0]
        http_rlog = client_a.rlog(key)
        disk_rlog = (root / ResultStore.REPLAY_DIR
                     / f"{key}.rlog").read_bytes()
        if http_rlog != disk_rlog:
            _fail("rlog streaming", f"HTTP bytes != disk bytes for "
                                    f"{key[:12]}")
        _ok(f"rlog streamed over HTTP byte-identical "
            f"({len(http_rlog)} bytes)")
        return finals, events, len(killed)
    finally:
        server.stop()
        daemon.close()


def _compare_stores(serial_root: Path, serve_root: Path) -> None:
    serial = ResultStore(serial_root)
    served = ResultStore(serve_root)
    serial_keys, served_keys = set(serial.keys()), set(served.keys())
    if not serial_keys <= served_keys:
        _fail("store keys", f"service store is missing "
                            f"{sorted(serial_keys - served_keys)}")
    for key in sorted(serial_keys):
        a = json.dumps(serial.fetch(key), sort_keys=True)
        b = json.dumps(served.fetch(key), sort_keys=True)
        if a != b:
            _fail("record byte-identity",
                  f"record {key[:12]} differs between serial CLI and "
                  f"HTTP service")
    _ok(f"{len(serial_keys)} records byte-identical to the serial CLI")
    sidecars = sorted(p.name for p in
                      (serial_root / ResultStore.REPLAY_DIR)
                      .glob("*.rlog"))
    if not sidecars:
        _fail("rlog sidecars", "serial store produced no .rlog sidecars")
    for name in sidecars:
        a_bytes = (serial_root / ResultStore.REPLAY_DIR / name) \
            .read_bytes()
        b_path = serve_root / ResultStore.REPLAY_DIR / name
        if not b_path.exists():
            _fail("rlog sidecars", f"service store missing {name}")
        if a_bytes != b_path.read_bytes():
            _fail("rlog sidecars", f"{name} differs")
    _ok(f"{len(sidecars)} .rlog sidecars byte-identical")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as d:
        base = Path(d)
        serial_root = base / "serial-store"
        serve_root = base / "serve-store"
        _serial_baseline(serial_root)
        finals, events, killed = _service_run(serve_root)
        for suite in ("overhead", "figure8"):
            final = finals.get(suite)
            if final is None or final.get("state") != "done":
                _fail(f"campaign {suite}",
                      f"final status: {final}")
            _ok(f"campaign {suite} done over HTTP "
                f"(summary={final.get('summary')})")
        if killed < 1:
            _fail("kill -9 worker", "no pool worker appeared to kill — "
                                    "the drill never ran")
        _ok(f"survived kill -9 of {killed} worker process(es) mid-job")
        if not events:
            _fail("event stream", "no progress events streamed")
        types = {e.get("type") for e in events}
        if "plan" not in types or "done" not in types:
            _fail("event stream", f"missing plan/done events: {types}")
        indices = [e["i"] for e in events]
        if indices != sorted(indices):
            _fail("event stream", "event indices out of order")
        _ok(f"streamed {len(events)} progress events in order")
        _compare_stores(serial_root, serve_root)
    print("smoke: all serve checks passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
