"""The service core behind the HTTP front end.

:class:`ServeDaemon` owns the shared pieces of profiling-as-a-service:

* **one result store** — an LSM :class:`~repro.campaign.store.
  ResultStore` opened with ``background=True`` (flushes and compactions
  run on the store's worker thread, never on a request path).  Every
  submitted campaign reads and writes the same store, so concurrent
  clients deduplicate work exactly like serial CLI runs sharing a cache
  directory.
* **a runner-thread pool** — each accepted submission becomes a
  :class:`~repro.serve.registry.CampaignTask` executed by its own
  :class:`~repro.campaign.scheduler.CampaignRunner` on one of
  ``runners`` threads; the runner's process pool (``jobs`` workers)
  does the simulating, and its retry/pool-rebuild machinery makes a
  ``kill -9``'d worker a retried job, not a failed campaign.
* **validation** — submissions pass through
  :func:`repro.campaign.suites.submission_kwargs`, the same validator
  the CLI uses, so a bad document is an HTTP 400 before anything runs.
* **observability** — request counters and queue-depth gauges live in a
  ``repro.obs`` :class:`~repro.obs.metrics.MetricsRegistry`; the store
  contributes its WAL/level/refcount vitals via ``export_metrics``.

Determinism note (the paper's observation boundary): a job executes in
a worker process seeded entirely from its JobSpec, whether the spec
arrived over HTTP or from the CLI — so service-side records and their
``.rlog`` sidecars are byte-identical to serial ones, and the smoke
test asserts exactly that.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..campaign.scheduler import CampaignRunner, RetryPolicy
from ..campaign.store import MemoryStore, ResultStore
from ..campaign.suites import SuiteError, build_campaign, submission_kwargs
from ..obs.metrics import MetricsRegistry
from .registry import CampaignTask, TaskRegistry

_log = logging.getLogger("repro.serve")

#: per-campaign worker-process ceiling (a submission may ask for fewer)
MAX_JOBS = max(1, (os.cpu_count() or 2))


class UnknownKeyError(KeyError):
    """No record (or sidecar) under the requested content hash."""


class ServeDaemon:
    """Validation, execution and store access for the serve endpoints."""

    def __init__(
        self,
        store_root: str | Path | None = None,
        *,
        store: ResultStore | MemoryStore | None = None,
        runners: int = 2,
        default_jobs: int = 1,
        retries: int = 2,
    ) -> None:
        if store is not None:
            self.store = store
        else:
            root = (store_root or os.environ.get("REPRO_CACHE_DIR")
                    or ".repro-cache")
            self.store = ResultStore(root, background=True)
        self.registry = TaskRegistry()
        self.metrics = MetricsRegistry()
        self.default_jobs = max(1, default_jobs)
        self.retries = retries
        self._runners = ThreadPoolExecutor(
            max_workers=max(1, runners),
            thread_name_prefix="repro-serve-runner")
        self._closed = False

    # ---------------------------------------------------------- submission

    def submit(self, doc: dict) -> CampaignTask:
        """Validate a submission document, build its campaign, queue it.

        Raises :class:`~repro.campaign.suites.SuiteError` on anything
        malformed — the front end answers 400 and nothing was queued.
        """
        suite, kwargs = submission_kwargs(doc)
        campaign = build_campaign(suite, **kwargs)
        jobs = self._coerce_jobs(doc.get("jobs"))
        timeout = self._coerce_timeout(doc.get("timeout"))
        refresh = bool(doc.get("refresh", False))
        task = self.registry.create(suite, doc, campaign, jobs, timeout,
                                    refresh)
        self.metrics.counter("serve.submissions").inc()
        self._runners.submit(self._execute, task)
        _log.info(f"accepted campaign {task.id}: suite={suite} "
                  f"jobs={jobs} ({len(campaign.jobs)} job specs)")
        return task

    @staticmethod
    def _coerce_jobs(value: object) -> int:
        if value is None:
            return 0  # daemon default, resolved in _execute
        if isinstance(value, bool) or not isinstance(value, int):
            raise SuiteError(f"jobs must be an integer, got {value!r}")
        return max(1, min(value, MAX_JOBS))

    @staticmethod
    def _coerce_timeout(value: object) -> float | None:
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SuiteError(f"timeout must be a number, got {value!r}")
        return float(value) if value > 0 else None

    # ----------------------------------------------------------- execution

    def _execute(self, task: CampaignTask) -> None:
        """Runner-thread body: one campaign end to end."""
        self.registry.mark_running(task)
        runner = CampaignRunner(
            store=self.store,
            jobs=task.jobs or self.default_jobs,
            timeout=task.timeout,
            retry=RetryPolicy(max_attempts=self.retries + 1),
            refresh=task.refresh,
            on_event=lambda ev: self.registry.append_event(task, ev),
        )
        try:
            runner.run(task.campaign)
        except Exception as exc:
            self.metrics.counter("serve.campaigns.failed").inc()
            self.registry.mark_failed(task,
                                      f"{type(exc).__name__}: {exc}")
            _log.error(f"campaign {task.id} failed: "
                       f"{type(exc).__name__}: {exc}")
            return
        self.metrics.counter("serve.campaigns.done").inc()
        self.registry.mark_done(task, runner.summary())
        _log.info(f"campaign {task.id} done: {runner.summary()}")

    # ------------------------------------------------------------- queries

    def result(self, task: CampaignTask) -> dict[str, dict]:
        """``{target_key: record}`` for a finished campaign."""
        records: dict[str, dict] = {}
        for key in task.campaign.targets or list(task.campaign.jobs):
            record = self.store.fetch(key)
            if record is None:
                raise UnknownKeyError(key)
            records[key] = record
        return records

    def record(self, key: str) -> dict:
        record = self.store.fetch(key)
        if record is None:
            raise UnknownKeyError(key)
        return record

    def rlog(self, key: str) -> bytes:
        """The content-addressed ``.rlog`` sidecar for ``key`` —
        straight from the sidecar file when the store has one, else
        rehydrated from the record itself (MemoryStore)."""
        root = self.store.root
        if root is not None:
            path = Path(root) / ResultStore.REPLAY_DIR / f"{key}.rlog"
            try:
                return path.read_bytes()
            except FileNotFoundError:
                pass
        record = self.store.fetch(key)
        if record is None or "replay_log" not in record:
            raise UnknownKeyError(key)
        text = record["replay_log"]
        return text.encode() if isinstance(text, str) else bytes(text)

    def stats(self) -> dict:
        """The ``/v1/stats`` document: store vitals, task queue shape,
        and the daemon's metrics snapshot."""
        store_stats = self.store.stats()
        by_state = self.registry.counts()
        queued = by_state.get("queued", 0)
        running = by_state.get("running", 0)
        self.metrics.gauge("serve.queue.depth").set(queued + running)
        self.metrics.gauge("serve.campaigns.running").set(running)
        if isinstance(self.store, ResultStore):
            self.store.export_metrics(self.metrics)
        return {
            "store": store_stats,
            "campaigns": by_state,
            "queue_depth": queued + running,
            "metrics": self.metrics.snapshot(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._runners.shutdown(wait=True, cancel_futures=True)
        self.store.close()
