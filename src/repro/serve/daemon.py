"""The service core behind the HTTP front end.

:class:`ServeDaemon` owns the shared pieces of profiling-as-a-service:

* **one result store** — an LSM :class:`~repro.campaign.store.
  ResultStore` opened with ``background=True`` (flushes and compactions
  run on the store's worker thread, never on a request path).  Every
  submitted campaign reads and writes the same store, so concurrent
  clients deduplicate work exactly like serial CLI runs sharing a cache
  directory.
* **a crash-safe task journal** — every accepted submission and every
  state transition (``accepted → running(lease) → publishing →
  done | failed``) is appended to a
  :class:`~repro.serve.journal.TaskJournal` under the store root before
  the in-memory registry moves.  A daemon killed at any point and
  restarted replays the journal, restores pre-crash campaign ids (so
  ``status`` keeps resolving them), expires the dead epoch's leases,
  and re-runs unfinished campaigns through the content-addressed store:
  finished jobs come back as cache hits and republication is
  idempotent, so recovered results are byte-identical to a crash-free
  run.
* **admission control** — a :class:`~repro.serve.supervise.Supervisor`
  bounds the submission queue (HTTP 429 + Retry-After when full),
  trips a per-suite circuit breaker after repeated failures (503 until
  a half-open probe succeeds), and refuses work while draining.
* **a runner-thread pool** — each accepted submission becomes a
  :class:`~repro.serve.registry.CampaignTask` executed by its own
  :class:`~repro.campaign.scheduler.CampaignRunner` on one of
  ``runners`` threads; the runner's process pool (``jobs`` workers)
  does the simulating, and its retry/pool-rebuild machinery makes a
  ``kill -9``'d worker a retried job, not a failed campaign.
* **deadline propagation** — a submission's ``deadline`` (wall-clock
  budget in seconds) caps every layer below it: the daemon stamps a
  monotonic expiry, the scheduler trims each job's timeout to the
  remaining budget, and the worker's SIGALRM enforces it in-process.
* **validation** — submissions pass through
  :func:`repro.campaign.suites.submission_kwargs`, the same validator
  the CLI uses, so a bad document is an HTTP 400 before anything runs.
* **observability** — request counters, queue-depth/lease/breaker
  gauges live in a ``repro.obs``
  :class:`~repro.obs.metrics.MetricsRegistry`; the store contributes
  its WAL/level/refcount vitals via ``export_metrics``.

Determinism note (the paper's observation boundary): a job executes in
a worker process seeded entirely from its JobSpec, whether the spec
arrived over HTTP, from the CLI, or from journal recovery — so
service-side records and their ``.rlog`` sidecars are byte-identical
to serial ones, and the smoke test and the ``repro chaos --serve``
drill assert exactly that.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..campaign.scheduler import CampaignRunner, RetryPolicy
from ..campaign.store import MemoryStore, ResultStore
from ..campaign.suites import SuiteError, build_campaign, submission_kwargs
from ..obs.metrics import MetricsRegistry
from .journal import JournalState, TaskJournal, TaskRecord
from .registry import CampaignTask, TaskRegistry
from .supervise import Supervisor

_log = logging.getLogger("repro.serve")

#: per-campaign worker-process ceiling (a submission may ask for fewer)
MAX_JOBS = max(1, (os.cpu_count() or 2))

#: registry states that occupy a queue slot
_PENDING_STATES = ("queued", "running", "publishing")


class UnknownKeyError(KeyError):
    """No record (or sidecar) under the requested content hash."""


class ServeDaemon:
    """Validation, execution and store access for the serve endpoints."""

    def __init__(
        self,
        store_root: str | Path | None = None,
        *,
        store: ResultStore | MemoryStore | None = None,
        runners: int = 2,
        default_jobs: int = 1,
        retries: int = 2,
        max_queue: int = 64,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        drain_timeout: float = 30.0,
        journal_path: str | Path | None = None,
        journal_crash_hook: Callable[[str], None] | None = None,
    ) -> None:
        if store is not None:
            self.store = store
        else:
            root = (store_root or os.environ.get("REPRO_CACHE_DIR")
                    or ".repro-cache")
            self.store = ResultStore(root, background=True)
        self.registry = TaskRegistry()
        self.metrics = MetricsRegistry()
        self.default_jobs = max(1, default_jobs)
        self.retries = retries
        self.drain_timeout = drain_timeout
        # journal lives beside the store unless the store is in-memory
        # (then there is nothing durable to recover into anyway)
        if journal_path is None and self.store.root is not None:
            journal_path = Path(self.store.root) / TaskJournal.NAME
        self.journal = (TaskJournal(journal_path,
                                    crash_hook=journal_crash_hook)
                        if journal_path is not None else None)
        self.supervisor = Supervisor(
            self.journal, max_queue=max_queue,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown)
        #: chaos knob: the HTTP layer hard-resets this many event
        #: streams mid-flight (exercises client-side stream resume)
        self.stream_resets_remaining = 0
        self._runners = ThreadPoolExecutor(
            max_workers=max(1, runners),
            thread_name_prefix="repro-serve-runner")
        #: serializes the admission depth-check + registry.create pair
        self._admit_mu = threading.Lock()
        self._closed = False
        self._recover()

    # ------------------------------------------------------------ recovery

    def _recover(self) -> None:
        """Replay the journal into the registry and resume unfinished
        campaigns.  Finished tasks are restored terminal (``status``
        still resolves their ids); unfinished ones are re-queued under
        a bumped lease epoch."""
        state = self.supervisor.recover()
        for task_id in state.order:
            rec = state.records[task_id]
            try:
                task = self._restore(rec)
            except SuiteError as exc:  # journaled doc no longer valid
                _log.error(f"recovery dropped {task_id}: {exc}")
                continue
            if task.finished:
                continue
            self.metrics.counter("serve.recovered").inc()
            self._runners.submit(self._execute, task)
        if state.unfinished:
            _log.info(
                f"journal recovery: {len(state.order)} task(s), "
                f"{len(state.unfinished)} resumed, "
                f"{state.stale_leases} stale lease(s) expired, "
                f"epoch now {self.supervisor.epoch}")

    def _restore(self, rec: TaskRecord) -> CampaignTask:
        """Rebuild one journaled task; campaign construction is
        deterministic from the submission document."""
        doc = dict(rec.doc)
        suite, kwargs = submission_kwargs(doc)
        campaign = build_campaign(suite, **kwargs)
        task = self.registry.create(
            suite, doc, campaign,
            self._coerce_jobs(doc.get("jobs")),
            self._coerce_timeout(doc.get("timeout")),
            bool(doc.get("refresh", False)),
            deadline=rec.deadline, task_id=rec.id,
            submitted_at=rec.submitted_at,
            recovered=not rec.finished)
        if rec.state == "done":
            task.state = "done"
            task.summary = rec.summary
            task.finished_at = rec.finished_at
        elif rec.state == "failed":
            task.state = "failed"
            task.error = rec.error
            task.finished_at = rec.finished_at
        elif rec.deadline is not None:
            # the original start-of-budget is unrecoverable across a
            # crash (monotonic clocks don't survive it): re-arm in full
            task.deadline_at = time.monotonic() + rec.deadline
        return task

    # ---------------------------------------------------------- submission

    def queue_depth(self) -> int:
        counts = self.registry.counts()
        return sum(counts.get(s, 0) for s in _PENDING_STATES)

    def submit(self, doc: dict) -> CampaignTask:
        """Validate a submission document, build its campaign, journal
        the acceptance, queue it.

        Raises :class:`~repro.campaign.suites.SuiteError` on anything
        malformed (HTTP 400) or a :class:`~repro.serve.supervise.Busy`
        subtype when admission is refused (HTTP 429/503 + Retry-After)
        — either way nothing was queued.  Once this returns, the
        submission is durable: it survives any subsequent crash.
        """
        suite, kwargs = submission_kwargs(doc)
        campaign = build_campaign(suite, **kwargs)
        jobs = self._coerce_jobs(doc.get("jobs"))
        timeout = self._coerce_timeout(doc.get("timeout"))
        refresh = bool(doc.get("refresh", False))
        deadline = self._coerce_deadline(doc.get("deadline"))
        # one lock around depth check + create, so N concurrent
        # submitters can't all read depth == max-1 and overshoot
        with self._admit_mu:
            self.supervisor.admit(suite, self.queue_depth())
            task = self.registry.create(suite, doc, campaign, jobs,
                                        timeout, refresh,
                                        deadline=deadline)
        if deadline is not None:
            task.deadline_at = time.monotonic() + deadline
        try:
            self.supervisor.accept(task, doc, deadline)  # the ack point
        except Exception:
            # journal append failed: never acked, so it must not stay
            # queued (a CrashPoint is BaseException — a simulated hard
            # kill leaves memory as-is, like the real thing)
            self.registry.remove(task.id)
            raise
        self.metrics.counter("serve.submissions").inc()
        self._runners.submit(self._execute, task)
        _log.info(f"accepted campaign {task.id}: suite={suite} "
                  f"jobs={jobs} ({len(campaign.jobs)} job specs)")
        return task

    @staticmethod
    def _coerce_jobs(value: object) -> int:
        if value is None:
            return 0  # daemon default, resolved in _execute
        if isinstance(value, bool) or not isinstance(value, int):
            raise SuiteError(f"jobs must be an integer, got {value!r}")
        return max(1, min(value, MAX_JOBS))

    @staticmethod
    def _coerce_timeout(value: object) -> float | None:
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SuiteError(f"timeout must be a number, got {value!r}")
        return float(value) if value > 0 else None

    @staticmethod
    def _coerce_deadline(value: object) -> float | None:
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SuiteError(
                f"deadline must be a number of seconds, got {value!r}")
        return float(value) if value > 0 else None

    # ----------------------------------------------------------- execution

    def _execute(self, task: CampaignTask) -> None:
        """Runner-thread body: one campaign end to end, every state
        transition journaled before the registry sees it."""
        if (task.deadline_at is not None
                and time.monotonic() >= task.deadline_at):
            self.metrics.counter("serve.campaigns.failed").inc()
            self.supervisor.fail(task, self.registry,
                                 "deadline exceeded before start")
            return
        self.supervisor.lease(task, self.registry)
        runner = CampaignRunner(
            store=self.store,
            jobs=task.jobs or self.default_jobs,
            timeout=task.timeout,
            retry=RetryPolicy(max_attempts=self.retries + 1),
            refresh=task.refresh,
            deadline=task.deadline_at,
            on_event=lambda ev: self.registry.append_event(task, ev),
        )
        try:
            runner.run(task.campaign)
        except Exception as exc:
            self.metrics.counter("serve.campaigns.failed").inc()
            self.supervisor.fail(task, self.registry,
                                 f"{type(exc).__name__}: {exc}")
            _log.error(f"campaign {task.id} failed: "
                       f"{type(exc).__name__}: {exc}")
            return
        # results are WAL-durable in the store; the journal just
        # hasn't said "done" yet — a crash in this window re-runs the
        # campaign as pure cache hits
        self.supervisor.publishing(task)
        self.metrics.counter("serve.campaigns.done").inc()
        self.supervisor.finish(task, self.registry, runner.summary())
        _log.info(f"campaign {task.id} done: {runner.summary()}")

    # --------------------------------------------------------------- drain

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admissions, wait for in-flight campaigns, snapshot the
        journal.  Returns True when the queue fully drained in time."""
        clean = self.supervisor.drain(
            self.queue_depth, self._journal_state,
            timeout if timeout is not None else self.drain_timeout)
        _log.info("drain complete" if clean
                  else "drain timed out with work in flight")
        return clean

    @property
    def drained(self) -> bool:
        return self.supervisor.drained

    def _journal_state(self) -> JournalState:
        """The registry folded back into journal shape (for snapshot)."""
        state = JournalState(epoch=self.supervisor.epoch)
        for task in self.registry.list():
            rec = TaskRecord(
                id=task.id, suite=task.suite, doc=task.doc,
                state="accepted" if task.state == "queued"
                else task.state,
                epoch=self.supervisor.epoch, pid=os.getpid(),
                error=task.error, summary=task.summary,
                submitted_at=task.submitted_at,
                finished_at=task.finished_at,
                deadline=task.deadline)
            state.records[task.id] = rec
            state.order.append(task.id)
        return state

    # ------------------------------------------------------------- queries

    def result(self, task: CampaignTask) -> dict[str, dict]:
        """``{target_key: record}`` for a finished campaign."""
        records: dict[str, dict] = {}
        for key in task.campaign.targets or list(task.campaign.jobs):
            record = self.store.fetch(key)
            if record is None:
                raise UnknownKeyError(key)
            records[key] = record
        return records

    def record(self, key: str) -> dict:
        record = self.store.fetch(key)
        if record is None:
            raise UnknownKeyError(key)
        return record

    def rlog(self, key: str) -> bytes:
        """The content-addressed ``.rlog`` sidecar for ``key`` —
        straight from the sidecar file when the store has one, else
        rehydrated from the record itself (MemoryStore)."""
        root = self.store.root
        if root is not None:
            path = Path(root) / ResultStore.REPLAY_DIR / f"{key}.rlog"
            try:
                return path.read_bytes()
            except FileNotFoundError:
                pass
        record = self.store.fetch(key)
        if record is None or "replay_log" not in record:
            raise UnknownKeyError(key)
        text = record["replay_log"]
        return text.encode() if isinstance(text, str) else bytes(text)

    def stats(self) -> dict:
        """The ``/v1/stats`` document: store vitals, task queue shape,
        admission/breaker/lease state, and the metrics snapshot."""
        store_stats = self.store.stats()
        by_state = self.registry.counts()
        running = by_state.get("running", 0)
        publishing = by_state.get("publishing", 0)
        depth = by_state.get("queued", 0) + running + publishing
        admission = self.supervisor.stats(depth)
        self.metrics.gauge("serve.queue.depth").set(depth)
        self.metrics.gauge("serve.queue.limit").set(
            self.supervisor.max_queue)
        self.metrics.gauge("serve.campaigns.running").set(running)
        self.metrics.gauge("serve.leases.active").set(
            running + publishing)
        self.metrics.gauge("serve.recovered.tasks").set(
            self.supervisor.recovered_tasks)
        self.metrics.gauge("serve.breakers.open").set(
            sum(1 for s in admission["breakers"].values()
                if s != "closed"))
        self.metrics.gauge("serve.draining").set(
            int(self.supervisor.draining))
        if isinstance(self.store, ResultStore):
            self.store.export_metrics(self.metrics)
        return {
            "store": store_stats,
            "campaigns": by_state,
            "queue_depth": depth,
            "admission": admission,
            "metrics": self.metrics.snapshot(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._runners.shutdown(wait=True, cancel_futures=True)
        if self.journal is not None:
            # clean shutdown: compact the journal so the next start
            # replays one entry per task (idempotent — snapshotting an
            # unchanged registry rewrites the same bytes)
            self.journal.snapshot(self._journal_state())
            self.journal.close()
        self.store.close()
