"""Deterministic discrete-event multicore execution substrate."""

from .config import CACHELINE, PAGE_SIZE, MachineConfig, line_of, page_of
from .engine import Program, RunResult, Simulator
from .errors import AbortSignal, SimDeadlock, SimError
from .memory import DATA_BASE, WORD, Memory
from .program import (
    Barrier,
    FunctionRegistry,
    REGISTRY,
    SimFunction,
    describe_addr,
    simfn,
)
from .thread import THREAD_ROOT, ThreadContext

__all__ = [
    "MachineConfig",
    "CACHELINE",
    "PAGE_SIZE",
    "line_of",
    "page_of",
    "Simulator",
    "RunResult",
    "Program",
    "SimError",
    "SimDeadlock",
    "AbortSignal",
    "Memory",
    "DATA_BASE",
    "WORD",
    "simfn",
    "SimFunction",
    "FunctionRegistry",
    "REGISTRY",
    "describe_addr",
    "Barrier",
    "ThreadContext",
    "THREAD_ROOT",
]
