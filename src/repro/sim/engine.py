"""The discrete-event multicore execution engine.

Scheduling: the runnable thread with the smallest local clock executes one
instruction (deterministic tie-break on thread id), so cross-thread
interleavings respect simulated time — which is what makes conflict
windows, lock convoys and starvation behave like they do on silicon while
every run stays exactly reproducible.

Per step the engine:

1. retires a doomed transaction (rollback cost, RTM_ABORTED count,
   possibly an ``rtm_aborted`` PMU sample) and delivers
   :class:`~repro.sim.errors.AbortSignal` into the thread, or resumes the
   thread's generator with the previous instruction's result;
2. interprets the yielded instruction: costs, memory effects, HTM
   read/write-set tracking, conflict arbitration, page faults, barriers;
3. drives the PMU: counts events, and on counter overflow delivers a
   sampling interrupt — which **aborts an in-flight transaction** before
   the profiler's handler observes the machine (the paper's Challenge I).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

from ..htm.status import ABORT_INTERRUPT, ABORT_SYNC, AbortStatus
# tsx / runtime are referenced through their modules (attribute lookup is
# deferred to Simulator construction) so that importing any subpackage
# first — core, htm, rtm or sim — resolves without a circular-import trap.
from ..htm import tsx as _tsx
from ..faults.inject import FaultInjector
from ..obs.hooks import Observability
from ..pmu.counters import PmuBank
from ..pmu.events import CYCLES, MEM_LOADS, MEM_STORES, RTM_ABORTED, RTM_COMMIT
from ..pmu.sampling import Sample
from ..rtm import runtime as _rtm_runtime
from .config import MachineConfig, line_of
from .errors import AbortSignal, SimDeadlock, SimError
from .memory import Memory
from .program import (
    OP_BARRIER,
    OP_CAS,
    OP_COMPUTE,
    OP_LOAD,
    OP_NOP,
    OP_STORE,
    OP_SYSCALL,
    Barrier,
    SimFunction,
)
from .thread import ThreadContext

#: a thread program: (function, positional args, keyword args)
Program = tuple[SimFunction, tuple, dict]


@dataclass
class RunResult:
    """Everything a harness needs after a run."""

    #: wall-clock analogue: the largest per-thread cycle count
    makespan: int
    #: total work W: cycles summed over threads (Equation 1's left side)
    work: int
    per_thread_cycles: list[int]
    #: ground-truth HTM statistics (engine-side, not profiler-visible)
    begins: int
    commits: int
    aborts: int
    aborts_by_reason: dict[str, int]
    #: exact PMU event totals (empty when sampling was off)
    pmu_totals: dict[str, int] = field(default_factory=dict)
    samples_delivered: int = 0
    #: snapshot of the run's metrics registry (empty unless
    #: ``MachineConfig.metrics_enabled``); see :mod:`repro.obs.metrics`
    metrics: dict[str, dict] = field(default_factory=dict)
    #: ground-truth fault-injection counts (empty unless a non-zero
    #: ``MachineConfig.fault_plan`` was active); see :mod:`repro.faults`
    faults: dict[str, int] = field(default_factory=dict)

    @property
    def abort_commit_ratio(self) -> float:
        if self.commits:
            return self.aborts / self.commits
        # no commits: only an all-aborted run is infinite; a run that
        # never transacted (or committed nothing because it never began)
        # has a ratio of zero, not infinity
        return float("inf") if self.aborts else 0.0


class Simulator:
    """One simulated machine executing one multithreaded program."""

    def __init__(
        self,
        config: MachineConfig,
        programs: Sequence[Program] | None = None,
        seed: int = 0,
        profiler: Any = None,
        n_threads: int | None = None,
        obs: Observability | None = None,
        recorder: Any = None,
    ) -> None:
        if programs is None and n_threads is None:
            raise SimError("give either programs or n_threads")
        count = len(programs) if programs is not None else n_threads
        if not count:
            raise SimError("need at least one thread program")
        self.config = config
        self.seed = seed
        self.memory = Memory(track_page_faults=config.page_faults)
        #: observability bundle (tracer/metrics); None when disabled so
        #: the hot paths pay only a pointer test
        self.obs = obs if obs is not None else Observability.from_config(config)
        self.htm = _tsx.TsxEngine(config)
        self.htm.obs = self.obs
        self.threads: list[ThreadContext] = [
            ThreadContext(tid, self, config.lbr_size) for tid in range(count)
        ]
        self.rtm = _rtm_runtime.RtmRuntime(self)
        # tag the fallback-lock line for the engine's ground-truth
        # conflict-edge bookkeeping (subscription aborts vs data aborts)
        self.htm.lock_line = line_of(self.rtm.lock.addr)
        self.profiler = profiler
        #: deterministic fault injection (None when the plan is absent or
        #: all-zero, so the fault-free engine pays only a pointer test)
        self.faults = FaultInjector.from_config(config, count, obs=self.obs)
        self.pmu: PmuBank | None = None
        if profiler is not None:
            self.pmu = PmuBank(count, config.sample_periods, seed=seed)
            for t in self.threads:
                t.counters = self.pmu.banks[t.tid]
        self.samples_delivered = 0
        #: observation recorder (:mod:`repro.replay`) — the dual of the
        #: fault injector on the same boundary; None costs a pointer test
        self.recorder = recorder if profiler is not None else None
        self._programs: list[Program] = list(programs) if programs else []
        self._started = False
        self._heap: list[tuple[int, int]] = []
        for tid, t in enumerate(self.threads):
            t.rng = random.Random((seed + 1) * 1_000_003 + tid)
        if profiler is not None and hasattr(profiler, "attach"):
            profiler.attach(self)
        if self.recorder is not None:
            self.recorder.attach(self)

    def set_programs(self, programs: Sequence[Program]) -> None:
        """Install thread programs (one per thread) before :meth:`run`.

        Separate from construction so workloads can allocate their shared
        data in ``sim.memory`` first.
        """
        if len(programs) != len(self.threads):
            raise SimError(
                f"{len(programs)} programs for {len(self.threads)} threads"
            )
        self._programs = list(programs)

    # ------------------------------------------------------------------ run

    def run(self, max_steps: int = 500_000_000) -> RunResult:
        """Execute all thread programs to completion."""
        if self._started:
            raise SimError("a Simulator instance runs once; build a new one")
        if not self._programs:
            raise SimError("no programs installed; call set_programs() first")
        self._started = True
        setup = (self.config.profiler_setup_cost
                 if self.profiler is not None else 0)
        for t, (fn, args, kwargs) in zip(self.threads, self._programs, strict=True):
            t.start(fn, args, kwargs)
            if setup:
                # fixed profiling setup (preload + PMU programming)
                t.clock += setup
            if self.obs is not None:
                self.obs.on_thread_start(t.tid, t.clock)
        heap: list[tuple[int, int]] = [(0, t.tid) for t in self.threads]
        heapq.heapify(heap)
        self._heap = heap
        step = self._step
        push = heapq.heappush
        pop = heapq.heappop
        steps = 0
        while heap:
            _, tid = pop(heap)
            t = self.threads[tid]
            if t.done:
                continue
            step(t)
            steps += 1
            if steps > max_steps:
                raise SimError(f"exceeded max_steps={max_steps}")
            if not t.done and not t.blocked:
                push(heap, (t.clock, tid))
        if any(not t.done for t in self.threads):
            stuck = [t.tid for t in self.threads if not t.done]
            raise SimDeadlock(f"threads {stuck} blocked forever")
        if self.obs is not None:
            self.obs.on_run_end(steps)
        return self._result()

    def _result(self) -> RunResult:
        clocks = [t.clock for t in self.threads]
        totals: dict[str, int] = {}
        if self.pmu is not None:
            for ev in self.config.sample_periods:
                totals[ev] = self.pmu.total(ev)
        metrics: dict[str, dict] = {}
        if self.obs is not None and self.obs.metrics is not None:
            metrics = self.obs.metrics.snapshot()
        return RunResult(
            makespan=max(clocks),
            work=sum(clocks),
            per_thread_cycles=clocks,
            begins=self.htm.total_begins,
            commits=self.htm.total_commits,
            aborts=self.htm.total_aborts,
            aborts_by_reason=dict(self.htm.aborts_by_reason),
            pmu_totals=totals,
            samples_delivered=self.samples_delivered,
            metrics=metrics,
            faults=self.faults.summary() if self.faults is not None else {},
        )

    # ----------------------------------------------------------------- step

    def _step(self, t: ThreadContext) -> None:
        cfg = self.config
        htm = self.htm
        memory = self.memory
        tid = t.tid

        # 1. retire a doomed transaction, if any
        txn = htm.active.get(tid)
        throw_sig: AbortSignal | None = None
        if txn is not None and txn.doomed is not None:
            status = htm.rollback(t)
            t.clock += cfg.abort_rollback_cost
            weight = t.clock - txn.start_cycle
            t.last_abort_weight = weight
            t.last_abort_eax = status.eax
            if self.obs is not None:
                self.obs.on_txn_abort(tid, t.clock, txn, status.reason,
                                      weight)
            self._count(t, RTM_ABORTED, 1)
            throw_sig = AbortSignal(status)

        # 2. resume the generator
        try:
            if throw_sig is not None:
                op = t.gen.throw(throw_sig)
            else:
                op = t.gen.send(t.last_value)
        except StopIteration:
            t.done = True
            if self.obs is not None:
                self.obs.on_thread_end(tid, t.clock)
            return

        # 3. interpret the instruction
        kind = op[0]
        result = None
        if kind == OP_COMPUTE:
            cost = op[1]
        elif kind == OP_LOAD:
            addr = op[1]
            cost = cfg.load_cost
            htm.on_access(tid, addr, False)
            txn = htm.active.get(tid)
            if txn is not None:
                if txn.doomed is not None:
                    # squashed: the abort rewinds control flow next step
                    result = 0
                elif (memory.track_page_faults
                        and memory.touch_would_fault(addr)):
                    htm.doom(txn, AbortStatus(ABORT_SYNC, detail="pagefault"))
                    result = 0
                else:
                    htm.track_read(txn, addr)
                    result = htm.read_through(txn, addr, memory.read)
            else:
                if memory.touch(addr):
                    cost += cfg.pagefault_cost
                result = memory.read(addr)
            self._count_mem(t, MEM_LOADS, addr, False)
        elif kind == OP_STORE:
            addr = op[1]
            cost = cfg.store_cost
            htm.on_access(tid, addr, True)
            txn = htm.active.get(tid)
            if txn is not None:
                if txn.doomed is not None:
                    pass  # squashed
                elif (memory.track_page_faults
                        and memory.touch_would_fault(addr)):
                    htm.doom(txn, AbortStatus(ABORT_SYNC, detail="pagefault"))
                else:
                    htm.track_write(txn, addr, op[2])
            else:
                if memory.touch(addr):
                    cost += cfg.pagefault_cost
                memory.write(addr, op[2])
            self._count_mem(t, MEM_STORES, addr, True)
        elif kind == OP_CAS:
            addr = op[1]
            cost = cfg.cas_cost
            htm.on_access(tid, addr, True)
            txn = htm.active.get(tid)
            if txn is not None:
                if txn.doomed is not None:
                    result = False  # squashed
                elif (memory.track_page_faults
                        and memory.touch_would_fault(addr)):
                    htm.doom(txn, AbortStatus(ABORT_SYNC, detail="pagefault"))
                    result = False
                else:
                    htm.track_read(txn, addr)
                    cur = htm.read_through(txn, addr, memory.read)
                    if cur == op[2]:
                        htm.track_write(txn, addr, op[3])
                        result = True
                    else:
                        result = False
            else:
                if memory.touch(addr):
                    cost += cfg.pagefault_cost
                cur = memory.read(addr)
                if cur == op[2]:
                    memory.write(addr, op[3])
                    result = True
                else:
                    result = False
            self._count_mem(t, MEM_LOADS, addr, False)
            if result:
                self._count_mem(t, MEM_STORES, addr, True)
        elif kind == OP_SYSCALL:
            txn = htm.active.get(tid)
            speculative = txn is not None and txn.doomed is None
            if speculative:
                # unfriendly instruction: synchronous abort, syscall does
                # not execute speculatively
                htm.doom(txn, AbortStatus(ABORT_SYNC, detail=op[1]))
                cost = 20
            else:
                cost = cfg.syscall_cost + (op[2] or 0)
            if self.obs is not None:
                self.obs.on_syscall(tid, t.clock, op[1], speculative)
        elif kind == OP_BARRIER:
            self._arrive_barrier(t, op[1])
            return
        elif kind == OP_NOP:
            cost = 1
        else:  # pragma: no cover - op protocol violation
            raise SimError(f"unknown op {op!r} from thread {tid}")

        # 4. account time and drive the PMU
        if t.extra_cost:
            cost += t.extra_cost
            t.extra_cost = 0
        jitter = cfg.cost_jitter
        if jitter:
            cost += t.rng.randrange(jitter + 1)
        t.clock += cost
        t.last_value = result
        self._count(t, CYCLES, cost)
        if self.faults is not None and self.faults.storms_enabled:
            self._storm_tick(t, cost)

    # -------------------------------------------------------------- barriers

    def _arrive_barrier(self, t: ThreadContext, bar: Barrier) -> None:
        if self.htm.active.get(t.tid) is not None:
            # a barrier cannot complete speculatively
            txn = self.htm.active[t.tid]
            if txn.doomed is None:
                self.htm.doom(txn, AbortStatus(ABORT_SYNC, detail="barrier"))
            t.clock += 1
            t.last_value = None
            return
        bar._waiting.append((t.tid, t.clock))
        t.last_value = None
        if len(bar._waiting) < bar.parties:
            t.blocked = True
            return
        # last arrival releases the cohort at its own clock
        release = max(c for _, c in bar._waiting) + 20
        waiting = bar._waiting
        bar._waiting = []
        bar.generation += 1
        for tid_, arrived in waiting:
            th = self.threads[tid_]
            spun = release - arrived
            th.clock = release
            if self.obs is not None:
                self.obs.on_barrier_wait(tid_, arrived, release,
                                         bar.generation)
            # barrier waits are spin loops: the burnt cycles are PMU-visible
            self._count(th, CYCLES, spun)
            if th.blocked:
                th.blocked = False
                if tid_ != t.tid:
                    # re-enter the run queue (the current thread is pushed
                    # by the main loop)
                    heapq.heappush(self._heap, (th.clock, tid_))

    # ---------------------------------------------------------------- faults

    def _storm_tick(self, t: ThreadContext, elapsed: int) -> None:
        """Timer-interrupt storm (:mod:`repro.faults`): every interrupt
        aborts an in-flight transaction — an *async* abort with no cause
        bits beyond RETRY, exactly like the profiler's own sampling
        interrupts — and burns handler cycles."""
        due = self.faults.storm_due(t.tid, elapsed)
        if not due:
            return
        storm_cost = self.faults.plan.storm_cost
        for _ in range(due):
            txn = self.htm.active.get(t.tid)
            if txn is not None and txn.doomed is None:
                self.htm.doom(txn, AbortStatus(ABORT_INTERRUPT,
                                               detail="storm"))
            t.clock += storm_cost

    # ------------------------------------------------------------------- PMU

    def note_commit(self, ctx: ThreadContext,
                    cs: _rtm_runtime.CriticalSection) -> None:
        """Called by the RTM runtime when a transaction commits."""
        self._count(ctx, RTM_COMMIT, 1)

    def _count(self, t: ThreadContext, event: str, n: int) -> None:
        bank = t.counters
        if bank is None:
            return
        fired = bank.add(event, n)
        while fired > 0:
            fired -= 1
            self._deliver_sample(t, event, None, False)

    def _count_mem(self, t: ThreadContext, event: str, addr: int,
                   is_store: bool) -> None:
        bank = t.counters
        if bank is None:
            return
        fired = bank.add(event, 1)
        while fired > 0:
            fired -= 1
            self._deliver_sample(t, event, addr, is_store)

    def _deliver_sample(self, t: ThreadContext, event: str,
                        eff_addr: int | None, is_store: bool) -> None:
        """A PMU interrupt: abort any in-flight transaction, then let the
        registered profiler observe the machine."""
        cfg = self.config
        txn = self.htm.active.get(t.tid)
        in_tsx = txn is not None and txn.doomed is None
        aborted_now = False
        if in_tsx and cfg.pmu_aborts_txn:
            self.htm.doom(txn, AbortStatus(ABORT_INTERRUPT))
            aborted_now = True
        t.lbr.push_sample(t.cur_ip, aborted_now, in_tsx)
        sample = Sample(
            event=event,
            tid=t.tid,
            ts=t.clock,
            ip=t.cur_ip,
            ustack=t.unwind(),
            resume_ip=t.arch_ip(),
            lbr=t.lbr.snapshot(),
            eff_addr=eff_addr,
            is_store=is_store,
            weight=t.last_abort_weight if event == RTM_ABORTED else 0,
            abort_eax=t.last_abort_eax if event == RTM_ABORTED else 0,
        )
        if self.obs is not None:
            self.obs.on_sample(t.tid, t.clock, sample.trace_fields())
        t.clock += cfg.handler_cost
        self.samples_delivered += 1
        if self.faults is None:
            if self.recorder is not None:
                self.recorder.record(sample)
            self.profiler.on_sample(sample)
            return
        # the observation boundary: the interrupt's machine effects
        # (abort, handler cost) already happened above; only the record
        # the profiler sees is filtered/garbled/duplicated here — and the
        # recorder captures the post-injection stream, so a faulted run
        # replays without the injector in the loop
        for observed in self.faults.observe(t.tid, sample):
            if self.recorder is not None:
                self.recorder.record(observed)
            self.profiler.on_sample(observed)
