"""Per-thread execution context: instruction API, call stack, LBR.

Workload code runs as generators and issues instructions through the
methods here (``yield from ctx.load(addr)`` etc.).  Instruction pointers
are synthesized from the *real Python source line* of the call site
(``fn.base + lineno``), which gives every syntactic operation a stable
address across loop iterations — the property binary code has and the
calling-context tree needs.  Helper generators not invoked through
:meth:`ThreadContext.call` behave like inlined functions in an ``-O3``
binary: their lines attribute to the innermost *visible* frame.
"""

from __future__ import annotations

import sys
from collections.abc import Callable, Generator, Iterator
from typing import Any, TYPE_CHECKING

from ..pmu.counters import CounterBank
from ..pmu.lbr import Lbr
from .errors import AbortSignal
from .program import (
    OP_BARRIER,
    OP_CAS,
    OP_COMPUTE,
    OP_LOAD,
    OP_NOP,
    OP_STORE,
    OP_SYSCALL,
    Barrier,
    SimFunction,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..htm.tsx import Transaction
    from .engine import Simulator

#: synthetic call-site address of the thread root frame
THREAD_ROOT = 0

#: a stack frame: [function, current_line, callsite_addr]
Frame = list[Any]
#: an instruction generator: yields op tuples, receives engine results
OpGen = Generator[tuple[Any, ...], Any, Any]
#: immutable snapshot of one frame
FrameSnap = tuple[SimFunction, int, int]


class ThreadContext:
    """One simulated hardware thread.

    The engine owns scheduling (``clock``) and sample delivery; workload
    and runtime-library code uses the ``yield from``-able instruction
    methods.  The call ``stack`` is *architectural* state: it is
    snapshotted at transaction begin and restored on abort, so a
    post-abort unwinder can only ever see the path to the transaction —
    never inside it (the paper's Challenge IV).
    """

    __slots__ = (
        "tid",
        "sim",
        "rng",
        "clock",
        "stack",
        "cur_ip",
        "lbr",
        "state_word",
        "gen",
        "done",
        "blocked",
        "last_value",
        "pending_abort",
        "last_abort_weight",
        "last_abort_eax",
        "counters",
        "extra_cost",
    )

    def __init__(self, tid: int, sim: "Simulator", lbr_size: int) -> None:
        self.tid = tid
        self.sim = sim
        self.rng: Any = None  # random.Random, seeded by the simulator
        self.clock = 0
        self.stack: list[Frame] = []
        self.cur_ip = THREAD_ROOT
        self.lbr = Lbr(lbr_size)
        self.state_word = 0
        self.gen: Iterator | None = None
        self.done = False
        self.blocked = False
        self.last_value: Any = None
        self.pending_abort: AbortSignal | None = None  # delivered at next step
        self.last_abort_weight = 0
        self.last_abort_eax = 0
        self.counters: CounterBank | None = None  # attached when sampling is on
        self.extra_cost = 0  # cycles injected by runtime hooks, folded in
        # by the engine at the end of the current step

    # ------------------------------------------------------------ stack ops

    def start(self, fn: SimFunction, args: tuple, kwargs: dict) -> None:
        """Install the thread's main function and create its generator."""
        self.stack = [[fn, 0, THREAD_ROOT]]
        self.gen = fn.func(self, *args, **kwargs)

    def snapshot_stack(self) -> tuple[FrameSnap, ...]:
        return tuple((f[0], f[1], f[2]) for f in self.stack)

    def restore_stack(self, snap: tuple[FrameSnap, ...]) -> None:
        self.stack = [[fn, line, cs] for fn, line, cs in snap]

    def unwind(self) -> tuple[tuple[int, int], ...]:
        """Architectural call path: ``(callsite, callee_base)`` per frame,
        outermost first — exactly what a signal-context unwinder yields."""
        return tuple((f[2], f[0].base) for f in self.stack)

    @property
    def in_txn(self) -> bool:
        return self.sim.htm.active.get(self.tid) is not None

    @property
    def txn(self) -> "Transaction | None":
        return self.sim.htm.active.get(self.tid)

    def _ip(self) -> int:
        """IP of the instruction being issued: frame base + caller's line."""
        line = sys._getframe(2).f_lineno
        frame = self.stack[-1]
        frame[1] = line
        ip = frame[0].base + line
        self.cur_ip = ip
        return ip

    # ---------------------------------------------------------- instructions

    def compute(self, cycles: int) -> OpGen:
        """Burn ``cycles`` of pure computation."""
        self._ip()
        yield (OP_COMPUTE, cycles)

    def load(self, addr: int) -> OpGen:
        """Load the 8-byte word at ``addr``; returns its value."""
        self._ip()
        value = yield (OP_LOAD, addr)
        return value

    def store(self, addr: int, value: int) -> OpGen:
        """Store ``value`` to the 8-byte word at ``addr``."""
        self._ip()
        yield (OP_STORE, addr, value)

    def cas(self, addr: int, expected: int, new: int) -> OpGen:
        """Atomic compare-and-swap; returns True on success."""
        self._ip()
        ok = yield (OP_CAS, addr, expected, new)
        return ok

    def syscall(self, kind: str = "write", cycles: int = 0) -> OpGen:
        """An HTM-unfriendly operation (system call); aborts transactions."""
        self._ip()
        yield (OP_SYSCALL, kind, cycles)

    def barrier(self, barrier: Barrier) -> OpGen:
        """Block until all parties arrive."""
        self._ip()
        yield (OP_BARRIER, barrier)

    def nop(self) -> OpGen:
        self._ip()
        yield (OP_NOP,)

    # ----------------------------------------------------------------- calls

    def call(self, fn: SimFunction, *args: Any, **kwargs: Any) -> OpGen:
        """Invoke a simulated function: visible to the stack and the LBR."""
        line = sys._getframe(1).f_lineno
        frame = self.stack[-1]
        frame[1] = line
        callsite = frame[0].base + line
        result = yield from self._call_at(callsite, fn, args, kwargs)
        return result

    def _call_at(self, callsite: int, fn: SimFunction, args: tuple,
                 kwargs: dict) -> OpGen:
        self.cur_ip = callsite
        self.lbr.push_call(callsite, fn.base, self.in_txn)
        self.stack.append([fn, 0, callsite])
        result = yield from fn.func(self, *args, **kwargs)
        # normal return only: on abort, the snapshot restore repairs the
        # stack while AbortSignal propagates through this frame.
        top = self.stack[-1]
        ret_ip = top[0].base + top[1]
        self.stack.pop()
        self.lbr.push_ret(ret_ip, callsite + 1, self.in_txn)
        return result

    # ------------------------------------------------------ critical sections

    def atomic(self, body: Callable[[], Any],
               name: str | None = None) -> OpGen:
        """Run ``body`` as a critical section (TM_BEGIN ... TM_END).

        ``body`` is a callable producing a fresh op generator per attempt;
        it re-executes transactionally, or under the global lock after
        repeated aborts.  Equivalent to the paper's TM_BEGIN/TM_END pair.
        The runtime is entered through a visible ``tm_begin`` frame, so
        profiles show ``caller -> tm_begin -> ...`` exactly like the
        paper's Figure 9.
        """
        line = sys._getframe(1).f_lineno
        frame = self.stack[-1]
        frame[1] = line
        callsite = frame[0].base + line
        result = yield from self._call_at(
            callsite, self.sim.rtm.tm_begin_fn, (body, name, callsite), {}
        )
        return result

    def arch_ip(self) -> int:
        """The architectural resume IP (what a signal context reports)."""
        top = self.stack[-1]
        return top[0].base + top[1]

    # --------------------------------------------------------------- helpers

    def add(self, addr: int, delta: int = 1) -> OpGen:
        """Read-modify-write a word (two memory ops, non-atomic)."""
        value = yield from self.load(addr)
        yield from self.store(addr, value + delta)
        return value + delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<thread {self.tid} clock={self.clock} done={self.done}>"
