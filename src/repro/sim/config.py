"""Machine and runtime configuration for the simulated platform.

The defaults model a scaled-down Intel Broadwell-class core (the paper's
testbed is a 14-core Xeon E7-4830 v4): cacheline-granular conflict
detection, an L1-bounded transactional write set, a larger read-set budget,
a 16-entry LBR, and PMU sampling whose interrupts abort in-flight
transactions.

All costs are in simulated CPU cycles.  Absolute values are not meant to
match silicon; what matters for the reproduction is the *relative* cost
structure (transaction begin/end overhead vs. body work vs. abort penalty
vs. sampling-handler cost), which drives every decomposition the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Default simulated thread count: the paper's testbed is a 14-core
#: Xeon E7-4830 v4, and every harness defaults to one thread per core.
DEFAULT_THREADS = 14

#: Bytes per cache line; TSX detects conflicts at this granularity.
CACHELINE = 64

#: Bytes per page; first-touch page faults are synchronous abort causes.
PAGE_SIZE = 4096


@dataclass
class MachineConfig:
    """Static description of the simulated machine and RTM runtime.

    Instances are immutable by convention; use :meth:`evolve` to derive
    variants (e.g. for ablation benchmarks).
    """

    # ---- cores / threads -------------------------------------------------
    n_threads: int = DEFAULT_THREADS

    # ---- instruction costs (cycles) --------------------------------------
    load_cost: int = 4
    store_cost: int = 4
    cas_cost: int = 12
    call_cost: int = 2
    ret_cost: int = 2
    syscall_cost: int = 400
    pagefault_cost: int = 700

    # ---- HTM (TSX) model --------------------------------------------------
    #: cycles consumed by the xbegin instruction itself
    xbegin_cost: int = 30
    #: cycles consumed by the xend instruction (commit)
    xend_cost: int = 20
    #: fixed pipeline-rollback penalty charged on every abort
    abort_rollback_cost: int = 50
    #: max distinct cache lines in the transactional *write* set (L1-bound).
    #: 64 KiB L1 / 64 B lines = 1024 lines; scaled down so capacity aborts
    #: appear at simulation-friendly footprints.
    wset_lines: int = 256
    #: max distinct lines in the transactional *read* set.  Measured TSX
    #: read capacity varies between L1-bound and a few MB depending on
    #: eviction luck; we model the conservative (L1-eviction) regime,
    #: scaled like the write set.
    rset_lines: int = 320
    #: set-associativity of the write-set buffer.  A transaction whose
    #: writes map more than ``wset_assoc`` lines into one set overflows
    #: early even when the total footprint is below ``wset_lines``.
    wset_assoc: int = 8
    #: maximum flat-nesting depth (Intel's MAX_RTM_NEST_COUNT, typically 7).
    #: A TM_BEGIN nested deeper than this aborts the outer transaction with
    #: a persistent (non-RETRY) status, like real TSX nest-count overflow.
    max_nesting: int = 7
    #: conflict policy: "requester_wins" (TSX-like: the transaction that
    #: *receives* the conflicting coherence request aborts) or
    #: "responder_wins" (the requester aborts instead) for ablation.
    conflict_policy: str = "requester_wins"
    #: detect conflicts eagerly at access time (TSX) or lazily at commit.
    eager_conflicts: bool = True

    # ---- RTM runtime library ----------------------------------------------
    #: software retries before falling back to the global lock (paper: 5)
    max_retries: int = 5
    #: software cost of preparing a transaction attempt (TM_BEGIN prologue)
    tm_begin_overhead: int = 40
    #: software cost of tearing down after commit (TM_END epilogue)
    tm_end_overhead: int = 25
    #: software cost of the retry decision path after an abort
    tm_retry_overhead: int = 30
    #: cycles burned per iteration while spinning on the fallback lock
    spin_quantum: int = 8
    lock_acquire_cost: int = 15
    lock_release_cost: int = 10

    # ---- LBR ----------------------------------------------------------------
    #: number of Last Branch Record entries (16 Haswell/Broadwell, 32 Skylake+)
    lbr_size: int = 16

    # ---- PMU sampling --------------------------------------------------------
    #: sampling period per event name; 0/absent disables the event.
    #: Scaled so an attached profiler sees O(50-200) samples per "second"
    #: of simulated work, matching the paper's guidance.
    sample_periods: dict[str, int] = field(
        default_factory=lambda: {
            "cycles": 20_000,
            "mem_loads": 8_000,
            "mem_stores": 8_000,
            "rtm_aborted": 40,
            "rtm_commit": 400,
        }
    )
    #: cycles charged to the interrupted thread per delivered sample
    #: (signal delivery + handler body + rearm).
    handler_cost: int = 600
    #: whether a PMU counter overflow aborts an in-flight transaction
    #: (True on all real hardware; False models an idealized,
    #: non-destructive PMU for ablation).
    pmu_aborts_txn: bool = True
    #: one-time per-thread cost charged when a profiler is attached:
    #: LD_PRELOAD injection, PAPI/PMU programming, handler installation.
    #: The paper's §7.1 notes this fixed cost dominates short-running
    #: programs (15x on sub-0.1s SPLASH runs).  Defaults to 0 because the
    #: simulated timescale is compressed; the short-program experiment
    #: enables it explicitly.
    profiler_setup_cost: int = 0

    #: uniform random 0..cost_jitter extra cycles per instruction (seeded,
    #: deterministic).  Real machines have timing noise from the memory
    #: system and SMT arbitration; without it, identical per-iteration
    #: costs phase-lock threads into resonant conflict storms whose
    #: makespans are wildly bimodal.  0 disables (for ablation).
    cost_jitter: int = 1

    # ---- memory system ----------------------------------------------------
    #: raise page faults on first touch of a page (sync abort cause when
    #: the touch happens transactionally).
    page_faults: bool = True

    # ---- fault injection (repro.faults) ------------------------------------
    #: declarative fault plan (:class:`repro.faults.FaultPlan` in dict
    #: form, kept as plain data so configs stay JSON-round-trippable and
    #: the plan hashes into campaign ``JobSpec`` identity via the config
    #: overrides).  ``None`` — or a plan with every fault class off —
    #: builds no injector at all: the fault layer is provably
    #: pass-through.
    fault_plan: dict | None = None

    # ---- observability (repro.obs) -----------------------------------------
    #: record structured engine events (txn begin/commit/abort, lock
    #: activity, samples, barriers, syscalls) into per-thread ring
    #: buffers, exportable as Chrome trace-event JSON.  Off by default:
    #: a disabled run carries no observability state at all.
    trace_enabled: bool = False
    #: collect named counters/gauges/histograms into the RunResult.
    metrics_enabled: bool = False
    #: max retained trace events per simulated thread (ring capacity)
    trace_capacity: int = 65536

    def evolve(self, **kw: object) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        if "sample_periods" not in kw:
            kw["sample_periods"] = dict(self.sample_periods)
        return replace(self, **kw)


def line_of(addr: int) -> int:
    """Cache line index containing byte address ``addr``."""
    return addr >> 6


def page_of(addr: int) -> int:
    """Page index containing byte address ``addr``."""
    return addr >> 12
