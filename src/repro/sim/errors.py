"""Control-flow signals and error types for the execution substrate.

The simulator drives each thread as a Python generator.  Hardware-level
control transfers that interrupt straight-line execution (transaction
aborts) are delivered by throwing :class:`AbortSignal` into the suspended
generator; the RTM runtime's ``execute`` combinator catches it and runs the
retry / fallback policy, exactly like the abort handler address registered
with ``xbegin`` on real TSX hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..htm.status import AbortStatus


class SimError(Exception):
    """Base class for misuse of the simulator API."""


class SimDeadlock(SimError):
    """All runnable threads are blocked and no progress is possible."""


class AbortSignal(Exception):
    """A hardware transaction abort, delivered into the executing thread.

    Instances carry the abort *status* (a :class:`repro.htm.status.AbortStatus`)
    so that the RTM runtime can decide whether the abort is transient
    (retry) or persistent (go to the fallback path immediately).

    This exception must only ever be caught by the RTM runtime; workload
    code never sees it.
    """

    __slots__ = ("status",)

    status: "AbortStatus"

    def __init__(self, status: "AbortStatus") -> None:
        super().__init__(status)
        self.status = status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AbortSignal({self.status!r})"
