"""Flat simulated address space with a cacheline-aware bump allocator.

Data lives in a ``dict[int, int]`` keyed by byte address; workloads read
and write 8-byte words.  Addresses are what matters: conflict detection,
capacity accounting, shadow-memory profiling and false-sharing phenomena
are all functions of *which cache lines* a program touches, so the
allocator gives callers precise control over alignment and padding.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from .config import CACHELINE, line_of, page_of

#: data segment base; far above the synthetic code segment
DATA_BASE = 0x1000_0000

WORD = 8


class Memory:
    """The shared simulated memory of one machine.

    Committed transactional state and plain stores both land here; in-flight
    transactional writes are buffered in the owning transaction (see
    :mod:`repro.htm.tsx`) and only reach :class:`Memory` on commit.
    """

    __slots__ = ("data", "touched_pages", "_brk", "track_page_faults")

    def __init__(self, track_page_faults: bool = True) -> None:
        self.data: dict[int, int] = {}
        self.touched_pages: set[int] = set()
        self._brk = DATA_BASE
        self.track_page_faults = track_page_faults

    # -- raw access (engine use) -------------------------------------------

    def read(self, addr: int) -> int:
        return self.data.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        self.data[addr] = value

    def touch_would_fault(self, addr: int) -> bool:
        """True if accessing ``addr`` would page-fault (first touch)."""
        return (
            self.track_page_faults and page_of(addr) not in self.touched_pages
        )

    def touch(self, addr: int) -> bool:
        """Record the page of ``addr`` as resident.

        Returns ``True`` if this access is a *first touch* (a page fault)
        and page-fault tracking is enabled.
        """
        if not self.track_page_faults:
            return False
        page = page_of(addr)
        if page in self.touched_pages:
            return False
        self.touched_pages.add(page)
        return True

    # -- allocation ----------------------------------------------------------

    def alloc(
        self,
        nbytes: int,
        *,
        align: int = WORD,
        pretouch: bool = True,
    ) -> int:
        """Reserve ``nbytes`` and return the base address.

        ``pretouch`` marks the backing pages resident so ordinary workload
        data does not fault inside transactions; allocate with
        ``pretouch=False`` to model cold, fault-prone regions.
        """
        if nbytes < 0:
            raise ValueError("negative allocation")
        if align <= 0 or (align & (align - 1)):
            raise ValueError(f"alignment must be a power of two, got {align}")
        base = (self._brk + align - 1) & ~(align - 1)
        self._brk = base + max(nbytes, 1)
        if pretouch:
            for page in range(page_of(base), page_of(self._brk - 1) + 1):
                self.touched_pages.add(page)
        return base

    def alloc_line(self, nbytes: int = CACHELINE, **kw: Any) -> int:
        """Allocate cacheline-aligned storage (one line by default).

        Padding data to its own line is the classic false-sharing fix; the
        optimized Table-2 workloads rely on this.
        """
        return self.alloc(nbytes, align=CACHELINE, **kw)

    def alloc_words(self, nwords: int, **kw: Any) -> int:
        return self.alloc(nwords * WORD, **kw)

    def alloc_array(self, nwords: int, *, line_aligned: bool = True,
                    **kw: Any) -> int:
        align = CACHELINE if line_aligned else WORD
        return self.alloc(nwords * WORD, align=align, **kw)

    # -- bulk helpers (initialisation outside the simulation) ----------------

    def write_words(self, base: int, values: Iterable[int]) -> None:
        data = self.data
        for i, v in enumerate(values):
            data[base + i * WORD] = v

    def read_words(self, base: int, nwords: int) -> list[int]:
        data = self.data
        return [data.get(base + i * WORD, 0) for i in range(nwords)]

    def footprint_lines(self) -> int:
        """Number of distinct cache lines ever written (for diagnostics)."""
        return len({line_of(a) for a in self.data})
