"""Program representation: simulated functions, instruction ops, addresses.

Workloads are written as ordinary Python generator functions decorated with
:func:`simfn`.  Each decorated function receives a synthetic code-address
range so that instruction pointers, call sites, and LBR ``(from, to)``
pairs are plain integers, exactly like the addresses a real profiler deals
with.  The executing :class:`~repro.sim.thread.ThreadContext` assigns every
yielded instruction an IP of ``function_base + statement_offset``.

Ops are small tuples ``(OPCODE, ...)`` rather than objects: the engine's
inner loop dispatches on ``op[0]``, and avoiding per-instruction object
construction keeps the hot path lean (the profiling guides' advice about
allocation in inner loops applies doubly to a simulator that executes
millions of instructions per run).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

# ---------------------------------------------------------------------------
# opcodes (op tuples start with one of these single-character tags)
# ---------------------------------------------------------------------------

OP_COMPUTE = "c"   # ("c", cycles)
OP_LOAD = "l"      # ("l", addr)
OP_STORE = "s"     # ("s", addr, value)
OP_CAS = "x"       # ("x", addr, expected, new)  -> bool success
OP_SYSCALL = "y"   # ("y", kind)
OP_BARRIER = "b"   # ("b", barrier)
OP_NOP = "n"       # ("n",)

# ---------------------------------------------------------------------------
# op classification (trace-extraction hooks)
#
# Consumers that interpret op streams outside the engine — notably the
# static analyzer (repro.analysis), which drives simfn generators
# symbolically — classify ops through these sets instead of hard-coding
# tag characters, so adding an opcode only requires updating this table.
# ---------------------------------------------------------------------------

#: ops that carry a data address in op[1]
MEMORY_OPS = frozenset((OP_LOAD, OP_STORE, OP_CAS))
#: memory ops that (may) write their target
WRITE_OPS = frozenset((OP_STORE, OP_CAS))
#: ops that abort a hardware transaction synchronously when issued
#: speculatively (TSX "unfriendly instructions")
UNFRIENDLY_OPS = frozenset((OP_SYSCALL, OP_BARRIER))


def op_kind(op: tuple) -> str:
    """The opcode tag of one yielded instruction tuple."""
    return op[0]


def op_addr(op: tuple) -> int | None:
    """The data address an op touches, or None for non-memory ops."""
    return op[1] if op[0] in MEMORY_OPS else None


#: size of the synthetic address range reserved per function
FUNC_ADDR_SPAN = 0x10000
#: base of the code segment (data addresses live far above; see memory.py)
CODE_BASE = 0x40_0000


class SimFunction:
    """A simulated function: a generator factory plus a code-address range.

    Attributes
    ----------
    name:
        Human-readable name used in reports and call paths.
    base:
        Synthetic base code address.  Statement ``k`` of the function has
        IP ``base + k``.
    """

    __slots__ = ("name", "func", "base", "fid")

    def __init__(self, name: str, func: Callable, base: int, fid: int) -> None:
        self.name = name
        self.func = func
        self.base = base
        self.fid = fid

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.func(*args, **kwargs)

    def __repr__(self) -> str:
        return f"<simfn {self.name}@{self.base:#x}>"


class FunctionRegistry:
    """Global mapping between function names, ids and code addresses.

    A single process-wide registry keeps addresses stable across simulator
    instances, which makes profiles comparable between runs (and keeps
    tests deterministic).
    """

    def __init__(self) -> None:
        self._by_name: dict[str, SimFunction] = {}
        self._by_id: list[SimFunction] = []

    def register(self, func: Callable, name: str | None = None) -> SimFunction:
        name = name or func.__name__
        existing = self._by_name.get(name)
        if existing is not None:
            # Re-registration of the *same* source function (module reload,
            # re-executed test body) reuses the slot so addresses remain
            # stable.  A *different* function claiming a taken name would
            # silently alias two code ranges — every profile row and
            # analyzer finding for either function would attribute to
            # whichever registered last — so that is a hard error.
            old = existing.func
            if (getattr(old, "__module__", None) != getattr(func, "__module__", None)
                    or getattr(old, "__qualname__", None) != getattr(func, "__qualname__", None)):
                raise ValueError(
                    f"duplicate simfn name {name!r}: already registered by "
                    f"{getattr(old, '__module__', '?')}."
                    f"{getattr(old, '__qualname__', '?')}, now claimed by "
                    f"{getattr(func, '__module__', '?')}."
                    f"{getattr(func, '__qualname__', '?')}; "
                    f"pass simfn(name=...) to disambiguate"
                )
            existing.func = func  # type: ignore[misc]
            return existing
        fid = len(self._by_id)
        base = CODE_BASE + fid * FUNC_ADDR_SPAN
        sf = SimFunction(name, func, base, fid)
        self._by_id.append(sf)
        self._by_name[name] = sf
        return sf

    def by_name(self, name: str) -> SimFunction:
        return self._by_name[name]

    def functions(self) -> tuple[SimFunction, ...]:
        """All registered functions, in registration (fid) order."""
        return tuple(self._by_id)

    def function_at(self, addr: int) -> SimFunction | None:
        """Resolve a code address to the function containing it."""
        idx = (addr - CODE_BASE) // FUNC_ADDR_SPAN
        if 0 <= idx < len(self._by_id):
            return self._by_id[idx]
        return None

    def describe(self, addr: int) -> str:
        """Render ``addr`` as ``function+offset`` (the report's source loc)."""
        fn = self.function_at(addr)
        if fn is None:
            return f"{addr:#x}"
        return f"{fn.name}+{addr - fn.base}"


#: the process-wide registry used by :func:`simfn`
REGISTRY = FunctionRegistry()


def simfn(func: Callable | None = None, *, name: str | None = None,
          ) -> SimFunction | Callable[[Callable], SimFunction]:
    """Decorator registering a generator function as a simulated function.

    The decorated object is a :class:`SimFunction`; call it through
    ``ctx.call(fn, ...)`` so the call is visible to the call stack and LBR.
    """

    def wrap(f: Callable) -> SimFunction:
        return REGISTRY.register(f, name)

    if func is not None:
        return wrap(func)
    return wrap


def describe_addr(addr: int) -> str:
    """Module-level convenience wrapper over the global registry."""
    return REGISTRY.describe(addr)


class Barrier:
    """A simulation-level barrier: threads yield ``("b", barrier)`` ops.

    The engine parks arriving threads and releases the whole cohort at the
    arrival time of the last one (plus a small synchronization cost).  It is
    reusable (generation-counted), like ``pthread_barrier_t``.
    """

    __slots__ = ("parties", "generation", "_waiting")

    def __init__(self, parties: int) -> None:
        if parties <= 0:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.generation = 0
        self._waiting: list[int] = []  # tids parked on the current generation

    def __repr__(self) -> str:
        return f"Barrier(parties={self.parties}, waiting={len(self._waiting)})"
