"""Service-layer chaos: kill the daemon, not just the workers.

:mod:`repro.faults.chaos` proves the *profiler* degrades gracefully
under observation loss; this module proves the *service* does under
process loss.  A :class:`ServiceChaosPlan` names the seeded faults to
inject above the simulator:

* **daemon SIGKILL at named journal boundaries** — an in-process
  :class:`~repro.campaign.store.CrashPoint` raised from the task
  journal's crash hook at each ``journal-<state>[-durable]`` boundary,
  followed by abandonment of every open file handle (the store's
  crash-test idiom: nothing flushed, nothing closed cleanly);
* **mid-stream connection resets** — the HTTP front end hard-aborts
  (RST) the progress-event stream after a flushed batch, exercising
  the client's ``since``-cursor resume;
* **store byte corruption** — a seeded byte in a live segment and in a
  ``.rlog`` sidecar is zeroed, exercising ``repro store scrub``
  detection and ``--repair`` quarantine.

:func:`run_service_drill` executes the plan and asserts the service
invariants the tentpole promises:

1. **no acked submission lost** — if ``submit`` returned, the restarted
   daemon resolves the pre-crash campaign id and completes it;
2. **results byte-identical to the serial CLI** — recovered records and
   ``.rlog`` sidecars match a crash-free serial run byte for byte;
3. **recovery idempotent** — after a clean close, reopening and closing
   the daemon again changes no byte on disk;
4. **stream resume is lossless** — a reset feed replays with contiguous
   event indices and reaches the terminal event;
5. **corruption is detected and repairable** — scrub reports the
   damaged files and ``--repair`` leaves a clean store behind.

Everything serve/campaign is imported lazily so ``repro.faults`` keeps
no import-time dependency on the service stack.
"""

from __future__ import annotations

import json
import random
import shutil
import time
from collections.abc import Callable
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .plan import FaultPlanError

if TYPE_CHECKING:  # pragma: no cover
    from ..serve.daemon import ServeDaemon

#: the tiny fixed-seed campaign every drill phase runs — small enough
#: to execute a dozen times in CI, deterministic enough to byte-compare
DRILL_SUBMISSION: dict[str, Any] = {
    "suite": "overhead",
    "workloads": ["micro_low_abort"],
    "n_threads": 2,
    "scale": 0.25,
    "seed": 0,
    "runs": 1,
    "drop": 0,
    "jobs": 1,
}

_WAIT_TIMEOUT_S = 300.0
_POLL_S = 0.02


@dataclass(frozen=True)
class ServiceChaosPlan:
    """Seeded, declarative description of the service faults to drill."""

    seed: int = 0
    #: journal boundaries to SIGKILL the daemon at; empty = all of them
    boundaries: tuple[str, ...] = ()
    #: how many mid-stream connection resets to inject
    stream_resets: int = 2
    #: how many bytes to corrupt per damaged store file
    corrupt_bytes: int = 1

    def validate(self) -> None:
        from ..serve.journal import BOUNDARIES

        unknown = sorted(set(self.boundaries) - set(BOUNDARIES))
        if unknown:
            raise FaultPlanError(
                f"unknown journal boundary(ies): {unknown} "
                f"(known: {', '.join(BOUNDARIES)})")
        if self.stream_resets < 0:
            raise FaultPlanError("stream_resets must be >= 0")
        if self.corrupt_bytes < 0:
            raise FaultPlanError("corrupt_bytes must be >= 0")

    def resolved_boundaries(self) -> tuple[str, ...]:
        from ..serve.journal import BOUNDARIES

        return self.boundaries or BOUNDARIES

    # ------------------------------------------------------ serialization

    def to_dict(self) -> dict:
        """Canonical minimal form, mirroring :class:`FaultPlan`."""
        defaults = ServiceChaosPlan()
        doc: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != getattr(defaults, f.name):
                doc[f.name] = list(value) if isinstance(value, tuple) \
                    else value
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> ServiceChaosPlan:
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise FaultPlanError(
                f"unknown service chaos field(s): {sorted(unknown)}")
        coerced = dict(doc)
        if "boundaries" in coerced:
            coerced["boundaries"] = tuple(coerced["boundaries"])
        plan = cls(**coerced)
        plan.validate()
        return plan


@dataclass
class DrillCell:
    """One drill scenario and its verdict."""

    name: str
    ok: bool
    detail: str


@dataclass
class ServiceDrillReport:
    """Everything ``repro chaos --serve`` asserts, cell by cell."""

    plan: ServiceChaosPlan
    cells: list[DrillCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "ok": self.ok,
            "cells": [{"name": c.name, "ok": c.ok, "detail": c.detail}
                      for c in self.cells],
        }

    def render(self) -> str:
        lines = ["service chaos drill "
                 + ("PASSED" if self.ok else "FAILED")]
        for cell in self.cells:
            mark = "ok  " if cell.ok else "FAIL"
            lines.append(f"  [{mark}] {cell.name}: {cell.detail}")
        return "\n".join(lines)


class _DieAt:
    """One-shot crash hook: raises CrashPoint the first time the named
    boundary is crossed, then never again (the restart must survive)."""

    def __init__(self, step: str) -> None:
        self.step = step
        self.died = False

    def __call__(self, step: str) -> None:
        from ..campaign.store import CrashPoint

        if step == self.step and not self.died:
            self.died = True
            raise CrashPoint(step)


# ---------------------------------------------------------- kill plumbing


def _abandon_store(store: Any) -> None:
    """The store half of ``kill -9``: drop the crash hook and the WAL
    handle without flushing or closing anything (the idiom the store's
    own crash-property tests use)."""
    store._crash_hook = None
    if store._wal_fh is not None:
        store._wal_fh.close()
        store._wal_fh = None


def _abandon_daemon(daemon: ServeDaemon) -> None:
    """Abandon a daemon as a hard kill would: no drain, no snapshot,
    no store flush — just every file handle dropped mid-state."""
    daemon._closed = True  # a later close() must not tidy anything up
    daemon._runners.shutdown(wait=False, cancel_futures=True)
    if daemon.journal is not None:
        daemon.journal._crash_hook = None
        if daemon.journal._fh is not None:
            daemon.journal._fh.close()
            daemon.journal._fh = None
    _abandon_store(daemon.store)


def _wait_for(cond: Callable[[], bool], what: str,
              timeout: float = _WAIT_TIMEOUT_S) -> None:
    deadline = time.monotonic() + timeout
    while not cond():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"drill timed out waiting for {what}")
        time.sleep(_POLL_S)


def _settled(daemon: ServeDaemon) -> bool:
    tasks = daemon.registry.list()
    return bool(tasks) and all(t.finished for t in tasks)


def _disk_state(root: Path) -> dict[str, bytes]:
    return {str(p.relative_to(root)): p.read_bytes()
            for p in sorted(root.rglob("*")) if p.is_file()}


# ------------------------------------------------------------- baselines


def _serial_baseline(
        root: Path, doc: dict,
) -> tuple[list[str], dict[str, str], dict[str, bytes]]:
    """Run the campaign exactly as the serial CLI would and capture the
    byte-identity targets: canonical record JSON per target key plus
    every ``.rlog`` sidecar."""
    from ..campaign.scheduler import CampaignRunner
    from ..campaign.store import ResultStore
    from ..campaign.suites import build_campaign, submission_kwargs

    suite, kwargs = submission_kwargs(doc)
    campaign = build_campaign(suite, **kwargs)
    store = ResultStore(root)
    try:
        CampaignRunner(store=store, jobs=1).run(campaign)
    finally:
        store.close()
    keys = list(campaign.targets or list(campaign.jobs))
    records: dict[str, str] = {}
    store = ResultStore(root)
    try:
        for key in keys:
            records[key] = json.dumps(store.fetch(key), sort_keys=True)
    finally:
        store.close()
    rlogs = {p.name: p.read_bytes()
             for p in sorted((root / "replay").glob("*.rlog"))}
    return keys, records, rlogs


def _compare_results(daemon: ServeDaemon, serve_root: Path,
                     keys: list[str], serial_records: dict[str, str],
                     serial_rlogs: dict[str, bytes]) -> str | None:
    """None when the serve-side results are byte-identical to the
    serial baseline; otherwise what diverged."""
    for key in keys:
        record = daemon.store.fetch(key)
        if record is None:
            return f"no record for target {key[:12]} after recovery"
        if json.dumps(record, sort_keys=True) != serial_records[key]:
            return f"record {key[:12]} differs from the serial run"
    serve_rlogs = {p.name: p.read_bytes()
                   for p in sorted((serve_root / "replay")
                                   .glob("*.rlog"))}
    if serve_rlogs != serial_rlogs:
        return "replay sidecars differ from the serial run"
    return None


# ----------------------------------------------------- the boundary cell


def _run_boundary_cell(
        boundary: str, workdir: Path, doc: dict, keys: list[str],
        serial_records: dict[str, str],
        serial_rlogs: dict[str, bytes]) -> DrillCell:
    """Kill a daemon at ``boundary``, restart it, and assert: no acked
    submission lost, recovery completes the campaign byte-identically,
    and a second restart is a byte-for-byte no-op."""
    from ..campaign.store import CrashPoint, ResultStore
    from ..serve.daemon import ServeDaemon

    serve_root = workdir / f"serve-{boundary}"

    # epoch entries are only written by a *recovery* that found
    # unfinished work — so manufacture the unfinished work with a
    # helper crash first, then arm the target boundary for the restart
    if boundary.startswith("journal-epoch"):
        first_hook = _DieAt("journal-running-durable")
        target_hook = _DieAt(boundary)
    else:
        first_hook = target_hook = _DieAt(boundary)
    # failed entries need a campaign that actually fails: ride a second,
    # deadline-doomed submission alongside the healthy one
    doomed = boundary.startswith("journal-failed")

    def fail(detail: str) -> DrillCell:
        return DrillCell(name=boundary, ok=False, detail=detail)

    # ---- phase 1: first daemon, killed at (or en route to) the target
    acked = False
    task_id: str | None = None
    store = ResultStore(serve_root, background=False)
    daemon: ServeDaemon | None
    try:
        daemon = ServeDaemon(store=store, runners=1, default_jobs=1,
                             journal_crash_hook=first_hook)
    except CrashPoint:  # pragma: no cover - first boot never recovers
        _abandon_store(store)
        daemon = None
    doomed_id: str | None = None
    if daemon is not None:
        try:
            task = daemon.submit(dict(doc))
            acked = True
            task_id = task.id
        except CrashPoint:
            pass  # submit crashed: the client never got an ack
        if acked and doomed:
            doomed_id = daemon.submit({**doc, "deadline": 1e-6}).id
        if acked:
            _wait_for(lambda: first_hook.died or _settled(daemon),
                      f"{boundary}: crash or completion")
        if first_hook.died:
            _abandon_daemon(daemon)
        else:
            # boundary not crossed while running (e.g. the snapshot
            # rewrite): it fires inside the clean-close path
            try:
                daemon.close()
            except CrashPoint:
                _abandon_daemon(daemon)

    # ---- phase 2: restart until a daemon survives and settles
    final: ServeDaemon | None = None
    for _ in range(4):
        hook = None if target_hook.died else target_hook
        store = ResultStore(serve_root, background=False)
        try:
            candidate = ServeDaemon(store=store, runners=1,
                                    default_jobs=1,
                                    journal_crash_hook=hook)
        except CrashPoint:
            _abandon_store(store)  # died mid-recovery; restart again
            continue
        if not candidate.registry.list():
            # nothing durable survived (legal only if never acked):
            # the client's retry resubmits
            try:
                candidate.submit(dict(doc))
            except CrashPoint:
                _abandon_daemon(candidate)
                continue
        # only an armed hook may cut the wait short: a hook that
        # already fired in an earlier incarnation can never kill
        # *this* daemon
        _wait_for(lambda: ((hook is not None and hook.died)
                           or _settled(candidate)),
                  f"{boundary}: recovery completion")
        if not _settled(candidate):
            _abandon_daemon(candidate)
            continue
        final = candidate
        break
    if final is None:
        return fail("no restart survived to completion")
    if not target_hook.died:
        _abandon_daemon(final)
        return fail("target boundary was never crossed")

    # ---- invariant 1: no acked submission lost
    if acked:
        assert task_id is not None
        recovered = final.registry.get(task_id)
        if recovered is None:
            _abandon_daemon(final)
            return fail(f"acked submission {task_id} lost across "
                        "the crash")
        if recovered.state != "done":
            _abandon_daemon(final)
            return fail(f"acked submission {task_id} ended "
                        f"{recovered.state!r}: {recovered.error}")
    if doomed_id is not None:
        doomed_task = final.registry.get(doomed_id)
        if doomed_task is None:
            _abandon_daemon(final)
            return fail(f"acked (doomed) submission {doomed_id} lost "
                        "across the crash")
        if doomed_task.state != "failed":
            _abandon_daemon(final)
            return fail(f"doomed submission {doomed_id} should have "
                        f"failed, ended {doomed_task.state!r}")
    failed = [t.id for t in final.registry.list()
              if t.state == "failed" and t.id != doomed_id]
    if failed:
        _abandon_daemon(final)
        return fail(f"campaign(s) failed after recovery: {failed}")

    # ---- invariant 2: byte-identity with the serial CLI
    diverged = _compare_results(final, serve_root, keys,
                                serial_records, serial_rlogs)
    if diverged is not None:
        _abandon_daemon(final)
        return fail(diverged)

    # ---- invariant 3: recovery idempotent (clean close, then a
    # restart+close must not change one byte on disk)
    final.close()
    before = _disk_state(serve_root)
    store = ResultStore(serve_root, background=False)
    ServeDaemon(store=store, runners=1, default_jobs=1).close()
    after = _disk_state(serve_root)
    if before != after:
        changed = sorted(name for name in set(before) | set(after)
                         if before.get(name) != after.get(name))
        return fail(f"second restart rewrote {changed}")

    return DrillCell(
        name=boundary, ok=True,
        detail=f"acked={'yes' if acked else 'no'}, recovered "
               "byte-identical, restart is a no-op")


# ------------------------------------------------------ the other cells


def _run_stream_cell(plan: ServiceChaosPlan, doc: dict) -> DrillCell:
    """Reset the progress stream mid-feed ``stream_resets`` times and
    assert the client's cursor resume yields the complete, ordered
    feed every time."""
    from ..campaign.store import MemoryStore
    from ..serve.client import ServeClient
    from ..serve.daemon import ServeDaemon
    from ..serve.server import BackgroundServer

    name = "stream-resume"
    daemon = ServeDaemon(store=MemoryStore(), runners=1, default_jobs=1)
    server = BackgroundServer(daemon)
    try:
        port = server.start()
        client = ServeClient(f"http://127.0.0.1:{port}",
                             retries=max(2, plan.stream_resets),
                             retry_backoff=0.01,
                             retry_seed=plan.seed)
        submitted = client.submit(dict(doc))
        client.wait(submitted["id"], timeout=_WAIT_TIMEOUT_S)
        daemon.stream_resets_remaining = plan.stream_resets
        for round_no in range(max(1, plan.stream_resets)):
            events = list(client.stream_events(submitted["id"],
                                               since=0))
            indices = [e["i"] for e in events if "i" in e]
            if indices != list(range(len(indices))) or not indices:
                return DrillCell(
                    name=name, ok=False,
                    detail=f"round {round_no}: gap in resumed feed "
                           f"(indices {indices[:10]}...)")
            if events[-1].get("type") != "done":
                return DrillCell(
                    name=name, ok=False,
                    detail=f"round {round_no}: feed ended before the "
                           "terminal event")
        if daemon.stream_resets_remaining > 0:
            return DrillCell(
                name=name, ok=False,
                detail=f"{daemon.stream_resets_remaining} injected "
                       "reset(s) never fired")
        return DrillCell(
            name=name, ok=True,
            detail=f"{plan.stream_resets} reset(s) absorbed; feed "
                   "complete and ordered every round")
    finally:
        server.stop()
        daemon.close()


def _run_scrub_cell(plan: ServiceChaosPlan, workdir: Path,
                    doc: dict) -> DrillCell:
    """Corrupt seeded bytes in a segment and a sidecar; scrub must
    detect both, ``--repair`` must quarantine/amputate, and a follow-up
    scrub must come back clean."""
    from ..campaign.store import scrub_files

    name = "scrub-detects-corruption"
    root = workdir / "scrub"
    _serial_baseline(root, doc)  # a healthy store to damage
    rng = random.Random(plan.seed)

    def corrupt(path: Path) -> None:
        data = bytearray(path.read_bytes())
        for _ in range(max(1, plan.corrupt_bytes)):
            offset = rng.randrange(len(data))
            data[offset] = 0x00 if data[offset] != 0x00 else 0x01
        path.write_bytes(bytes(data))

    segments = sorted(root.glob("seg-*.jsonl"))
    sidecars = sorted((root / "replay").glob("*.rlog"))
    if not segments or not sidecars:
        return DrillCell(name=name, ok=False,
                         detail="baseline store has no segment or "
                                "sidecar to corrupt")
    corrupt(segments[0])
    corrupt(sidecars[0])
    first = scrub_files(root)
    if first["clean"]:
        return DrillCell(name=name, ok=False,
                         detail="scrub missed the injected corruption")
    repaired = scrub_files(root, repair=True)
    if repaired["summary"]["repaired"] < 1:
        return DrillCell(name=name, ok=False,
                         detail="--repair repaired nothing")
    final = scrub_files(root)
    if final["summary"]["torn"] or final["summary"]["corrupt"]:
        return DrillCell(name=name, ok=False,
                         detail="store still damaged after repair")
    return DrillCell(
        name=name, ok=True,
        detail=f"detected {first['summary']['corrupt']} corrupt + "
               f"{first['summary']['torn']} torn, repaired "
               f"{repaired['summary']['repaired']}, clean after")


# ------------------------------------------------------------- the drill


def run_service_drill(
        plan: ServiceChaosPlan | dict | None = None,
        *,
        submission: dict | None = None,
        workdir: str | Path | None = None,
        artifact_dir: str | Path | None = None) -> ServiceDrillReport:
    """Execute the full service-layer chaos drill; see the module
    docstring for the invariants each cell asserts.  With
    ``artifact_dir``, failing cells dump their journal and store files
    (plus ``report.json``) for offline analysis."""
    import tempfile

    if plan is None:
        plan = ServiceChaosPlan()
    elif isinstance(plan, dict):
        plan = ServiceChaosPlan.from_dict(plan)
    else:
        plan.validate()
    doc = dict(submission or DRILL_SUBMISSION)
    report = ServiceDrillReport(plan=plan)

    tmp: tempfile.TemporaryDirectory[str] | None = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-chaos-")
        workdir = tmp.name
    workdir = Path(workdir)
    try:
        serial_root = workdir / "serial"
        keys, serial_records, serial_rlogs = _serial_baseline(
            serial_root, doc)
        for boundary in plan.resolved_boundaries():
            cell = _run_boundary_cell(boundary, workdir, doc, keys,
                                      serial_records, serial_rlogs)
            report.cells.append(cell)
            if not cell.ok and artifact_dir is not None:
                _dump_artifacts(workdir / f"serve-{boundary}",
                                Path(artifact_dir) / boundary)
        if plan.stream_resets:
            report.cells.append(_run_stream_cell(plan, doc))
        if plan.corrupt_bytes:
            report.cells.append(_run_scrub_cell(plan, workdir, doc))
        if artifact_dir is not None and not report.ok:
            out = Path(artifact_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / "report.json").write_text(
                json.dumps(report.to_dict(), indent=2, sort_keys=True)
                + "\n")
        return report
    finally:
        if tmp is not None:
            tmp.cleanup()


def _dump_artifacts(root: Path, out: Path) -> None:
    """Copy the failing cell's journal + store files for the CI
    artifact upload (tiny: one micro campaign's worth)."""
    if not root.is_dir():
        return
    out.mkdir(parents=True, exist_ok=True)
    for path in sorted(root.rglob("*")):
        if path.is_file():
            target = out / path.relative_to(root)
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy2(path, target)
