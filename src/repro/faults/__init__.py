"""Deterministic fault injection (``repro.faults``).

The simulated PMU is perfect: every counter overflow delivers exactly
one pristine sample record.  Real hardware is not — PEBS buffers drop
records under interrupt pressure, precise IPs skid, LBR snapshots are
truncated or stale by the time the handler reads them, and timer
interrupts abort transactions that the profiler never asked about.
TxSampler's central claim is that *lossy, statistical* sampling still
yields correct abort attribution, so this package makes every one of
those fault classes injectable — reproducibly, from a seed, at the
exact observation boundary the profiler is allowed to see.

* :class:`FaultPlan` — a declarative, JSON-serializable description of
  which faults to inject at which rates.  It travels inside
  ``MachineConfig.fault_plan`` and therefore hashes into campaign
  ``JobSpec`` identity: two runs with different plans never share a
  cache slot.
* :class:`FaultInjector` — the runtime that executes a plan.  An
  all-zero plan never constructs an injector at all, so the fault layer
  is provably pass-through (byte-identical profile databases).
* :mod:`repro.faults.chaos` — the degradation-invariant harness: sweep
  sample-loss and LBR-truncation rates over the micro suite and assert
  the dominant abort category and decision-tree leaf per TM site stay
  within a documented tolerance of the clean run.
* :mod:`repro.faults.service` — the service-layer chaos harness: a
  :class:`ServiceChaosPlan` names seeded daemon kills at journal
  boundaries, mid-stream connection resets and store byte corruption;
  :func:`run_service_drill` asserts no acked submission is lost,
  recovery is idempotent, and results stay byte-identical to the
  serial CLI (``repro chaos --serve``).
"""

from .inject import FaultInjector, WorkerKilled
from .plan import FaultPlan, FaultPlanError
from .service import ServiceChaosPlan, ServiceDrillReport, run_service_drill

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "ServiceChaosPlan",
    "ServiceDrillReport",
    "WorkerKilled",
    "run_service_drill",
]
