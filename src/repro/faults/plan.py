"""The declarative fault plan.

A :class:`FaultPlan` names every fault class the substrate can inject
and the rate (or period) at which to inject it.  Plans are plain data:
JSON-serializable, comparable, and canonicalized by :meth:`to_dict` so
that the same plan always hashes to the same campaign ``JobSpec`` key
regardless of how it was spelled.

Fault classes (all default to *off*):

observation-layer — perturb only what the profiler sees, never the
machine, so ground-truth :class:`~repro.sim.engine.RunResult` fields
are unchanged:

* ``drop_rate`` — the PEBS buffer loses the record (the interrupt still
  fired and still aborted any in-flight transaction);
* ``dup_rate`` — the record is delivered twice (buffer replay);
* ``skid_rate`` / ``skid_max`` — the "precise" IP skids forward by up
  to ``skid_max`` address units;
* ``lbr_truncate_rate`` / ``lbr_keep_max`` — the LBR snapshot is cut to
  at most ``lbr_keep_max`` newest entries (possibly zero);
* ``lbr_stale_rate`` — the previous interrupt's LBR snapshot is
  delivered instead of the current one;
* ``corrupt_rate`` — the record payload is garbled (bad event name,
  negative timestamp/weight, out-of-range tid, junk LBR entry, junk
  IP); a hardened profiler quarantines these instead of crashing;
* ``clock_skew_ppm`` — each thread's sampled ``rdtsc`` runs fast or
  slow by a fixed per-thread rate of up to this many parts per million.

machine-layer — perturb the simulated machine itself:

* ``storm_period`` / ``storm_cost`` — a timer-interrupt storm: every
  ``storm_period`` cycles the thread takes an interrupt that aborts an
  in-flight transaction (inflating "other"-class async aborts, the
  hybrid-TM fallback pathology) and burns ``storm_cost`` cycles;
* ``kill_after_samples`` / ``kill_mode`` — the process dies mid-run
  after that many delivered samples: ``"raise"`` raises
  :class:`~repro.faults.inject.WorkerKilled` (an in-process crash the
  campaign scheduler retries), ``"exit"`` hard-exits like an OOM kill
  (the pool sees a ``BrokenProcessPool``).

``seed`` drives every probabilistic decision through per-thread RNG
streams, so a plan is exactly reproducible and independent of thread
scheduling order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

KILL_MODES = ("raise", "exit")

#: rate-valued fields, each bounded to [0, 1]
_RATE_FIELDS = (
    "drop_rate",
    "dup_rate",
    "skid_rate",
    "lbr_truncate_rate",
    "lbr_stale_rate",
    "corrupt_rate",
)

#: fields whose non-zero value switches a fault class on; ``seed`` and
#: the shape parameters (``skid_max``, ``lbr_keep_max``, ``storm_cost``,
#: ``kill_mode``) do not activate anything by themselves
_ACTIVATORS = _RATE_FIELDS + (
    "clock_skew_ppm",
    "storm_period",
    "kill_after_samples",
)


class FaultPlanError(ValueError):
    """The fault plan is malformed (rate out of range, bad mode, ...)."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative description of the faults to inject."""

    seed: int = 0
    # --- observation-layer faults ---------------------------------------
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    skid_rate: float = 0.0
    skid_max: int = 8
    lbr_truncate_rate: float = 0.0
    lbr_keep_max: int = 4
    lbr_stale_rate: float = 0.0
    corrupt_rate: float = 0.0
    clock_skew_ppm: int = 0
    # --- machine-layer faults -------------------------------------------
    storm_period: int = 0
    storm_cost: int = 200
    kill_after_samples: int = 0
    kill_mode: str = "raise"

    def validate(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name}={rate!r} outside [0, 1]")
        for name in ("skid_max", "lbr_keep_max", "clock_skew_ppm",
                     "storm_period", "storm_cost", "kill_after_samples"):
            value = getattr(self, name)
            if value < 0:
                raise FaultPlanError(f"{name}={value!r} must be >= 0")
        if self.kill_mode not in KILL_MODES:
            raise FaultPlanError(
                f"kill_mode={self.kill_mode!r} not in {KILL_MODES}"
            )

    def is_zero(self) -> bool:
        """True when no fault class is active: the plan injects nothing
        and the fault layer must be byte-for-byte invisible."""
        return all(not getattr(self, name) for name in _ACTIVATORS)

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Canonical minimal form: only fields that differ from the
        defaults, so equivalent plans serialize (and hash) identically."""
        defaults = FaultPlan()
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != getattr(defaults, f.name)
        }

    def full_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> FaultPlan:
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan field(s): {sorted(unknown)}"
            )
        plan = cls(**doc)
        plan.validate()
        return plan


def coerce_plan(plan: FaultPlan | dict | None) -> FaultPlan | None:
    """Accept a plan, a plan dict, or None; validate and normalize."""
    if plan is None:
        return None
    if isinstance(plan, FaultPlan):
        plan.validate()
        return plan
    return FaultPlan.from_dict(plan)
