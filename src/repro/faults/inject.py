"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

The injector sits at the *observation boundary*: the engine builds the
true :class:`~repro.pmu.sampling.Sample` (after the interrupt has
already aborted any in-flight transaction — that part of reality is not
optional), then hands it to :meth:`FaultInjector.observe`, which
returns the possibly-empty list of records the profiler actually
receives.  Observation-layer faults therefore never perturb the
simulated machine: ground-truth ``RunResult`` fields are identical with
and without them, only the profiler's view degrades.

Machine-layer faults (timer-interrupt storms, mid-run kills) *do*
perturb the machine, deliberately: storms inflate async ("other"
class) aborts the way a noisy host inflates them under hybrid-TM
fallback pressure, and kills exercise the campaign scheduler's
crash-recovery path.

Determinism: every decision draws from a per-thread
``random.Random((seed + 1) * 2_000_003 + tid)`` stream, so fault
sequences are a pure function of (plan, tid, per-thread sample order)
— independent of cross-thread scheduling and of each other.
"""

from __future__ import annotations

import os
import random
from dataclasses import replace
from typing import TYPE_CHECKING

from ..pmu.lbr import LbrEntry
from ..pmu.sampling import Sample
from .plan import FaultPlan, coerce_plan

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.hooks import Observability
    from ..sim.config import MachineConfig


class WorkerKilled(RuntimeError):
    """An injected mid-run death (``FaultPlan.kill_mode="raise"``)."""


#: counter names exposed by :meth:`FaultInjector.summary`
COUNTERS = (
    "delivered",
    "dropped",
    "duplicated",
    "skidded",
    "lbr_truncated",
    "lbr_stale",
    "corrupted",
    "skewed",
    "storm_interrupts",
)


class FaultInjector:
    """Runtime state for one simulated run under a fault plan."""

    def __init__(self, plan: FaultPlan, n_threads: int,
                 obs: Observability | None = None) -> None:
        plan.validate()
        self.plan = plan
        self.obs = obs
        self._rngs = [
            random.Random((plan.seed + 1) * 2_000_003 + tid)
            for tid in range(n_threads)
        ]
        #: previous true LBR snapshot per thread (staleness source)
        self._prev_lbr: list[tuple[LbrEntry, ...] | None] = [None] * n_threads
        #: per-thread ppm skew, drawn once so each simulated core's
        #: ``rdtsc`` runs consistently fast or slow for the whole run
        self._skew_ppm = [
            rng.randint(-plan.clock_skew_ppm, plan.clock_skew_ppm)
            if plan.clock_skew_ppm else 0
            for rng in self._rngs
        ]
        self._storm_left = [plan.storm_period] * n_threads
        self._seen = 0
        self.counts: dict[str, int] = {name: 0 for name in COUNTERS}

    # ------------------------------------------------------------- factory

    @classmethod
    def from_config(cls, config: "MachineConfig", n_threads: int,
                    obs: Observability | None = None,
                    ) -> "FaultInjector" | None:
        """Build the injector a config asks for.

        Returns ``None`` for a missing or all-zero plan, so the
        fault-free engine carries no injector state at all — the
        pass-through property is structural, not behavioral.
        """
        plan = coerce_plan(getattr(config, "fault_plan", None))
        if plan is None or plan.is_zero():
            return None
        return cls(plan, n_threads, obs=obs)

    # ---------------------------------------------------------- accounting

    def _note(self, kind: str, n: int = 1) -> None:
        self.counts[kind] += n
        if self.obs is not None:
            self.obs.on_fault(kind, n)

    def summary(self) -> dict[str, int]:
        """Ground-truth injection counts (never shown to the profiler)."""
        return {k: v for k, v in self.counts.items() if v}

    # ------------------------------------------------- observation boundary

    def observe(self, tid: int, sample: Sample) -> list[Sample]:
        """Filter one true sample into what the profiler receives."""
        plan = self.plan
        rng = self._rngs[tid]
        self._seen += 1
        if plan.kill_after_samples and self._seen >= plan.kill_after_samples:
            self._kill()

        lbr = sample.lbr
        stale = (plan.lbr_stale_rate
                 and rng.random() < plan.lbr_stale_rate)
        if stale and self._prev_lbr[tid] is not None:
            lbr = self._prev_lbr[tid]
            self._note("lbr_stale")
        self._prev_lbr[tid] = sample.lbr
        if (plan.lbr_truncate_rate and lbr
                and rng.random() < plan.lbr_truncate_rate):
            keep = rng.randint(0, min(plan.lbr_keep_max, len(lbr)))
            lbr = lbr[:keep]
            self._note("lbr_truncated")

        ip = sample.ip
        if (plan.skid_rate and plan.skid_max
                and rng.random() < plan.skid_rate):
            ip += rng.randint(1, plan.skid_max)
            self._note("skidded")

        ts = sample.ts
        skew = self._skew_ppm[tid]
        if skew:
            ts += (ts * skew) // 1_000_000
            self._note("skewed")

        out = sample
        if lbr is not sample.lbr or ip != sample.ip or ts != sample.ts:
            out = replace(sample, ip=ip, ts=ts, lbr=lbr)
        if plan.corrupt_rate and rng.random() < plan.corrupt_rate:
            out = self._corrupt(rng, out)
            self._note("corrupted")

        if plan.drop_rate and rng.random() < plan.drop_rate:
            self._note("dropped")
            return []
        if plan.dup_rate and rng.random() < plan.dup_rate:
            self._note("duplicated")
            self._note("delivered", 2)
            return [out, out]
        self._note("delivered")
        return [out]

    def _corrupt(self, rng: random.Random, sample: Sample) -> Sample:
        """Garble one payload field, the way a torn PEBS record would."""
        kind = rng.randrange(6)
        if kind == 0:
            return replace(sample, event="pmu_glitch")
        if kind == 1:
            return replace(sample, ts=-abs(sample.ts) - 1)
        if kind == 2:
            return replace(sample, weight=-17)
        if kind == 3:
            return replace(sample, tid=sample.tid + 1_000)
        if kind == 4:
            # a junk LBR entry where an LbrEntry belongs
            return replace(sample, lbr=("\x00garbage",) + sample.lbr[1:])
        return replace(sample, ip=-sample.ip - 1)

    # --------------------------------------------------------- machine layer

    @property
    def storms_enabled(self) -> bool:
        return self.plan.storm_period > 0

    def storm_due(self, tid: int, elapsed: int) -> int:
        """Advance the per-thread timer by ``elapsed`` cycles; returns
        how many timer interrupts fired in that window."""
        period = self.plan.storm_period
        left = self._storm_left[tid] - elapsed
        due = 0
        while left <= 0:
            left += period
            due += 1
        self._storm_left[tid] = left
        if due:
            self._note("storm_interrupts", due)
        return due

    def _kill(self) -> None:
        if self.plan.kill_mode == "exit":  # pragma: no cover - kills us
            os._exit(66)
        raise WorkerKilled(
            f"injected worker death after {self._seen} samples"
        )
