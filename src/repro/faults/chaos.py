"""Degradation-invariant harness: profiling conclusions under injected loss.

TxSampler's §5 argument is that *sampled* abort profiles preserve the
abort-cause ranking a full trace would give.  This harness makes that a
testable invariant of the reproduction: for each workload it takes a
clean fixed-seed profile, derives the per-critical-section **signature**
— the dominant abort class (largest share of sampled abort weight) and
the Figure 1 decision-tree leaf — then re-profiles under a sweep of
observation-layer fault plans (sample loss up to 50%, LBR truncation)
and asserts the signature of every scored site survives.

Sites are scored only when the clean run sampled at least
``min_aborts`` abort events there; below that the signature is noise
and the paper makes no claim about it.  ``tolerance`` is the fraction
of (site, check) pairs allowed to flip before a sweep cell fails —
0.0 by default: the documented claim is that the conclusions are
*stable*, so any flip is a finding.

The harness also proves the pass-through contract: an all-zero
:class:`~repro.faults.plan.FaultPlan` must yield a profile database
byte-identical to a run with no plan at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.analyzer import Profile
from ..core.decision_tree import DecisionTree, Guidance, Leaf
from ..core.export import profile_to_dict
from .plan import FaultPlan

#: default sample-loss sweep (the acceptance envelope tops out at 50%)
DEFAULT_LOSS_RATES = (0.1, 0.25, 0.5)

#: default workloads: the micro suite members whose clean fixed-seed
#: profiles sample enough abort events to score a site (micro_capacity
#: only clears the gate at scale >= 4, so it is opt-in via --workloads)
DEFAULT_WORKLOADS = (
    "micro_high_abort",
    "micro_sync",
    "micro_false_sharing",
)

#: terminal leaves produced by the tree's stage-3 *abort analysis*.
#: The signature compares this leaf — the paper's robustness claim is
#: about abort attribution.  The stage-2 time-decomposition leaves
#: (merge-transactions / relax-serialization) ride on cycles-sample
#: ratios that sit arbitrarily close to a threshold at borderline
#: sites, where uniform sample loss legitimately tips them; comparing
#: them would test the thresholds, not the attribution.
ABORT_LEAVES = frozenset((
    Leaf.TRUE_SHARING.value,
    Leaf.FALSE_SHARING.value,
    Leaf.CAPACITY_OVERFLOW.value,
    Leaf.UNFRIENDLY_INSTRUCTIONS.value,
    Leaf.NO_ABORT_WEIGHT.value,
))


def _leaf_of(guidance: Guidance) -> str:
    """The traversal's abort-analysis leaf, falling back to the first
    leaf when the tree never descended into abort analysis."""
    for leaf in guidance.leaves:
        if leaf.value in ABORT_LEAVES:
            return leaf.value
    return guidance.leaves[0].value if guidance.leaves else "none"


@dataclass(frozen=True)
class SiteSignature:
    """What the profile concluded about one TM site."""

    site: str            # critical-section name (stable across runs)
    #: abort *cause* class (conflict/capacity/sync) with the largest
    #: sampled weight.  "other" (RETRY-only: the profiler's own
    #: sampling interrupts, lock-elision retries) is excluded exactly
    #: as Equation 4 excludes it — its weight scales with the
    #: profiler's self-interference, not with the program — unless no
    #: cause class was sampled at all.
    dominant: str
    leaf: str            # abort-analysis leaf of the per-site traversal
    aborts: float        # sampled abort events (clean-run scoring gate)


@dataclass
class CellResult:
    """One (workload, fault plan) cell of the sweep."""

    workload: str
    label: str                      # e.g. "drop=0.50" / "lbr-truncate"
    plan: dict
    checked: int = 0                # (site, check) pairs compared
    flips: list[str] = field(default_factory=list)
    #: scored sites absent from the degraded profile (site disappeared)
    lost_sites: list[str] = field(default_factory=list)

    @property
    def mismatches(self) -> int:
        return len(self.flips) + len(self.lost_sites)

    def passed(self, tolerance: float) -> bool:
        if not self.checked:
            return True
        return self.mismatches / self.checked <= tolerance


@dataclass
class ChaosReport:
    """The whole sweep: per-cell results plus the pass-through check."""

    tolerance: float
    min_aborts: float
    cells: list[CellResult] = field(default_factory=list)
    #: workloads whose all-zero-plan database was NOT byte-identical
    #: to the uninjected run (must stay empty)
    passthrough_failures: list[str] = field(default_factory=list)
    #: workloads skipped because the clean run scored no site
    unscored: list[str] = field(default_factory=list)
    #: replay logs dumped for diverging cells (``artifact_dir`` was set)
    artifacts: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.passthrough_failures and all(
            c.passed(self.tolerance) for c in self.cells
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "min_aborts": self.min_aborts,
            "passthrough_failures": self.passthrough_failures,
            "unscored": self.unscored,
            "artifacts": self.artifacts,
            "cells": [
                {
                    "workload": c.workload,
                    "label": c.label,
                    "plan": c.plan,
                    "checked": c.checked,
                    "flips": c.flips,
                    "lost_sites": c.lost_sites,
                    "ok": c.passed(self.tolerance),
                }
                for c in self.cells
            ],
        }

    def render(self) -> str:
        lines = ["=== chaos: degradation invariants ==="]
        for c in self.cells:
            verdict = "ok" if c.passed(self.tolerance) else "FLIP"
            lines.append(
                f"{c.workload:22s} {c.label:18s} "
                f"checks={c.checked:3d} mismatches={c.mismatches:2d}  "
                f"{verdict}"
            )
            for flip in c.flips:
                lines.append(f"    ! {flip}")
            for site in c.lost_sites:
                lines.append(f"    ! site vanished: {site}")
        for wl in self.unscored:
            lines.append(f"{wl:22s} {'(no scored sites)':18s} skipped")
        lines.append("")
        pt = ("FAILED for " + ", ".join(self.passthrough_failures)
              if self.passthrough_failures else "ok (byte-identical)")
        lines.append(f"zero-plan pass-through: {pt}")
        for path in self.artifacts:
            lines.append(f"replay artifact: {path}")
        lines.append(f"verdict: {'PASS' if self.ok else 'FAIL'} "
                     f"(tolerance {self.tolerance:.0%})")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# signatures
# ---------------------------------------------------------------------------


def signature(profile: Profile, min_aborts: float = 5.0) -> dict[str, SiteSignature]:
    """Per-site signatures for every TM site with enough sampled aborts."""
    tree = DecisionTree()
    out: dict[str, SiteSignature] = {}
    for cs in profile.cs_reports():
        if cs.aborts < min_aborts:
            continue
        weights = {c: w for c, w in cs.weight_by_class.items() if w > 0}
        if not weights:
            continue
        causes = {c: w for c, w in weights.items() if c != "other"}
        pool = causes or weights
        dominant = max(pool, key=lambda c: pool[c])
        leaf = _leaf_of(tree.analyze_cs(cs))
        out[cs.name] = SiteSignature(
            site=cs.name, dominant=dominant, leaf=leaf, aborts=cs.aborts,
        )
    return out


def compare(clean: dict[str, SiteSignature],
            degraded: dict[str, SiteSignature],
            cell: CellResult) -> None:
    """Score ``degraded`` against the clean baseline into ``cell``.

    Every clean scored site contributes two checks (dominant class,
    tree leaf); a site the degraded profile lost entirely counts as one
    mismatch.  The degraded side is *not* re-gated on ``min_aborts`` —
    losing samples is the point — only on existence.
    """
    for name, base in clean.items():
        if name not in degraded:
            cell.checked += 1
            cell.lost_sites.append(name)
            continue
        got = degraded[name]
        cell.checked += 2
        if got.dominant != base.dominant:
            cell.flips.append(
                f"{cell.workload}/{name}: dominant abort class "
                f"{base.dominant} -> {got.dominant}"
            )
        if got.leaf != base.leaf:
            cell.flips.append(
                f"{cell.workload}/{name}: decision-tree leaf "
                f"{base.leaf} -> {got.leaf}"
            )


def degraded_signature(profile: Profile) -> dict[str, SiteSignature]:
    """Signatures with the abort gate off (loss already thinned them)."""
    return signature(profile, min_aborts=1.0)


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


def _profile_bytes(profile: Profile) -> bytes:
    return json.dumps(profile_to_dict(profile), sort_keys=True).encode()


def run_sweep(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    loss_rates: tuple[float, ...] = DEFAULT_LOSS_RATES,
    n_threads: int = 4,
    scale: float = 1.0,
    seed: int = 0,
    fault_seed: int = 1,
    tolerance: float = 0.0,
    min_aborts: float = 5.0,
    lbr_keep_max: int = 2,
    check_passthrough: bool = True,
    artifact_dir: str | None = None,
) -> ChaosReport:
    """Run the degradation-invariant sweep and return the report.

    Each workload is profiled clean once, then once per sweep cell:
    every sample-loss rate in ``loss_rates`` plus one LBR-truncation
    plan (``lbr_truncate_rate=1.0, lbr_keep_max=lbr_keep_max``).  All
    runs share ``seed`` so the simulated machine is identical; only the
    observation layer differs.

    With ``artifact_dir``, every diverging cell (signature flip or
    pass-through failure) re-runs with :mod:`repro.replay` recording on
    and dumps the observation stream as a ``.rlog`` next to the report;
    the happy path records nothing.
    """
    from ..experiments.runner import run_workload

    def dump(name: str, wl: str, plan: FaultPlan | None) -> None:
        if artifact_dir is None:
            return
        from ..replay.artifacts import dump_run_artifact

        path = dump_run_artifact(
            artifact_dir, name, wl, n_threads=n_threads, scale=scale,
            seed=seed, faults=plan,
        )
        report.artifacts.append(str(path))

    report = ChaosReport(tolerance=tolerance, min_aborts=min_aborts)
    for wl in workloads:
        clean = run_workload(wl, n_threads=n_threads, scale=scale,
                             seed=seed, profile=True)
        assert clean.profile is not None
        base_sig = signature(clean.profile, min_aborts=min_aborts)
        if check_passthrough:
            zero = run_workload(wl, n_threads=n_threads, scale=scale,
                                seed=seed, profile=True,
                                faults=FaultPlan(seed=fault_seed))
            assert zero.profile is not None
            if (_profile_bytes(zero.profile)
                    != _profile_bytes(clean.profile)):
                report.passthrough_failures.append(wl)
                dump(f"{wl}-clean", wl, None)
                dump(f"{wl}-zero-plan", wl, FaultPlan(seed=fault_seed))
        if not base_sig:
            report.unscored.append(wl)
            continue
        plans = [
            (f"drop={rate:.2f}", FaultPlan(seed=fault_seed,
                                           drop_rate=rate))
            for rate in loss_rates
        ]
        plans.append((
            f"lbr-keep<={lbr_keep_max}",
            FaultPlan(seed=fault_seed, lbr_truncate_rate=1.0,
                      lbr_keep_max=lbr_keep_max),
        ))
        for label, plan in plans:
            out = run_workload(wl, n_threads=n_threads, scale=scale,
                               seed=seed, profile=True, faults=plan)
            assert out.profile is not None
            cell = CellResult(workload=wl, label=label,
                              plan=plan.to_dict())
            compare(base_sig, degraded_signature(out.profile), cell)
            report.cells.append(cell)
            if not cell.passed(tolerance):
                dump(f"{wl}-{label}", wl, plan)
    return report
