"""The replay log: a versioned, append-only record of every observation.

One log captures, in exact delivery order, everything a profiling run's
:class:`~repro.core.profiler.TxSampler` consumed through the observation
boundary — each PMU sample record (which carries the LBR snapshot, the
sampled core's clock read in ``ts``, and the TSX abort code in
``abort_eax``) together with the RTM state word the runtime's query
function returned at that instant.  Fault-plan perturbations need no
events of their own: the log records the *post-injection* stream, the
same records the live profiler received, so a faulted run replays
without a fault injector (or a simulator) in the loop.

On-disk form — line-oriented JSON, written strictly append-only::

    {"format": "txsampler-replay", "version": 1, "meta": {...}}   header
    {"s": 0, "c": <crc32>, "e": [state_word, {sample...}]}        events
    {"s": 1, "c": <crc32>, "e": [state_word, {sample...}]}
    ...
    {"manifest": {"events": N, "digest": "...", "site_names": {...}}}

Every event line carries a CRC-32 of its canonical event JSON; the
trailing manifest seals the log with the event count, a running SHA-256
digest over all event payloads, and the end-of-run metadata (the
critical-section symbol table) that only exists once the run finishes.
Like the campaign result store, the reader is torn-tail tolerant: a
truncated, garbled, or checksum-failing line ends the parse — everything
before it is intact and replayable, and :attr:`ReplayLog.complete`
records whether the manifest sealed what was read.

Sample encoding is compact: single-letter keys, default-valued fields
omitted, LBR entries as 5-element arrays (junk entries injected by a
corruption fault plan are preserved verbatim so replay quarantines them
exactly like the live run did).
"""

from __future__ import annotations

import json
import zlib
from hashlib import sha256
from pathlib import Path
from typing import Any

from ..pmu.lbr import LbrEntry
from ..pmu.sampling import Sample

FORMAT = "txsampler-replay"
VERSION = 1

#: conventional file suffix for replay logs
SUFFIX = ".rlog"


class ReplayFormatError(ValueError):
    """The file is not a replay log this version can read."""


def _canonical(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# sample codec
# ---------------------------------------------------------------------------


def encode_sample(s: Sample) -> dict[str, Any]:
    """Compact dict form of one sample; defaults are omitted."""
    doc: dict[str, Any] = {
        "e": s.event,
        "t": s.tid,
        "ts": s.ts,
        "ip": s.ip,
    }
    if s.ustack:
        doc["us"] = list(s.ustack)
    if s.resume_ip:
        doc["ri"] = s.resume_ip
    if s.lbr:
        doc["l"] = [
            list(entry) if isinstance(entry, LbrEntry) else entry
            for entry in s.lbr
        ]
    if s.eff_addr is not None:
        doc["a"] = s.eff_addr
    if s.is_store:
        doc["st"] = 1
    if s.weight:
        doc["w"] = s.weight
    if s.abort_eax:
        doc["x"] = s.abort_eax
    return doc


def decode_sample(doc: dict[str, Any]) -> Sample:
    """Inverse of :func:`encode_sample`.

    Non-list LBR entries (the junk a corruption fault plan plants where
    an :class:`LbrEntry` belongs) decode to themselves, so the replayed
    profiler's ``bad-lbr`` quarantine check sees exactly what the live
    one saw.
    """
    lbr: tuple[Any, ...] = tuple(
        LbrEntry(entry[0], entry[1], entry[2], entry[3], entry[4])
        if isinstance(entry, list) else entry
        for entry in doc.get("l", ())
    )
    return Sample(
        event=doc["e"],
        tid=doc["t"],
        ts=doc["ts"],
        ip=doc["ip"],
        ustack=tuple(doc.get("us", ())),
        resume_ip=doc.get("ri", 0),
        lbr=lbr,
        eff_addr=doc.get("a"),
        is_store=bool(doc.get("st", 0)),
        weight=doc.get("w", 0),
        abort_eax=doc.get("x", 0),
    )


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


class ReplayWriter:
    """Builds one replay log, strictly append-only.

    ``meta`` is the front-matter the replayer needs *before* events make
    sense: thread count, sampling periods, the profiler's contention
    threshold, and free-form provenance (workload name, seed, fault
    plan).  End-of-run metadata — the critical-section symbol table —
    goes into the sealing manifest instead, because it does not exist
    until the run finishes.
    """

    def __init__(self, meta: dict[str, Any]) -> None:
        self.meta = dict(meta)
        self._lines: list[str] = [
            _canonical({"format": FORMAT, "version": VERSION,
                        "meta": self.meta})
        ]
        self._digest = sha256()
        self._events = 0
        self._sealed = False

    def append(self, state_word: int, sample: Sample) -> None:
        """Record one observation event (state-word read + sample)."""
        if self._sealed:
            raise ReplayFormatError("log already sealed")
        payload = _canonical([state_word, encode_sample(sample)])
        self._digest.update(payload.encode())
        self._lines.append(_canonical({
            "s": self._events,
            "c": zlib.crc32(payload.encode()),
            "e": json.loads(payload),
        }))
        self._events += 1

    def seal(self, site_names: dict[int, str] | None = None,
             summary: dict[str, Any] | None = None) -> None:
        """Append the manifest line; no events may follow."""
        if self._sealed:
            return
        manifest: dict[str, Any] = {
            "events": self._events,
            "digest": self._digest.hexdigest(),
            "site_names": {str(k): v
                           for k, v in (site_names or {}).items()},
        }
        if summary:
            manifest["summary"] = summary
        self._lines.append(_canonical({"manifest": manifest}))
        self._sealed = True

    def dumps(self) -> str:
        """The whole log as text (one trailing newline)."""
        return "\n".join(self._lines) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the log; returns the path written."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    def __len__(self) -> int:
        return self._events


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------


class ReplayLog:
    """One parsed replay log."""

    def __init__(self, meta: dict[str, Any]) -> None:
        self.meta = meta
        #: (state_word, sample) in exact live delivery order
        self.events: list[tuple[int, Sample]] = []
        #: TM_BEGIN call-site address -> section name (from the manifest)
        self.site_names: dict[int, str] = {}
        #: run summary the recorder chose to seal in (informational)
        self.summary: dict[str, Any] = {}
        #: True when the manifest was present and its digest matched
        self.complete = False
        #: lines discarded as a torn/corrupt tail
        self.torn_lines = 0

    @property
    def n_threads(self) -> int:
        return int(self.meta.get("n_threads", 0))

    @property
    def periods(self) -> dict[str, int]:
        return {str(k): int(v)
                for k, v in self.meta.get("periods", {}).items()}

    @property
    def contention_threshold(self) -> int:
        return int(self.meta.get("contention_threshold", 50_000))


def loads_replay(text: str) -> ReplayLog:
    """Parse a replay log from text, tolerating a torn tail."""
    lines = text.split("\n")
    if not lines or not lines[0].strip():
        raise ReplayFormatError("empty replay log")
    try:
        header = json.loads(lines[0])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ReplayFormatError(f"unreadable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise ReplayFormatError(
            f"not a {FORMAT} document "
            f"(format={header.get('format') if isinstance(header, dict) else header!r})"
        )
    if int(header.get("version", 0)) > VERSION:
        raise ReplayFormatError(
            f"log version {header['version']} is newer than this "
            f"reader ({VERSION})"
        )
    log = ReplayLog(dict(header.get("meta", {})))
    digest = sha256()
    manifest: dict[str, Any] | None = None
    body = [ln for ln in lines[1:]]
    for i, line in enumerate(body):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            log.torn_lines = sum(1 for ln in body[i:] if ln.strip())
            break
        if not isinstance(entry, dict):
            log.torn_lines = sum(1 for ln in body[i:] if ln.strip())
            break
        if "manifest" in entry:
            manifest = entry["manifest"]
            break
        payload = _canonical(entry.get("e"))
        if (entry.get("s") != len(log.events)
                or zlib.crc32(payload.encode()) != entry.get("c")):
            # a flipped bit inside the line: same containment as a torn
            # tail — everything before this line is intact
            log.torn_lines = sum(1 for ln in body[i:] if ln.strip())
            break
        digest.update(payload.encode())
        state_word, sample_doc = entry["e"]
        try:
            sample = decode_sample(sample_doc)
        except (KeyError, IndexError, TypeError):
            log.torn_lines = sum(1 for ln in body[i:] if ln.strip())
            break
        log.events.append((int(state_word), sample))
    if manifest is not None:
        sealed_events = int(manifest.get("events", -1))
        sealed_digest = manifest.get("digest")
        if (sealed_events == len(log.events)
                and sealed_digest == digest.hexdigest()):
            log.complete = True
            log.site_names = {
                int(k): str(v)
                for k, v in manifest.get("site_names", {}).items()
            }
            log.summary = dict(manifest.get("summary", {}))
    return log


def load_replay(path: str | Path) -> ReplayLog:
    """Load one replay log file.

    Raises :class:`ReplayFormatError` — with the offending path in the
    message — for a missing or non-replay file; a torn tail is not an
    error (the intact prefix is returned with ``complete=False``).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise ReplayFormatError(f"{path}: no such replay log") from None
    except OSError as exc:
        raise ReplayFormatError(f"{path}: unreadable ({exc})") from exc
    try:
        return loads_replay(text)
    except ReplayFormatError as exc:
        raise ReplayFormatError(f"{path}: {exc}") from None
