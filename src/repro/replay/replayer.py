"""The deterministic replayer: log in, bit-identical profile out.

Replay rebuilds the full profile database with **no simulator in the
loop**: a fresh :class:`~repro.core.profiler.TxSampler` is fed the
recorded stream through the same ``on_sample`` entry point the live
engine used, and the RTM query function is stood in by a one-word stub
primed with the recorded state before each delivery.  Everything the
handler computes — context reconstruction, quarantine decisions, CCT
updates, shadow-memory verdicts — is a pure function of (sample, state
word, handler state), so delivering the same records in the same order
yields the same database, byte for byte.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, cast

from ..cct.tree import new_root
from ..core.analyzer import Profile
from ..core.profiler import TxSampler
from .log import ReplayLog, load_replay

if TYPE_CHECKING:  # pragma: no cover
    from ..rtm.runtime import RtmRuntime


class _RecordedStateSource:
    """Stands in for the RTM runtime's query function during replay:
    returns the state word that was recorded alongside the sample about
    to be delivered."""

    def __init__(self) -> None:
        self.word = 0

    def query_state(self, tid: int) -> int:
        return self.word


def replay_profile(log: ReplayLog) -> Profile:
    """Reconstruct the profile database from a replay log alone."""
    if log.n_threads <= 0:
        raise ValueError(
            "replay log carries no thread count — header meta is "
            f"missing or damaged ({log.meta!r})"
        )
    profiler = TxSampler(contention_threshold=log.contention_threshold)
    profiler.roots = [new_root() for _ in range(log.n_threads)]
    source = _RecordedStateSource()
    # duck-typed: the handler only ever calls ``rtm.query_state``
    profiler.rtm = cast("RtmRuntime", source)
    for state_word, sample in log.events:
        source.word = state_word
        profiler.on_sample(sample)
    return profiler.build_profile(
        n_threads=log.n_threads,
        periods=log.periods,
        site_names=log.site_names,
    )


def replay_file(path: str | Path) -> tuple[ReplayLog, Profile]:
    """Load a replay log file and reconstruct its profile."""
    log = load_replay(path)
    return log, replay_profile(log)
