"""Record/replay of the observation stream (ROADMAP item 5, the rr model).

The profiler is defined entirely by what it observes: PMU samples
carrying LBR snapshots and clock reads, the RTM state word, and — under
a fault plan — the injector's perturbations of all of the above.
:mod:`repro.replay` captures that stream at the observation boundary
into a versioned, checksummed, append-only log
(:class:`~repro.replay.log.ReplayWriter`), and deterministically
reconstructs the full profile database from the log alone
(:func:`~repro.replay.replayer.replay_profile`) — bit-identical to the
live run, no simulator in the loop.  :mod:`~repro.replay.diff` renders
the time-travel comparison pane between any two profiles.
"""

from .diff import ProfileDiff, diff_profiles
from .log import (
    SUFFIX,
    ReplayFormatError,
    ReplayLog,
    ReplayWriter,
    load_replay,
    loads_replay,
)
from .recorder import ObservationRecorder
from .replayer import replay_file, replay_profile

__all__ = [
    "SUFFIX",
    "ObservationRecorder",
    "ProfileDiff",
    "ReplayFormatError",
    "ReplayLog",
    "ReplayWriter",
    "diff_profiles",
    "load_replay",
    "loads_replay",
    "replay_file",
    "replay_profile",
]
