"""Time-travel profile diffing: what changed between two databases.

Given two profiles — live vs. replayed, clean vs. degraded, yesterday's
cached campaign result vs. today's — the diff reports, per critical
section, the abort-class deltas, the decision-tree leaf changes, and
the Equation-2 time-decomposition deltas, plus program-summary and
data-quality deltas.  A diff of a run against its own replay must be
empty: that is the replay acceptance invariant, and ``repro diff``
exits non-zero on any delta so CI can assert it.

Comparisons are exact, not tolerance-based: both sides are derived by
the same deterministic pipeline, so a nonzero delta is a real
behavioural difference, not float noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.analyzer import CsReport, Profile
from ..core.decision_tree import DecisionTree

#: per-site time/event metrics compared by the diff, in render order
_SITE_METRICS = ("T", "T_tx", "T_fb", "T_wait", "T_oh",
                 "aborts", "commits", "abort_weight",
                 "true_sharing", "false_sharing")

_SUMMARY_METRICS = ("W", "T", "T_tx", "T_fb", "T_wait", "T_oh",
                    "est_aborts", "est_commits")


def _leaves(cs: CsReport) -> tuple[str, ...]:
    """The decision-tree traversal's leaves for one section."""
    return tuple(leaf.value for leaf in DecisionTree().analyze_cs(cs).leaves)


@dataclass
class SiteDiff:
    """Everything that changed at one TM_BEGIN site."""

    site: int
    name: str
    #: metric -> (a, b) for metrics whose values differ
    metrics: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: abort class -> (a_weight, b_weight) where the sampled weight moved
    abort_classes: dict[str, tuple[float, float]] = field(
        default_factory=dict)
    #: decision-tree leaves, present only when the traversals diverge
    leaves_a: tuple[str, ...] = ()
    leaves_b: tuple[str, ...] = ()

    @property
    def leaf_changed(self) -> bool:
        return self.leaves_a != self.leaves_b

    @property
    def empty(self) -> bool:
        return (not self.metrics and not self.abort_classes
                and not self.leaf_changed)

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"site": self.site, "name": self.name}
        if self.metrics:
            doc["metrics"] = {k: list(v) for k, v in self.metrics.items()}
        if self.abort_classes:
            doc["abort_classes"] = {
                k: list(v) for k, v in self.abort_classes.items()
            }
        if self.leaf_changed:
            doc["leaves"] = [list(self.leaves_a), list(self.leaves_b)]
        return doc


@dataclass
class ProfileDiff:
    """The full comparison pane between profile A and profile B."""

    label_a: str
    label_b: str
    #: summary metric -> (a, b) where the program totals differ
    summary: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: per-site changes, hottest (by A's T, then B's) first
    sites: list[SiteDiff] = field(default_factory=list)
    #: section names present only on one side
    only_a: list[str] = field(default_factory=list)
    only_b: list[str] = field(default_factory=list)
    #: data-quality deltas: field -> (a, b)
    quality: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: quarantine reason -> (a_count, b_count) where the counts differ
    quarantined: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        """True when the two profiles agree on every compared quantity."""
        return not (self.summary or self.sites or self.only_a
                    or self.only_b or self.quality or self.quarantined)

    @property
    def delta_count(self) -> int:
        return (len(self.summary) + len(self.only_a) + len(self.only_b)
                + len(self.quality) + len(self.quarantined)
                + sum(len(s.metrics) + len(s.abort_classes)
                      + (1 if s.leaf_changed else 0)
                      for s in self.sites))

    def to_dict(self) -> dict[str, Any]:
        return {
            "a": self.label_a,
            "b": self.label_b,
            "identical": self.identical,
            "deltas": self.delta_count,
            "summary": {k: list(v) for k, v in self.summary.items()},
            "sites": [s.to_dict() for s in self.sites],
            "only_a": self.only_a,
            "only_b": self.only_b,
            "quality": {k: list(v) for k, v in self.quality.items()},
            "quarantined": {k: list(v)
                            for k, v in self.quarantined.items()},
        }

    def render(self) -> str:
        lines = [f"=== profile diff: {self.label_a} vs {self.label_b} ==="]
        if self.identical:
            lines.append("identical: zero deltas")
            return "\n".join(lines)
        lines.append(f"{self.delta_count} delta(s)")
        if self.summary:
            lines.append("-- program summary --")
            for metric, (a, b) in self.summary.items():
                lines.append(
                    f"  {metric:12s} {a:14.1f} -> {b:14.1f} "
                    f"({b - a:+.1f})"
                )
        for name in self.only_a:
            lines.append(f"-- site only in {self.label_a}: {name}")
        for name in self.only_b:
            lines.append(f"-- site only in {self.label_b}: {name}")
        for site in self.sites:
            lines.append(f"-- site {site.name} --")
            if site.leaf_changed:
                lines.append(
                    f"  decision-tree leaves: "
                    f"{', '.join(site.leaves_a) or '(none)'} -> "
                    f"{', '.join(site.leaves_b) or '(none)'}"
                )
            for cls, (a, b) in site.abort_classes.items():
                lines.append(
                    f"  abort weight [{cls:9s}] {a:12.1f} -> {b:12.1f} "
                    f"({b - a:+.1f})"
                )
            for metric, (a, b) in site.metrics.items():
                lines.append(
                    f"  {metric:12s} {a:14.1f} -> {b:14.1f} "
                    f"({b - a:+.1f})"
                )
        if self.quality:
            lines.append("-- data quality --")
            for metric, (a, b) in self.quality.items():
                lines.append(f"  {metric:24s} {a:10.4f} -> {b:10.4f}")
        if self.quarantined:
            lines.append("-- quarantine --")
            for reason, (qa, qb) in self.quarantined.items():
                lines.append(f"  {reason:24s} {qa:6d} -> {qb:6d}")
        return "\n".join(lines)


def diff_profiles(a: Profile, b: Profile,
                  label_a: str = "a", label_b: str = "b") -> ProfileDiff:
    """Compare two profile databases into a :class:`ProfileDiff`."""
    diff = ProfileDiff(label_a=label_a, label_b=label_b)

    sa, sb = a.summary(), b.summary()
    for metric in _SUMMARY_METRICS:
        va, vb = getattr(sa, metric), getattr(sb, metric)
        if va != vb:
            diff.summary[metric] = (va, vb)

    reps_a = {cs.site: cs for cs in a.cs_reports()}
    reps_b = {cs.site: cs for cs in b.cs_reports()}
    for site, cs in reps_a.items():
        if site not in reps_b:
            diff.only_a.append(cs.name)
    for site, cs in reps_b.items():
        if site not in reps_a:
            diff.only_b.append(cs.name)
    for site in reps_a.keys() & reps_b.keys():
        ca, cb = reps_a[site], reps_b[site]
        sd = SiteDiff(site=site, name=ca.name)
        for metric in _SITE_METRICS:
            va, vb = getattr(ca, metric), getattr(cb, metric)
            if va != vb:
                sd.metrics[metric] = (va, vb)
        classes = set(ca.weight_by_class) | set(cb.weight_by_class)
        for cls in sorted(classes):
            wa = ca.weight_by_class.get(cls, 0.0)
            wb = cb.weight_by_class.get(cls, 0.0)
            if wa != wb:
                sd.abort_classes[cls] = (wa, wb)
        la, lb = _leaves(ca), _leaves(cb)
        if la != lb:
            sd.leaves_a, sd.leaves_b = la, lb
        if not sd.empty:
            diff.sites.append(sd)
    diff.sites.sort(
        key=lambda s: (reps_a[s.site].T, reps_b[s.site].T), reverse=True
    )

    for metric in ("coverage", "attribution_confidence"):
        va, vb = getattr(a, metric), getattr(b, metric)
        if va != vb:
            diff.quality[metric] = (va, vb)
    for metric in ("samples_kept", "truncated_paths",
                   "low_confidence_paths"):
        ia, ib = getattr(a, metric), getattr(b, metric)
        if ia != ib:
            diff.quality[metric] = (float(ia), float(ib))
    reasons = set(a.quarantined) | set(b.quarantined)
    for reason in sorted(reasons):
        qa = a.quarantined.get(reason, 0)
        qb = b.quarantined.get(reason, 0)
        if qa != qb:
            diff.quarantined[reason] = (qa, qb)
    return diff
