"""Divergence artifacts: a replay log for every failed invariant.

When ``repro chaos`` finds a degraded profile whose conclusions flipped,
or crossval finds the static predictor and the dynamic profiler
disagreeing, the interesting thing is no longer the verdict — it is the
observation stream that produced it.  Since every run is deterministic,
the failing run can be *re*-executed with recording switched on and the
resulting log dumped next to the report: the happy path pays nothing,
and a failure leaves behind an artifact that replays (and time-travel
diffs) offline, with no simulator.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from .log import SUFFIX

#: the default artifact directory, created only when a divergence occurs
DEFAULT_ARTIFACT_DIR = ".repro-artifacts"


def _safe(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


def dump_run_artifact(
    artifact_dir: str | Path,
    name: str,
    workload: str,
    *,
    n_threads: int,
    scale: float,
    seed: int,
    config: Any = None,
    faults: Any = None,
    contention_threshold: int = 50_000,
) -> Path:
    """Re-run one profiled workload with recording on; write the log.

    Determinism makes this an exact reproduction of the original run —
    same seed, same config, same fault plan ⇒ the same observation
    stream the diverging run consumed.  Returns the written path
    (``<artifact_dir>/<name>.rlog``).
    """
    from ..experiments.runner import run_workload

    out = run_workload(
        workload, n_threads=n_threads, scale=scale, seed=seed,
        config=config, profile=True, record=True, faults=faults,
        contention_threshold=contention_threshold,
    )
    assert out.replay_log is not None
    path = Path(artifact_dir) / f"{_safe(name)}{SUFFIX}"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(out.replay_log)
    return path
