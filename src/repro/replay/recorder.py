"""The observation recorder: injection's dual at the same seam.

PR 5 put :class:`~repro.faults.inject.FaultInjector` on the observation
boundary — the point in :meth:`Simulator._deliver_sample` where the
machine's interrupt effects are done and only the *record* the profiler
will see remains.  Recording hooks the very same point, one step later:
each sample that survives (or is produced by) the fault layer is
captured together with the RTM state word the runtime would report for
its thread, *before* the profiler consumes it.

That placement is what makes replay exact:

* post-injection means fault-plan perturbations are baked into the
  stream — a faulted run replays without the injector in the loop;
* pre-delivery plus a synchronous handler means the state word recorded
  here is bit-for-bit the word ``query_state`` returns inside
  :meth:`TxSampler._on_cycles` — nothing advances the machine between
  the two reads.

The recorder never touches the simulated machine: like the paper's
query function, reading the state word costs the *application* nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..pmu.sampling import Sample
from .log import ReplayWriter

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Simulator


class ObservationRecorder:
    """Captures the observation stream of one profiled run.

    Construct with optional provenance (workload name, seed, fault
    plan…), pass to :class:`~repro.sim.engine.Simulator`, run, then
    :meth:`finalize` to seal the log.
    """

    def __init__(self, provenance: dict[str, Any] | None = None) -> None:
        self.provenance = dict(provenance or {})
        self.writer: ReplayWriter | None = None
        self._sim: Simulator | None = None

    # -- wiring (mirrors TxSampler.attach) ---------------------------------

    def attach(self, sim: Simulator) -> None:
        """Called by the simulator at construction."""
        self._sim = sim
        meta: dict[str, Any] = {
            "n_threads": len(sim.threads),
            "periods": dict(sim.config.sample_periods),
            "contention_threshold": getattr(
                sim.profiler, "contention_threshold", 50_000
            ),
        }
        meta.update(self.provenance)
        self.writer = ReplayWriter(meta)

    # -- the capture hook --------------------------------------------------

    def record(self, sample: Sample) -> None:
        """Record one post-injection observation event."""
        sim = self._sim
        writer = self.writer
        if sim is None or writer is None:
            raise RuntimeError("recorder was never attached")
        # A corruption fault can plant an out-of-range tid; the live
        # profiler quarantines such a record before ever querying state,
        # so any placeholder word replays identically.
        if 0 <= sample.tid < len(sim.threads):
            state = sim.rtm.query_state(sample.tid)
        else:
            state = 0
        writer.append(state, sample)

    # -- sealing -----------------------------------------------------------

    def finalize(self, summary: dict[str, Any] | None = None) -> ReplayWriter:
        """Seal the log with end-of-run metadata; returns the writer."""
        sim = self._sim
        writer = self.writer
        if sim is None or writer is None:
            raise RuntimeError("recorder was never attached")
        writer.seal(site_names=dict(sim.rtm.site_names), summary=summary)
        return writer
