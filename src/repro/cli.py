"""Command-line interface — the analogue of the paper artifact's scripts.

The PPoPP artifact ships ``measure_overhead.py``, ``measure_speedup.py``
and ``generate_profile.py``; this CLI mirrors them (plus the figure
harnesses, a viewer for saved profile databases, the ``repro.obs``
event tracer, and the ``repro.campaign`` batch orchestrator)::

    python -m repro list
    python -m repro check micro_capacity --json
    python -m repro run dedup --guidance --save-db dedup.json
    python -m repro record dedup --out dedup.rlog
    python -m repro replay dedup.rlog --save-db dedup-replayed.json
    python -m repro diff dedup.json dedup.rlog
    python -m repro trace dedup --trace-out dedup-trace.json
    python -m repro view dedup.json
    python -m repro chaos --rates 0.25,0.5
    python -m repro measure-overhead vacation histo
    python -m repro measure-speedup all
    python -m repro table1 | figure7 | figure8 | correctness
    python -m repro campaign figure8 --jobs 8

All commands accept ``--threads``, ``--scale`` and ``--seed``; the
global ``-v``/``-q`` flags (before the subcommand) adjust verbosity.

The measurement commands (``measure-overhead``, ``measure-speedup``,
``table1``, ``figure7``, ``figure8``) submit their runs through the
campaign layer: results are cached content-addressed under
``.repro-cache/`` (override with ``--cache-dir`` or ``REPRO_CACHE_DIR``,
disable with ``--no-cache``), re-runs are incremental, and ``--jobs N``
executes independent runs on N worker processes.  The campaign summary
(cache hits, retries) goes to stderr so stdout stays byte-identical to
the serial output.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys

from . import htmbench
from .campaign.scheduler import CampaignError, CampaignRunner, RetryPolicy
from .campaign.store import MemoryStore, ResultStore
from .campaign.suites import (
    SUITES,
    SuiteError,
    build_campaign,
    clomp_rows_from_records,
    figure8_rows_from_records,
    overhead_rows_from_records,
    speedup_rows_from_records,
)
from .core import DecisionTree
from .core.export import (
    ProfileFormatError,
    load_profile,
    load_run_metrics,
    save_profile,
)
from .core.report import render_full_report, render_self_diagnostics
from .experiments.runner import cached_run, run_workload
from .obs.metrics import format_snapshot
from .obs.selfprof import diagnose
from .sim.config import DEFAULT_THREADS

_log = logging.getLogger("repro.cli")


class _ConsoleHandler(logging.Handler):
    """A ``print()``-compatible handler: bare messages, INFO and below to
    stdout, ERROR and above to stderr.  Streams are resolved per record,
    so ``contextlib.redirect_stdout`` (and test capture) keeps working.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            stream = (sys.stderr if record.levelno >= logging.ERROR
                      else sys.stdout)
            stream.write(record.getMessage() + "\n")
        except Exception:  # pragma: no cover - defensive, as logging does
            self.handleError(record)


def _setup_logging(verbose: bool, quiet: bool) -> None:
    if not any(isinstance(h, _ConsoleHandler) for h in _log.handlers):
        _log.addHandler(_ConsoleHandler())
    _log.propagate = False
    if quiet:
        _log.setLevel(logging.ERROR)
    elif verbose:
        _log.setLevel(logging.DEBUG)
    else:
        _log.setLevel(logging.INFO)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threads", type=int, default=DEFAULT_THREADS,
                        help="simulated thread count "
                             f"(default {DEFAULT_THREADS})")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic seed (default 0)")


def _add_campaign_flags(parser: argparse.ArgumentParser,
                        jobs_default: int = 1) -> None:
    """Flags shared by every command that submits runs through the
    campaign layer."""
    parser.add_argument("--jobs", type=int, default=jobs_default,
                        help="worker processes for independent runs "
                             f"(default {jobs_default}; 1 = serial "
                             "in-process)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result-store directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="keep results in memory only (nothing "
                             "persisted, runs still deduplicated)")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute everything, superseding any "
                             "cached records")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TxSampler reproduction: profile HTM programs on the "
                    "simulated TSX substrate",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also emit debug detail")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress normal output (errors only)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the HTMBench workloads")

    p = sub.add_parser("check",
                       help="static TSX-lint (repro.analysis): predict "
                            "abort causes without running, optionally "
                            "cross-validated against the profiler")
    p.add_argument("workloads", nargs="+",
                   help="workload names, a suite name, or 'all'")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit one JSON document instead of text panes")
    p.add_argument("--fail-on", choices=["info", "warning", "error"],
                   default="error", metavar="SEVERITY",
                   help="exit 1 on findings at or above this severity "
                        "that the workload is not documented to trigger "
                        "(default: error)")
    p.add_argument("--static-only", action="store_true",
                   help="skip the dynamic cross-validation run")
    p.add_argument("--races", action="store_true",
                   help="run the interprocedural lockset race pass "
                        "(repro.analysis.races): asymmetric-fallback-race, "
                        "elision-unsafe-access, lock-footprint-conflict")
    p.add_argument("--predict-tree", action="store_true", dest="predict_tree",
                   help="statically predict Figure 1 decision-tree leaves "
                        "per TM_BEGIN site; with cross-validation, score "
                        "them against the dynamic traversal")
    p.add_argument("--mc", action="store_true",
                   help="run the bounded interleaving model checker "
                        "(repro.analysis.mc): DPOR over 2-4 concurrent "
                        "transactions, emitting the static abort graph "
                        "(who-aborts-whom, convoy cycles, fallback "
                        "serialization depth) with witness interleavings")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="suppress findings recorded in this baseline JSON "
                        "(see --write-baseline); only *new* findings "
                        "count toward --fail-on")
    p.add_argument("--write-baseline", action="store_true",
                   dest="write_baseline",
                   help="(re)write --baseline PATH from the current "
                        "findings instead of checking against it")
    p.add_argument("--sarif", metavar="PATH",
                   help="also write every finding as a SARIF 2.1.0 log "
                        "(GitHub code-scanning compatible)")
    p.add_argument("--artifact-dir", metavar="DIR", default=None,
                   dest="artifact_dir",
                   help="when cross-validation disagrees, dump a replay "
                        "log of the dynamic run into DIR")
    p.add_argument("--no-dataflow", action="store_true", dest="no_dataflow",
                   help="skip the fixpoint dataflow pass (conditional "
                        "capacity, witness paths, loop intervals)")
    p.add_argument("--incremental", action="store_true",
                   help="cache content-addressed per-function dataflow "
                        "summaries in the result store and re-analyze "
                        "only functions whose IR changed")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="summary-store directory for --incremental "
                        "(default: $REPRO_CACHE_DIR or .repro-cache)")
    _add_common(p)

    p = sub.add_parser("run", help="run a workload under TxSampler "
                                   "(generate_profile.py analogue)")
    p.add_argument("workload")
    p.add_argument("--guidance", action="store_true",
                   help="walk the Figure 1 decision tree")
    p.add_argument("--save-db", metavar="PATH",
                   help="write the profile database (JSON)")
    p.add_argument("--no-report", action="store_true",
                   help="suppress the textual report")
    p.add_argument("--trace-out", metavar="PATH",
                   help="record engine events and write a Chrome trace "
                        "(chrome://tracing / Perfetto)")
    p.add_argument("--metrics", action="store_true",
                   help="collect run metrics and print them with the "
                        "profiler self-diagnostics")
    _add_common(p)

    p = sub.add_parser(
        "record",
        help="run a workload under TxSampler while recording the "
             "observation stream (repro.replay) into a replay log")
    p.add_argument("workload")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="replay-log path (default <workload>.rlog)")
    p.add_argument("--save-db", metavar="PATH",
                   help="also write the live profile database (JSON)")
    p.add_argument("--fault-plan", metavar="JSON", default=None,
                   help="record under this fault plan "
                        "(repro.faults.FaultPlan fields as one JSON "
                        "object, e.g. '{\"seed\": 1, \"drop_rate\": "
                        "0.25}')")
    _add_common(p)

    p = sub.add_parser(
        "replay",
        help="deterministically reconstruct a profile database from a "
             "replay log — no simulator in the loop")
    p.add_argument("log", help="replay log written by 'repro record'")
    p.add_argument("--save-db", metavar="PATH",
                   help="write the reconstructed profile database (JSON)")
    p.add_argument("--guidance", action="store_true",
                   help="walk the Figure 1 decision tree")
    p.add_argument("--no-report", action="store_true",
                   help="suppress the textual report")

    p = sub.add_parser(
        "diff",
        help="time-travel comparison of two profiles: per-site "
             "abort-class deltas, decision-tree leaf changes, metric "
             "deltas; exits 1 on any delta")
    p.add_argument("a", help="profile database (.json) or replay log "
                             "(.rlog)")
    p.add_argument("b", help="profile database (.json) or replay log "
                             "(.rlog)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the diff as one JSON document")

    p = sub.add_parser("trace",
                       help="run a workload with the repro.obs event "
                            "tracer and write a Chrome trace")
    p.add_argument("workload")
    p.add_argument("--trace-out", metavar="PATH", default="trace.json",
                   help="output path (default trace.json)")
    p.add_argument("--no-profile", action="store_true",
                   help="trace a native run (no TxSampler, so no PMU "
                        "sample events on the timeline)")
    p.add_argument("--metrics", action="store_true",
                   help="also print the run metrics snapshot")
    _add_common(p)

    p = sub.add_parser("view", help="render a saved profile database")
    p.add_argument("database")
    p.add_argument("--guidance", action="store_true")
    p.add_argument("--metrics", action="store_true",
                   help="print the stored run-metrics snapshot, if any")

    p = sub.add_parser(
        "chaos",
        help="degradation-invariant sweep (repro.faults): re-profile "
             "under injected sample loss and LBR truncation, assert the "
             "per-site abort attribution matches the clean run")
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: the scored micro-suite "
                        "trio)")
    p.add_argument("--rates", default=None, metavar="R[,R...]",
                   help="sample-loss rates to sweep "
                        "(default 0.1,0.25,0.5)")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="allowed fraction of flipped (site, check) pairs "
                        "per cell (default 0.0: any flip fails)")
    p.add_argument("--min-aborts", type=float, default=5.0,
                   dest="min_aborts", metavar="N",
                   help="clean-run sampled-abort floor to score a site "
                        "(default 5)")
    p.add_argument("--fault-seed", type=int, default=1, dest="fault_seed",
                   help="seed for the injected fault streams (default 1)")
    p.add_argument("--lbr-keep", type=int, default=2, dest="lbr_keep",
                   help="LBR entries surviving the truncation cell "
                        "(default 2)")
    p.add_argument("--skip-passthrough", action="store_true",
                   help="skip the zero-plan byte-identity check")
    p.add_argument("--serve", action="store_true", dest="serve_drill",
                   help="run the service-layer drill instead: kill the "
                        "daemon at every journal boundary, reset event "
                        "streams mid-feed, corrupt store bytes — assert "
                        "no acked submission is lost, recovery is "
                        "idempotent, and results stay byte-identical to "
                        "the serial CLI")
    p.add_argument("--stream-resets", type=int, default=2,
                   dest="stream_resets", metavar="N",
                   help="with --serve: mid-stream connection resets to "
                        "inject (default 2)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the report as one JSON document")
    p.add_argument("--artifact-dir", metavar="DIR", default=None,
                   dest="artifact_dir",
                   help="dump a replay log (repro.replay) for every "
                        "diverging cell into DIR (created on first "
                        "divergence; nothing recorded otherwise); with "
                        "--serve: dump the failing cell's journal and "
                        "store files")
    _add_common(p)

    p = sub.add_parser("measure-overhead",
                       help="native-vs-sampled overhead "
                            "(measure_overhead.py / Figure 5)")
    p.add_argument("workloads", nargs="+",
                   help="workload names, or 'all' for the Figure 5 list")
    p.add_argument("--runs", type=int, default=3,
                   help="seeds per workload (default 3; the paper "
                        "uses 7)")
    p.add_argument("--drop", type=int, default=None,
                   help="trim this many smallest and largest overheads "
                        "before averaging (default: 1 when runs > 2, "
                        "else 0; requires runs > 2*drop)")
    p.add_argument("--metrics", action="store_true",
                   help="run each workload once more with metrics on and "
                        "print a brief per-workload metrics line")
    _add_common(p)
    _add_campaign_flags(p)

    p = sub.add_parser("measure-speedup",
                       help="Table 2 optimizations "
                            "(measure_speedup.py analogue)")
    p.add_argument("programs", nargs="+",
                   help="naive program names from Table 2, or 'all'")
    p.add_argument("--metrics", action="store_true",
                   help="collect run metrics and print a brief "
                        "naive-vs-optimized comparison per program")
    _add_common(p)
    _add_campaign_flags(p)

    for name, helptext in (
        ("table1", "CLOMP-TM inputs (Table 1)"),
        ("figure7", "CLOMP-TM decompositions (Figure 7)"),
        ("figure8", "application categorization (Figure 8)"),
        ("correctness", "validation vs ground truth (§7.2)"),
    ):
        p = sub.add_parser(name, help=helptext)
        _add_common(p)
        if name in ("figure7", "figure8"):
            _add_campaign_flags(p)

    p = sub.add_parser(
        "campaign",
        help="run a measurement suite through the campaign "
             "orchestrator (parallel, cached, resumable)")
    p.add_argument("suite", metavar="SUITE",
                   help=f"one of: {', '.join(SUITES)}")
    p.add_argument("workloads", nargs="*",
                   help="restrict the suite to these workloads/programs "
                        "(figure8, overhead, speedup)")
    p.add_argument("--runs", type=int, default=7,
                   help="overhead suite: seeds per workload (default 7, "
                        "the paper's protocol)")
    p.add_argument("--drop", type=int, default=1,
                   help="overhead suite: trim count (default 1)")
    p.add_argument("--status", action="store_true",
                   help="show what is cached vs pending, then exit "
                        "without running anything")
    p.add_argument("--json", action="store_true",
                   help="with --status: print the machine-readable "
                        "status document (same schema as the serve "
                        "daemon's campaign endpoint)")
    p.add_argument("--resume", action="store_true",
                   help="continue an interrupted campaign (cached jobs "
                        "are skipped; prints the resume point)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock timeout (timed-out jobs are "
                        "retried)")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per job after its first failure "
                        "(default 2)")
    p.add_argument("--compact", action="store_true",
                   help="compact the result store after the run")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write a Chrome trace of scheduler decisions")
    _add_common(p)
    _add_campaign_flags(p, jobs_default=os.cpu_count() or 1)

    p = sub.add_parser(
        "serve",
        help="run the profiling-as-a-service daemon (HTTP/JSON campaign "
             "submission over the shared result store)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8750,
                   help="TCP port (default 8750; 0 = ephemeral)")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="result-store directory (default: "
                        "$REPRO_CACHE_DIR or .repro-cache)")
    p.add_argument("--runners", type=int, default=2,
                   help="campaigns executed concurrently (default 2)")
    p.add_argument("--jobs", type=int, default=1,
                   help="default worker processes per campaign when a "
                        "submission does not say (default 1)")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per job after its first failure "
                        "(default 2)")
    p.add_argument("--max-queue", type=int, default=64, dest="max_queue",
                   help="admission cap: queued+running campaigns beyond "
                        "this are rejected with 429 (default 64)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   dest="drain_timeout", metavar="SEC",
                   help="how long SIGTERM / POST /v1/drain waits for "
                        "in-flight campaigns before snapshotting "
                        "(default 30)")

    p = sub.add_parser(
        "submit",
        help="submit a campaign to a running repro serve daemon")
    p.add_argument("suite", metavar="SUITE",
                   help=f"one of: {', '.join(SUITES)}")
    p.add_argument("workloads", nargs="*",
                   help="restrict the suite to these workloads/programs")
    p.add_argument("--url", default=None, metavar="URL",
                   help="daemon base URL (default: $REPRO_SERVE_URL or "
                        "http://127.0.0.1:8750)")
    p.add_argument("--threads", type=int, default=None,
                   help="thread count (daemon default if omitted)")
    p.add_argument("--scale", type=float, default=None,
                   help="workload scale factor")
    p.add_argument("--seed", type=int, default=None,
                   help="deterministic seed")
    p.add_argument("--runs", type=int, default=None,
                   help="overhead suite: seeds per workload")
    p.add_argument("--drop", type=int, default=None,
                   help="overhead suite: trim count")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for this campaign")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock timeout")
    p.add_argument("--refresh", action="store_true",
                   help="recompute everything, superseding cached "
                        "records")
    p.add_argument("--wait", action="store_true",
                   help="block until the campaign finishes, then print "
                        "its final status document")
    p.add_argument("--stream", action="store_true",
                   help="stream progress events as NDJSON while the "
                        "campaign runs (implies --wait)")

    p = sub.add_parser(
        "status",
        help="show campaign status from a running repro serve daemon")
    p.add_argument("id", nargs="?", metavar="ID",
                   help="campaign id (default: list all campaigns)")
    p.add_argument("--url", default=None, metavar="URL",
                   help="daemon base URL (default: $REPRO_SERVE_URL or "
                        "http://127.0.0.1:8750)")
    p.add_argument("--json", action="store_true",
                   help="print the raw status document(s) as JSON")

    p = sub.add_parser(
        "store",
        help="result-store maintenance (scrub: verify every segment, "
             "WAL, task journal and replay sidecar)")
    store_sub = p.add_subparsers(dest="store_command", required=True)
    ps = store_sub.add_parser(
        "scrub",
        help="verify CRCs, manifest digests and framing of every store "
             "file; --repair amputates torn tails and quarantines "
             "corrupt entries")
    ps.add_argument("--cache-dir", metavar="DIR", default=None,
                    help="result-store directory (default: "
                         "$REPRO_CACHE_DIR or .repro-cache)")
    ps.add_argument("--repair", action="store_true",
                    help="repair in place: truncate torn tails, move "
                         "corrupt/orphan files to <store>/quarantine/ "
                         "(run against a drained store)")
    ps.add_argument("--json", action="store_true", dest="as_json",
                    help="print the full scrub report as JSON")
    return parser


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _dump_crossval_artifact(args, name: str) -> str:
    """Record the dynamic crossval run (exact re-execution) for offline
    replay when the static and dynamic sides disagree."""
    from .analysis.crossval import VALIDATION_PERIODS
    from .replay.artifacts import dump_run_artifact
    from .sim.config import MachineConfig

    dyn_cfg = MachineConfig(n_threads=args.threads).evolve(
        sample_periods=dict(VALIDATION_PERIODS))
    path = dump_run_artifact(
        args.artifact_dir, f"{name}-crossval", name,
        n_threads=args.threads, scale=args.scale, seed=args.seed,
        config=dyn_cfg,
    )
    return str(path)


def _load_profile_any(path: str):
    """Load a profile from either a database (.json) or a replay log
    (.rlog, reconstructed by replay)."""
    from .replay import ReplayFormatError, replay_file

    try:
        return load_profile(path)
    except ProfileFormatError:
        pass
    try:
        _, profile = replay_file(path)
    except (ReplayFormatError, ValueError) as exc:
        raise ProfileFormatError(
            f"{path}: neither a profile database nor a replay log "
            f"({exc})"
        ) from exc
    return profile


def _metrics_brief(snapshot: dict) -> str:
    """One-line digest of the headline counters in a metrics snapshot."""

    def val(name: str) -> int:
        return snapshot.get(name, {}).get("value", 0)

    return (f"commits={val('htm.commits')} aborts={val('htm.aborts')} "
            f"retries={val('rtm.retries')} fallbacks={val('rtm.fallbacks')} "
            f"samples={val('pmu.samples')}")


def _make_runner(args, tracer=None) -> CampaignRunner:
    """A campaign runner wired to the CLI's store/parallelism flags.

    Store resolution: ``--no-cache`` keeps results in memory;
    otherwise ``--cache-dir``, then ``$REPRO_CACHE_DIR``, then
    ``.repro-cache``."""
    if getattr(args, "no_cache", False):
        store = MemoryStore()
    else:
        root = (getattr(args, "cache_dir", None)
                or os.environ.get("REPRO_CACHE_DIR")
                or ".repro-cache")
        store = ResultStore(root)
    retries = getattr(args, "retries", None)
    return CampaignRunner(
        store=store,
        jobs=getattr(args, "jobs", 1),
        timeout=getattr(args, "timeout", None),
        retry=RetryPolicy(max_attempts=retries + 1)
        if retries is not None else None,
        refresh=getattr(args, "refresh", False),
        tracer=tracer,
    )


def _campaign_note(runner: CampaignRunner, name: str) -> None:
    """End-of-run status line — on stderr, so a campaign command's
    stdout stays byte-identical to its serial counterpart."""
    if _log.level > logging.INFO:
        return
    s = runner.summary()
    print(f"[campaign {name}] jobs={s['jobs']} cache-hits={s['hits']} "
          f"executed={s['executed']} retries={s['retries']} "
          f"hit-rate={s['hit_rate']:.0%}", file=sys.stderr)


def _render_figure7_rows(rows) -> int:
    """Figure 7 rendering + narrative check, shared by the serial and
    campaign paths so both produce the same stdout and exit code."""
    from .experiments.clomp import check_expectations, render_figure7

    _log.info(render_figure7(rows))
    problems = check_expectations(rows)
    if problems:
        _log.info("\nnarrative check FAILED:")
        for prob in problems:
            _log.info(f"  ! {prob}")
        return 1
    _log.info("\nnarrative check: OK (all Figure 7 observations hold)")
    return 0


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def cmd_list(args) -> int:
    for suite in htmbench.suites():
        names = htmbench.workload_names(suite)
        _log.info(f"{suite}:")
        for name in names:
            cls = htmbench.WORKLOADS[name]
            _log.info(f"  {name:22s} Type {cls.expected_type:3s} "
                      f"{cls.description}")
    return 0


def _check_names(tokens: list[str]) -> list[str]:
    """Expand 'all' / suite names / workload names into workload names."""
    names: list[str] = []
    known_suites = set(htmbench.suites())
    for token in tokens:
        if token == "all":
            names.extend(htmbench.workload_names())
        elif token in known_suites:
            names.extend(htmbench.workload_names(token))
        else:
            names.append(token)
    # de-duplicate, preserving order
    return list(dict.fromkeys(names))


def _finding_key(f) -> tuple:
    """The identity a baseline suppresses on: code + sites + message.

    The message carries the detail (line addresses, class names), so a
    finding that moves or changes meaning stops matching the baseline
    and fails the check again — suppressions don't rot silently.
    """
    return (f.code, tuple(f.sites), f.message)


def _load_baseline(path: str) -> dict[str, set[tuple]]:
    import json

    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    return {
        wl: {(e["code"], tuple(e["sites"]), e["message"]) for e in entries}
        for wl, entries in doc.get("workloads", {}).items()
    }


def cmd_check(args) -> int:
    import json

    from .analysis import analyze_workload, cross_validate, severity_rank
    from .core.report import (
        render_analysis,
        render_crossval,
        render_dataflow,
        render_mc,
        render_prediction,
        render_races,
    )

    dataflow_cache = None
    if args.incremental:
        from .analysis.dataflow import SummaryCache
        from .obs.metrics import MetricsRegistry

        root = (args.cache_dir
                or os.environ.get("REPRO_CACHE_DIR")
                or ".repro-cache")
        dataflow_cache = SummaryCache(ResultStore(root),
                                      metrics=MetricsRegistry())

    baseline: dict[str, set[tuple]] = {}
    if args.baseline and not args.write_baseline:
        try:
            baseline = _load_baseline(args.baseline)
        except FileNotFoundError:
            _log.error(f"baseline file not found: {args.baseline} "
                       "(generate it with --write-baseline)")
            return 2
    if args.write_baseline and not args.baseline:
        _log.error("--write-baseline needs --baseline PATH")
        return 2

    names = _check_names(args.workloads)
    threshold = severity_rank(args.fail_on)
    crashed: list[str] = []
    unexpected: list[str] = []
    docs: dict = {}
    reports: list = []
    baseline_out: dict[str, list] = {}
    n_suppressed = 0
    for i, name in enumerate(names):
        try:
            cls = htmbench.WORKLOADS.get(name)
            expected = set(getattr(cls, "expected_findings", ()) or ())
            report = analyze_workload(name, n_threads=args.threads,
                                      scale=args.scale, seed=args.seed,
                                      races=args.races,
                                      predict=args.predict_tree,
                                      dataflow=not args.no_dataflow,
                                      dataflow_cache=dataflow_cache,
                                      mc=args.mc)
            reports.append(report)
            cv = None
            cv_artifact = None
            if not args.static_only:
                cv = cross_validate(name, n_threads=args.threads,
                                    scale=args.scale, seed=args.seed,
                                    report=report)
                if (args.artifact_dir
                        and (cv.disagreements()
                             or cv.leaf_disagreements())):
                    cv_artifact = _dump_crossval_artifact(args, name)
        except Exception as exc:
            crashed.append(name)
            _log.error(f"{name}: analyzer crashed: "
                       f"{type(exc).__name__}: {exc}")
            _log.debug("traceback:", exc_info=True)
            continue
        base_keys = baseline.get(name, set())
        new_findings = [
            f for f in report.findings
            if severity_rank(f.severity) >= threshold
            and f.code not in expected
            and _finding_key(f) not in base_keys
        ]
        suppressed = sorted({
            f.code for f in report.findings
            if severity_rank(f.severity) >= threshold
            and f.code not in expected
            and _finding_key(f) in base_keys
        })
        n_suppressed += len(suppressed)
        surprises = sorted({f.code for f in new_findings})
        if args.write_baseline:
            baseline_out[name] = [
                {"code": f.code, "sites": list(f.sites),
                 "message": f.message}
                for f in report.findings
                if severity_rank(f.severity) >= threshold
                and f.code not in expected
            ]
            surprises = []
        if surprises:
            unexpected.append(name)
        if args.as_json:
            entry = report.to_dict()
            entry["expected_findings"] = sorted(expected)
            entry["unexpected_codes"] = surprises
            if args.baseline:
                entry["suppressed_codes"] = suppressed
            if cv is not None:
                entry["crossval"] = cv.to_dict()
            if cv_artifact is not None:
                entry["replay_artifact"] = cv_artifact
            docs[name] = entry
        else:
            if i:
                _log.info("")
            _log.info(render_analysis(report))
            if expected:
                _log.info(f"documented findings  : {sorted(expected)}")
            if suppressed:
                _log.info(f"suppressed by baseline: {suppressed}")
            if surprises:
                _log.info(f"UNEXPECTED (>= {args.fail_on}): {surprises}")
            if report.dataflow is not None:
                _log.info("")
                _log.info(render_dataflow(report.dataflow))
            if report.mc is not None:
                _log.info("")
                _log.info(render_mc(report.mc))
            if report.races is not None:
                _log.info("")
                _log.info(render_races(report.races))
            if report.prediction is not None:
                _log.info("")
                _log.info(render_prediction(report.prediction))
            if cv is not None:
                _log.info("")
                _log.info(render_crossval(cv))
            if cv_artifact is not None:
                _log.info(f"replay artifact: {cv_artifact}")
    if dataflow_cache is not None:
        # status goes to stderr so --json stdout stays machine-parseable;
        # CI greps this exact line, keep its shape stable
        st = dataflow_cache.stats()
        print(f"[dataflow cache] hits={st['hits']} "
              f"misses={st['misses']} hit-rate={st['hit_rate']:.0%}",
              file=sys.stderr)
        if args.verbose and dataflow_cache.metrics is not None:
            for line in format_snapshot(
                    dataflow_cache.metrics.snapshot()).splitlines():
                print(f"[dataflow cache] {line}", file=sys.stderr)
    if args.write_baseline:
        doc = {"version": 1, "fail_on": args.fail_on,
               "workloads": baseline_out}
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        n_base = sum(len(v) for v in baseline_out.values())
        # status goes to stderr so --json stdout stays machine-parseable
        print(f"baseline written to {args.baseline} "
              f"({n_base} finding(s) across {len(baseline_out)} "
              f"workload(s))", file=sys.stderr)
    elif args.baseline and not args.as_json:
        _log.info(f"baseline {args.baseline}: {n_suppressed} finding "
                  f"code(s) suppressed")
    if args.sarif:
        from .analysis import to_sarif

        with open(args.sarif, "w", encoding="utf-8") as fh:
            json.dump(to_sarif(reports), fh, indent=2, sort_keys=True)
        # status goes to stderr so --json stdout stays machine-parseable
        print(f"SARIF log written to {args.sarif}", file=sys.stderr)
    if args.as_json:
        _log.info(json.dumps({
            "fail_on": args.fail_on,
            "crashed": crashed,
            "unexpected": unexpected,
            "workloads": docs,
        }, indent=2, sort_keys=True))
    else:
        clean = len(names) - len(crashed) - len(unexpected)
        _log.info("")
        _log.info(f"checked {len(names)} workload(s): {clean} clean or "
                  f"as documented, {len(unexpected)} with unexpected "
                  f">={args.fail_on} findings, {len(crashed)} crashed")
    if crashed:
        return 2
    return 1 if unexpected else 0


def cmd_run(args) -> int:
    _log.debug(f"run: workload={args.workload} threads={args.threads} "
               f"scale={args.scale} seed={args.seed}")
    out = run_workload(args.workload, n_threads=args.threads,
                       scale=args.scale, seed=args.seed, profile=True,
                       trace=bool(args.trace_out), metrics=args.metrics)
    r = out.result
    _log.info(f"makespan={r.makespan} commits={r.commits} aborts={r.aborts} "
              f"by reason={r.aborts_by_reason}")
    profile = out.profile
    if not args.no_report:
        _log.info("")
        _log.info(render_full_report(profile, args.workload))
    if args.guidance:
        _log.info("")
        _log.info(DecisionTree().analyze(profile).render())
    if args.metrics:
        _log.info("")
        _log.info(format_snapshot(r.metrics))
        _log.info("")
        _log.info(render_self_diagnostics(diagnose(out.profiler, out.sim)))
    if args.trace_out:
        path = out.obs.tracer.write(args.trace_out)
        _log.info(f"\nchrome trace written to {path} "
                  f"({len(out.obs.tracer)} events, "
                  f"{out.obs.tracer.total_dropped} dropped)")
    if args.save_db:
        path = save_profile(profile, args.save_db, run_metrics=r.metrics)
        _log.info(f"\nprofile database written to {path}")
    return 0


def cmd_record(args) -> int:
    import json

    plan = None
    if args.fault_plan:
        from .faults.plan import coerce_plan

        try:
            plan = coerce_plan(json.loads(args.fault_plan))
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            _log.error(f"--fault-plan: not a FaultPlan JSON object: {exc}")
            return 2
    out = run_workload(args.workload, n_threads=args.threads,
                       scale=args.scale, seed=args.seed, profile=True,
                       record=True, faults=plan)
    assert out.replay_log is not None
    dest = args.out or f"{args.workload}.rlog"
    from pathlib import Path

    path = Path(dest)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(out.replay_log)
    r = out.result
    _log.info(f"makespan={r.makespan} commits={r.commits} "
              f"aborts={r.aborts}")
    n_events = out.replay_log.count("\n") - 2  # header + manifest
    _log.info(f"replay log written to {path} ({n_events} observation "
              f"events, {len(out.replay_log)} bytes)")
    if args.save_db:
        db = save_profile(out.profile, args.save_db)
        _log.info(f"profile database written to {db}")
    return 0


def cmd_replay(args) -> int:
    from .replay import ReplayFormatError, load_replay, replay_profile

    try:
        log = load_replay(args.log)
    except ReplayFormatError as exc:
        _log.error(f"cannot read replay log: {exc}")
        return 2
    status = "sealed" if log.complete else (
        f"UNSEALED (torn tail: {log.torn_lines} line(s) discarded; "
        "replaying the intact prefix)")
    workload = log.meta.get("workload", "?")
    _log.info(f"replay log: workload={workload} "
              f"threads={log.n_threads} events={len(log.events)} "
              f"[{status}]")
    try:
        profile = replay_profile(log)
    except ValueError as exc:
        _log.error(str(exc))
        return 2
    if not args.no_report:
        _log.info("")
        _log.info(render_full_report(profile, f"replay of {workload}"))
    if args.guidance:
        _log.info("")
        _log.info(DecisionTree().analyze(profile).render())
    if args.save_db:
        path = save_profile(profile, args.save_db)
        _log.info(f"\nprofile database written to {path}")
    return 0


def cmd_diff(args) -> int:
    import json

    from .replay import diff_profiles

    try:
        a = _load_profile_any(args.a)
        b = _load_profile_any(args.b)
    except ProfileFormatError as exc:
        _log.error(str(exc))
        return 2
    diff = diff_profiles(a, b, label_a=args.a, label_b=args.b)
    if args.as_json:
        _log.info(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        _log.info(diff.render())
    return 0 if diff.identical else 1


def cmd_trace(args) -> int:
    out = run_workload(args.workload, n_threads=args.threads,
                       scale=args.scale, seed=args.seed,
                       profile=not args.no_profile,
                       trace=True, metrics=True)
    r = out.result
    tracer = out.obs.tracer
    path = tracer.write(args.trace_out)
    _log.info(f"makespan={r.makespan} commits={r.commits} aborts={r.aborts} "
              f"by reason={r.aborts_by_reason}")
    _log.info(f"captured {len(tracer)} events on "
              f"{len(r.per_thread_cycles)} threads "
              f"({tracer.total_dropped} dropped by the ring buffers)")
    if args.metrics:
        _log.info("")
        _log.info(format_snapshot(r.metrics))
    _log.info(f"\nchrome trace written to {path}")
    _log.info("open it in chrome://tracing or https://ui.perfetto.dev "
              "(timestamps are simulated cycles)")
    return 0


def cmd_view(args) -> int:
    import json

    try:
        profile = load_profile(args.database)
    except ProfileFormatError as exc:
        _log.error(f"cannot read profile database: {exc}")
        return 2
    _log.info(render_full_report(profile, args.database))
    if args.guidance:
        _log.info("")
        _log.info(DecisionTree().analyze(profile).render())
    if args.metrics:
        _log.info("")
        try:
            snapshot = load_run_metrics(args.database)
        except (OSError, json.JSONDecodeError, ProfileFormatError) as exc:
            _log.error(f"cannot read run metrics: {exc}")
            return 2
        _log.info(format_snapshot(snapshot))
    return 0


def cmd_chaos(args) -> int:
    import json

    from .faults.chaos import DEFAULT_LOSS_RATES, DEFAULT_WORKLOADS, run_sweep

    if args.serve_drill:
        from .faults.plan import FaultPlanError
        from .faults.service import ServiceChaosPlan, run_service_drill

        try:
            plan = ServiceChaosPlan(seed=args.fault_seed,
                                    stream_resets=args.stream_resets)
            plan.validate()
        except FaultPlanError as exc:
            _log.error(str(exc))
            return 2
        report = run_service_drill(plan, artifact_dir=args.artifact_dir)
        if args.as_json:
            _log.info(json.dumps(report.to_dict(), indent=2,
                                 sort_keys=True))
        else:
            _log.info(report.render())
        return 0 if report.ok else 1

    if args.rates is None:
        rates = DEFAULT_LOSS_RATES
    else:
        try:
            rates = tuple(float(tok) for tok in args.rates.split(",") if tok)
        except ValueError:
            _log.error(f"--rates must be comma-separated floats: "
                       f"got {args.rates!r}")
            return 2
        if not rates or not all(0.0 <= r <= 1.0 for r in rates):
            _log.error(f"--rates must be in [0, 1]: got {args.rates!r}")
            return 2
    report = run_sweep(
        workloads=tuple(args.workloads) or DEFAULT_WORKLOADS,
        loss_rates=rates,
        n_threads=args.threads,
        scale=args.scale,
        seed=args.seed,
        fault_seed=args.fault_seed,
        tolerance=args.tolerance,
        min_aborts=args.min_aborts,
        lbr_keep_max=args.lbr_keep,
        check_passthrough=not args.skip_passthrough,
        artifact_dir=args.artifact_dir,
    )
    if args.as_json:
        _log.info(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        _log.info(report.render())
    return 0 if report.ok else 1


def cmd_measure_overhead(args) -> int:
    from .experiments.overhead import FIG5_BENCHMARKS

    names: list[str] = (
        list(FIG5_BENCHMARKS) if args.workloads == ["all"]
        else args.workloads
    )
    drop = args.drop if args.drop is not None else \
        (1 if args.runs > 2 else 0)
    if args.runs < 1 or drop < 0:
        _log.error(f"--runs must be >= 1 and --drop >= 0: "
                   f"got runs={args.runs}, drop={drop}")
        return 2
    if drop and args.runs <= 2 * drop:
        _log.error(f"--runs must exceed 2*--drop to leave a mean: got "
                   f"runs={args.runs}, drop={drop} "
                   f"(need runs > {2 * drop})")
        return 2
    runner = _make_runner(args)
    try:
        campaign = build_campaign(
            "overhead", n_threads=args.threads, scale=args.scale,
            workloads=names, runs=args.runs, drop=drop,
        )
        records = runner.run(campaign)
    except CampaignError as exc:
        _log.error(str(exc))
        return 2
    total = 0.0
    for name, mean, runs in overhead_rows_from_records(campaign, records):
        total += mean
        spread = f"[{min(runs):+.1%}, {max(runs):+.1%}]"
        _log.info(f"{name:22s} {mean:+8.2%}  {spread}")
        if args.metrics:
            extra = cached_run(runner.store, name, n_threads=args.threads,
                               scale=args.scale, seed=args.seed,
                               profile=True, metrics=True)
            _log.info(f"{'':22s}   {_metrics_brief(extra.result.metrics)}")
    _log.info(f"{'MEAN':22s} {total / len(names):+8.2%}")
    _campaign_note(runner, campaign.name)
    return 0


def cmd_measure_speedup(args) -> int:
    from .htmbench.optimized import TABLE2

    pairs = {naive: (opt, paper) for naive, opt, paper, _ in TABLE2}
    names = list(pairs) if args.programs == ["all"] else args.programs
    rc = 0
    known: list[str] = []
    for name in names:
        if name not in pairs:
            _log.error(f"{name}: not a Table 2 program "
                       f"(known: {', '.join(pairs)})")
            rc = 2
        else:
            known.append(name)
    if not known:
        return rc
    runner = _make_runner(args)
    try:
        campaign = build_campaign(
            "speedup", n_threads=args.threads, scale=args.scale,
            seed=args.seed, workloads=known,
        )
        records = runner.run(campaign)
    except CampaignError as exc:
        _log.error(str(exc))
        return 2
    for name, opt, paper, s in speedup_rows_from_records(campaign, records):
        _log.info(f"{name:14s} {s:5.2f}x   (paper: {paper:.2f}x)")
        if args.metrics:
            base = cached_run(runner.store, name, n_threads=args.threads,
                              scale=args.scale, seed=args.seed,
                              metrics=True)
            optimized = cached_run(runner.store, opt,
                                   n_threads=args.threads,
                                   scale=args.scale, seed=args.seed,
                                   metrics=True)
            _log.info(f"  naive    : {_metrics_brief(base.result.metrics)}")
            _log.info(f"  optimized: "
                      f"{_metrics_brief(optimized.result.metrics)}")
    _campaign_note(runner, campaign.name)
    return rc


def cmd_table1(args) -> int:
    # Table 1 is the static CLOMP-TM configuration listing — no runs
    # needed.  ``repro campaign table1`` renders the same table *and*
    # materializes the six profile databases into the result store.
    from .experiments.clomp import render_table1

    _log.info(render_table1())
    return 0


def cmd_figure7(args) -> int:
    runner = _make_runner(args)
    try:
        campaign = build_campaign("figure7", n_threads=args.threads,
                                  scale=args.scale, seed=args.seed)
        records = runner.run(campaign)
    except CampaignError as exc:
        _log.error(str(exc))
        return 2
    rc = _render_figure7_rows(clomp_rows_from_records(campaign, records))
    _campaign_note(runner, campaign.name)
    return rc


def cmd_figure8(args) -> int:
    from .experiments.categorize import render_figure8

    runner = _make_runner(args)
    try:
        campaign = build_campaign("figure8", n_threads=args.threads,
                                  scale=args.scale, seed=args.seed)
        records = runner.run(campaign)
    except CampaignError as exc:
        _log.error(str(exc))
        return 2
    _log.info(render_figure8(figure8_rows_from_records(campaign, records)))
    _campaign_note(runner, campaign.name)
    return 0


def cmd_campaign(args) -> int:
    kwargs: dict = {
        "n_threads": args.threads, "scale": args.scale, "seed": args.seed,
        "workloads": args.workloads or None,
        "runs": args.runs, "drop": args.drop,
    }
    try:
        campaign = build_campaign(args.suite, **kwargs)
    except SuiteError as exc:
        _log.error(str(exc))
        return 2
    tracer = None
    if args.trace_out:
        from .obs.trace import Tracer

        tracer = Tracer()
    runner = _make_runner(args, tracer=tracer)
    if args.status:
        st = runner.status(campaign)
        if args.json:
            from .serve.registry import campaign_status_doc

            submission = {"suite": args.suite, **{
                k: v for k, v in kwargs.items() if v is not None}}
            doc = campaign_status_doc(args.suite, campaign,
                                      "cached" if st["pending"] == 0
                                      else "pending", submission)
            doc["cache"] = st
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        kinds = " ".join(f"{k}={n}" for k, n in
                         sorted(st["by_kind"].items()))
        _log.info(f"=== campaign {st['name']} ===")
        _log.info(f"jobs     : {st['jobs']} ({kinds})")
        _log.info(f"targets  : {st['targets']}")
        _log.info(f"cached   : {st['cached']}")
        _log.info(f"pending  : {st['pending']}")
        _log.info(f"hit-rate : {st['hit_rate']:.0%}")
        store = st["store"]
        detail = " ".join(f"{k}={v}" for k, v in sorted(store.items())
                          if k not in ("backend", "root"))
        where = store.get("root") or "memory"
        _log.info(f"store    : {store['backend']} {where} ({detail})")
        return 0
    if args.resume and _log.level <= logging.INFO:
        plan = runner.plan(campaign)
        done = len(plan.cached)
        print(f"[campaign {campaign.name}] resuming: {done}/"
              f"{done + len(plan.to_run)} jobs already cached",
              file=sys.stderr)
    try:
        records = runner.run(campaign)
    except CampaignError as exc:
        _log.error(str(exc))
        return 1
    if args.suite == "table1":
        from .experiments.clomp import render_table1

        _log.info(render_table1())
        rc = 0
    elif args.suite == "figure7":
        rc = _render_figure7_rows(
            clomp_rows_from_records(campaign, records))
    elif args.suite == "figure8":
        from .experiments.categorize import render_figure8

        _log.info(render_figure8(
            figure8_rows_from_records(campaign, records)))
        rc = 0
    elif args.suite == "overhead":
        total = 0.0
        rows = overhead_rows_from_records(campaign, records)
        for name, mean, runs in rows:
            total += mean
            spread = f"[{min(runs):+.1%}, {max(runs):+.1%}]"
            _log.info(f"{name:22s} {mean:+8.2%}  {spread}")
        _log.info(f"{'MEAN':22s} {total / len(rows):+8.2%}")
        rc = 0
    else:  # speedup
        for name, _opt, paper, s in \
                speedup_rows_from_records(campaign, records):
            _log.info(f"{name:14s} {s:5.2f}x   (paper: {paper:.2f}x)")
        rc = 0
    _campaign_note(runner, campaign.name)
    if args.compact:
        dropped = runner.store.compact()
        if _log.level <= logging.INFO:
            print(f"[campaign {campaign.name}] compacted store: "
                  f"{dropped} superseded record(s) dropped",
                  file=sys.stderr)
    if tracer is not None:
        path = tracer.write(args.trace_out)
        if _log.level <= logging.INFO:
            print(f"[campaign {campaign.name}] scheduler trace written "
                  f"to {path}", file=sys.stderr)
    return rc


def _serve_url(args) -> str:
    return (args.url or os.environ.get("REPRO_SERVE_URL")
            or "http://127.0.0.1:8750")


def cmd_serve(args) -> int:
    import asyncio

    from .serve import ServeDaemon
    from .serve.server import run_server

    root = (args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
            or ".repro-cache")
    daemon = ServeDaemon(store=ResultStore(root, background=True),
                         runners=args.runners, default_jobs=args.jobs,
                         retries=args.retries,
                         max_queue=args.max_queue,
                         drain_timeout=args.drain_timeout)
    _log.info(f"serving store {root} on http://{args.host}:{args.port} "
              f"(runners={args.runners}, default jobs={args.jobs}, "
              f"queue={args.max_queue}) — SIGTERM or POST /v1/drain "
              f"for a graceful drain, Ctrl-C to stop")
    try:
        asyncio.run(run_server(daemon, args.host, args.port,
                               install_signals=True))
    except KeyboardInterrupt:
        _log.info("shutting down")
    finally:
        daemon.close()
    return 0


def cmd_submit(args) -> int:
    from .serve.client import ServeClient, ServeError

    doc: dict = {"suite": args.suite}
    if args.workloads:
        doc["workloads"] = args.workloads
    for field, value in (("n_threads", args.threads),
                         ("scale", args.scale), ("seed", args.seed),
                         ("runs", args.runs), ("drop", args.drop),
                         ("jobs", args.jobs), ("timeout", args.timeout)):
        if value is not None:
            doc[field] = value
    if args.refresh:
        doc["refresh"] = True
    try:
        client = ServeClient(_serve_url(args))
        accepted = client.submit(doc)
        cid = accepted["id"]
        if not (args.wait or args.stream):
            _log.info(f"accepted {cid}: suite={args.suite} "
                      f"state={accepted['state']} "
                      f"({accepted['jobs']} job specs)")
            print(cid)
            return 0
        if args.stream:
            for event in client.stream_events(cid):
                print(json.dumps(event, sort_keys=True), flush=True)
            final = client.status(cid)
        else:
            final = client.wait(cid)
    except ServeError as exc:
        _log.error(str(exc))
        return 2
    print(json.dumps(final, indent=2, sort_keys=True))
    return 0 if final.get("state") == "done" else 1


def cmd_status(args) -> int:
    from .serve.client import ServeClient, ServeError

    try:
        client = ServeClient(_serve_url(args))
        docs = [client.status(args.id)] if args.id \
            else client.campaigns()
    except ServeError as exc:
        _log.error(str(exc))
        return 2
    if args.json:
        payload = docs[0] if args.id else {"campaigns": docs}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not docs:
        _log.info("no campaigns submitted")
        return 0
    for doc in docs:
        line = (f"{doc['id']}  {doc['suite']:10s} {doc['state']:8s} "
                f"jobs={doc['jobs']} targets={doc['targets']}")
        summary = doc.get("summary")
        if summary:
            line += (f" executed={summary.get('executed')} "
                     f"hits={summary.get('hits')} "
                     f"retries={summary.get('retries')}")
        if doc.get("error"):
            line += f" error={doc['error']}"
        _log.info(line)
    return 0


def cmd_store(args) -> int:
    from .campaign.store import scrub_files

    root = (args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
            or ".repro-cache")
    if not os.path.isdir(root):
        _log.error(f"no result store at {root}")
        return 2
    report = scrub_files(root, repair=args.repair)
    # a repair pass reports the damage it *found*; re-scrub to decide
    # whether the store actually came back clean
    ok = scrub_files(root)["clean"] if args.repair else report["clean"]
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if ok else 1
    s = report["summary"]
    _log.info(f"scrubbed {s['files']} file(s), {s['records']} "
              f"record(s), {s['sidecars']} sidecar(s): "
              f"torn={s['torn']} corrupt={s['corrupt']} "
              f"orphans={s['orphans']} repaired={s['repaired']}")
    for name, info in sorted(report["files"].items()):
        if info.get("state") != "ok":
            _log.info(f"  {info['state']:7s} {name}")
    if ok:
        _log.info("store is clean")
    elif args.repair:
        _log.error("store still damaged after repair")
    else:
        _log.error("store is damaged — rerun with --repair to "
                   "amputate torn tails and quarantine corrupt files")
    return 0 if ok else 1


def cmd_correctness(args) -> int:
    from .experiments.correctness import render_section72, section72

    rows = section72(n_threads=args.threads, scale=args.scale,
                     seed=args.seed)
    _log.info(render_section72(rows))
    return 0 if all(r.ok for r in rows) else 1


COMMANDS = {
    "list": cmd_list,
    "check": cmd_check,
    "run": cmd_run,
    "record": cmd_record,
    "replay": cmd_replay,
    "diff": cmd_diff,
    "trace": cmd_trace,
    "view": cmd_view,
    "chaos": cmd_chaos,
    "measure-overhead": cmd_measure_overhead,
    "measure-speedup": cmd_measure_speedup,
    "table1": cmd_table1,
    "figure7": cmd_figure7,
    "figure8": cmd_figure8,
    "correctness": cmd_correctness,
    "campaign": cmd_campaign,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "store": cmd_store,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _setup_logging(args.verbose, args.quiet)
    return COMMANDS[args.command](args)
