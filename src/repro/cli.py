"""Command-line interface — the analogue of the paper artifact's scripts.

The PPoPP artifact ships ``measure_overhead.py``, ``measure_speedup.py``
and ``generate_profile.py``; this CLI mirrors them (plus the figure
harnesses and a viewer for saved profile databases)::

    python -m repro list
    python -m repro run dedup --guidance --save-db dedup.json
    python -m repro view dedup.json
    python -m repro measure-overhead vacation histo
    python -m repro measure-speedup all
    python -m repro table1 | figure7 | figure8 | correctness

All commands accept ``--threads``, ``--scale`` and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import htmbench
from .core import DecisionTree
from .core.export import load_profile, save_profile
from .core.report import render_full_report
from .experiments.runner import run_workload, trimmed_mean_overhead
from .experiments.runner import speedup as measure_speedup_pair


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threads", type=int, default=14,
                        help="simulated thread count (default 14)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic seed (default 0)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TxSampler reproduction: profile HTM programs on the "
                    "simulated TSX substrate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the HTMBench workloads")

    p = sub.add_parser("run", help="run a workload under TxSampler "
                                   "(generate_profile.py analogue)")
    p.add_argument("workload")
    p.add_argument("--guidance", action="store_true",
                   help="walk the Figure 1 decision tree")
    p.add_argument("--save-db", metavar="PATH",
                   help="write the profile database (JSON)")
    p.add_argument("--no-report", action="store_true",
                   help="suppress the textual report")
    _add_common(p)

    p = sub.add_parser("view", help="render a saved profile database")
    p.add_argument("database")
    p.add_argument("--guidance", action="store_true")

    p = sub.add_parser("measure-overhead",
                       help="native-vs-sampled overhead "
                            "(measure_overhead.py / Figure 5)")
    p.add_argument("workloads", nargs="+",
                   help="workload names, or 'all' for the Figure 5 list")
    p.add_argument("--runs", type=int, default=3)
    _add_common(p)

    p = sub.add_parser("measure-speedup",
                       help="Table 2 optimizations "
                            "(measure_speedup.py analogue)")
    p.add_argument("programs", nargs="+",
                   help="naive program names from Table 2, or 'all'")
    _add_common(p)

    for name, helptext in (
        ("table1", "CLOMP-TM inputs (Table 1)"),
        ("figure7", "CLOMP-TM decompositions (Figure 7)"),
        ("figure8", "application categorization (Figure 8)"),
        ("correctness", "validation vs ground truth (§7.2)"),
    ):
        p = sub.add_parser(name, help=helptext)
        _add_common(p)
    return parser


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def cmd_list(args) -> int:
    for suite in htmbench.suites():
        names = htmbench.workload_names(suite)
        print(f"{suite}:")
        for name in names:
            cls = htmbench.WORKLOADS[name]
            print(f"  {name:22s} Type {cls.expected_type:3s} "
                  f"{cls.description}")
    return 0


def cmd_run(args) -> int:
    out = run_workload(args.workload, n_threads=args.threads,
                       scale=args.scale, seed=args.seed, profile=True)
    r = out.result
    print(f"makespan={r.makespan} commits={r.commits} aborts={r.aborts} "
          f"by reason={r.aborts_by_reason}")
    profile = out.profile
    if not args.no_report:
        print()
        print(render_full_report(profile, args.workload))
    if args.guidance:
        print()
        print(DecisionTree().analyze(profile).render())
    if args.save_db:
        path = save_profile(profile, args.save_db)
        print(f"\nprofile database written to {path}")
    return 0


def cmd_view(args) -> int:
    profile = load_profile(args.database)
    print(render_full_report(profile, args.database))
    if args.guidance:
        print()
        print(DecisionTree().analyze(profile).render())
    return 0


def cmd_measure_overhead(args) -> int:
    from .experiments.overhead import FIG5_BENCHMARKS

    names: List[str] = (
        list(FIG5_BENCHMARKS) if args.workloads == ["all"]
        else args.workloads
    )
    total = 0.0
    for name in names:
        mean, runs = trimmed_mean_overhead(
            name, n_threads=args.threads, scale=args.scale, runs=args.runs,
            drop=1 if args.runs > 2 else 0,
        )
        total += mean
        spread = f"[{min(runs):+.1%}, {max(runs):+.1%}]"
        print(f"{name:22s} {mean:+8.2%}  {spread}")
    print(f"{'MEAN':22s} {total / len(names):+8.2%}")
    return 0


def cmd_measure_speedup(args) -> int:
    from .htmbench.optimized import TABLE2

    pairs = {naive: (opt, paper) for naive, opt, paper, _ in TABLE2}
    names = list(pairs) if args.programs == ["all"] else args.programs
    rc = 0
    for name in names:
        if name not in pairs:
            print(f"{name}: not a Table 2 program "
                  f"(known: {', '.join(pairs)})", file=sys.stderr)
            rc = 2
            continue
        opt, paper = pairs[name]
        s, _, _ = measure_speedup_pair(
            name, opt, n_threads=args.threads, scale=args.scale,
            seed=args.seed,
        )
        print(f"{name:14s} {s:5.2f}x   (paper: {paper:.2f}x)")
    return rc


def cmd_table1(args) -> int:
    from .experiments.clomp import render_table1

    print(render_table1())
    return 0


def cmd_figure7(args) -> int:
    from .experiments.clomp import check_expectations, figure7, render_figure7

    rows = figure7(n_threads=args.threads, scale=args.scale, seed=args.seed)
    print(render_figure7(rows))
    problems = check_expectations(rows)
    if problems:
        print("\nnarrative check FAILED:")
        for prob in problems:
            print(f"  ! {prob}")
        return 1
    print("\nnarrative check: OK (all Figure 7 observations hold)")
    return 0


def cmd_figure8(args) -> int:
    from .experiments.categorize import figure8, render_figure8

    rows = figure8(n_threads=args.threads, scale=args.scale, seed=args.seed)
    print(render_figure8(rows))
    return 0


def cmd_correctness(args) -> int:
    from .experiments.correctness import render_section72, section72

    rows = section72(n_threads=args.threads, scale=args.scale,
                     seed=args.seed)
    print(render_section72(rows))
    return 0 if all(r.ok for r in rows) else 1


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "view": cmd_view,
    "measure-overhead": cmd_measure_overhead,
    "measure-speedup": cmd_measure_speedup,
    "table1": cmd_table1,
    "figure7": cmd_figure7,
    "figure8": cmd_figure8,
    "correctness": cmd_correctness,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)
