"""Path-sensitivity reproducers for the dataflow pass (``repro check``).

Three microbenchmarks, each engineered to exercise one capability of
:mod:`repro.analysis.dataflow` that the flow-insensitive passes lack:

* ``micro_growing_txn`` — every transaction scans a private read prefix
  that *grows* with the outer iteration.  No single observed attempt
  overflows the read-set budget, so the footprint linter stays silent —
  but the monotone-growth widening proves the trend is unbounded and
  emits ``conditional-capacity-overflow`` (with ``observed_overflow``
  false) plus ``loop-scaled-footprint``: the previously-missed case.

* ``micro_conditional_capacity`` — one branch arm sweeps more lines than
  the write-set budget, the other touches two.  The per-path intervals
  diverge (``divergent-path-footprint``); the heavy arm overflows only
  *conditionally* (``conditional-capacity-overflow`` with
  ``observed_overflow`` true, sharpening the leaf prediction to
  ``capacity-overflow``), and the plain linter still sees the worst
  attempt (``capacity-risk``, not ``always``).

* ``micro_nested_guard`` — a writer updates a record while holding
  *both* of two nested spin locks; readers transactionally load the
  outer lock (an explicit subscription) before reading the record.  The
  flow-insensitive per-lock race check used to flag the inner lock as
  unsubscribed — a false positive, since subscribing to any member of
  the exact lockset serializes against the whole critical section.  The
  path-sensitive exact-lockset check stays silent.
"""

from __future__ import annotations

from ..sim.config import CACHELINE
from ..sim.program import simfn
from ..dslib.array import IntArray
from .base import Workload, register


# ---------------------------------------------------- loop-scaled footprint


@simfn
def dataflow_growing_reader(ctx, arr: IntArray, iters: int):
    """Read a private prefix that grows by four lines per iteration.

    Every observed attempt fits the read-set budget; the *trend* does
    not — exactly what monotone widening is for.
    """
    n = arr.length
    for it in range(iters):
        prefix = min(n, 4 + it * 4)  # plateaus at n: still monotone
        def body(c, k=prefix):
            total = 0
            for i in range(k):
                v = yield from arr.get(c, i)
                total += v
            return total
        yield from ctx.atomic(body, name="growing_scan")
        yield from ctx.compute(150)


@register
class MicroGrowingTxn(Workload):
    name = "micro_growing_txn"
    suite = "micro"
    expected_type = "II"
    description = ("read prefix grows every iteration: no observed "
                   "attempt overflows, the widened trend does")
    expected_findings = (
        "conditional-capacity-overflow",
        "loop-scaled-footprint",
    )

    def build(self, sim, n_threads, scale, rng):
        iters = self.iters(200, scale)
        programs = []
        for _ in range(n_threads):
            arr = IntArray(sim.memory, 64, line_per_element=True)
            arr.host_fill(range(64))
            programs.append((dataflow_growing_reader, (arr, iters), {}))
        return programs


# ------------------------------------------------ conditional capacity path


@simfn
def dataflow_cond_capacity_worker(ctx, region_base: int, lines: int,
                                  heavy_every: int, iters: int,
                                  spacing: int):
    """Sweep past the write-set budget on every ``heavy_every``-th
    iteration; touch two lines otherwise.  The branch is decided
    *outside* the transaction, so both the symbolic and the dynamic
    drive take the same arms in the same order."""
    # phase-stagger the threads: heavy sweeps (and their fallback
    # acquisitions) never overlap, so the profile shows pure capacity
    # aborts with no fallback-lock conflict noise
    yield from ctx.compute(1 + ctx.tid * (spacing // 2))
    for it in range(iters):
        heavy = it % heavy_every == 0
        def body(c, hot=heavy, salt=it):
            if hot:
                for i in range(lines):
                    addr = region_base + ((i * 7919 + salt) % lines) * CACHELINE
                    yield from c.store(addr, salt)
            else:
                yield from c.store(region_base, salt)
                yield from c.load(region_base + CACHELINE)
                # keep the light arm's body warm: T_oh stays under the
                # merge threshold on both the static and dynamic side
                yield from c.compute(250)
        yield from ctx.atomic(body, name="cond_sweep")
        # long fixed private phase between attempts keeps the threads in
        # their staggered lanes (randomizing it would let them drift)
        yield from ctx.compute(spacing)


@register
class MicroConditionalCapacity(Workload):
    name = "micro_conditional_capacity"
    suite = "micro"
    expected_type = "II"
    description = ("one branch arm overflows the write budget, the "
                   "other touches two lines: conditional capacity")
    expected_findings = (
        "capacity-risk",
        "conditional-capacity-overflow",
        "divergent-path-footprint",
    )

    def build(self, sim, n_threads, scale, rng):
        lines = int(sim.config.wset_lines * 1.5)
        iters = self.iters(36, scale)
        spacing = 8_000 * max(4, n_threads)
        programs = []
        for _ in range(n_threads):
            base = sim.memory.alloc(lines * CACHELINE, align=CACHELINE)
            programs.append((
                dataflow_cond_capacity_worker,
                (base, lines, 3, iters, spacing), {},
            ))
        return programs


# ------------------------------------------------- exact-lockset precision


@simfn
def dataflow_guard_writer(ctx, l1_addr: int, l2_addr: int, arr: IntArray,
                          iters: int):
    """Update a two-word record while holding *both* nested spin locks.

    Readers subscribe to ``l1_addr`` only — which is enough: nobody can
    be inside this critical section without holding it.
    """
    for _ in range(iters):
        yield from ctx.compute(20000)     # long private phase up front
        for lock_addr in (l1_addr, l2_addr):
            while True:
                held = yield from ctx.load(lock_addr)
                if held == 0:
                    ok = yield from ctx.cas(lock_addr, 0, ctx.tid + 1)
                    if ok:
                        break
                yield from ctx.compute(60)
        v = yield from arr.get(ctx, 0)
        yield from arr.set(ctx, 0, v + 1)
        yield from arr.set(ctx, 1, v + 1)
        yield from ctx.store(l2_addr, 0)
        yield from ctx.store(l1_addr, 0)


@simfn
def dataflow_guard_reader(ctx, l1_addr: int, arr: IntArray, iters: int):
    """Read the record transactionally, subscribed to the outer lock."""
    for _ in range(iters):
        def body(c):
            guard = yield from c.load(l1_addr)
            a = yield from arr.get(c, 0)
            b = yield from arr.get(c, 1)
            yield from c.compute(30)
            return guard + a + b
        yield from ctx.atomic(body, name="guarded_pair_read")
        yield from ctx.compute(120)


@register
class MicroNestedGuard(Workload):
    name = "micro_nested_guard"
    suite = "micro"
    expected_type = "II"
    description = ("writer holds two nested locks, readers subscribe to "
                   "the outer one: safe, and only the path-sensitive "
                   "lockset check knows it")
    expected_findings = ("unprotected-shared-access",)

    def build(self, sim, n_threads, scale, rng):
        l1_addr = sim.memory.alloc_line()
        l2_addr = sim.memory.alloc_line()
        arr = IntArray(sim.memory, 2, line_per_element=False)
        iters = self.iters(400, scale)
        programs = [(dataflow_guard_writer,
                     (l1_addr, l2_addr, arr, max(3, iters // 40)), {})]
        programs += [
            (dataflow_guard_reader, (l1_addr, arr, iters), {})
        ] * max(1, n_threads - 1)
        return programs[:n_threads] if n_threads > 1 else programs
