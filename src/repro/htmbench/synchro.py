"""Synchrobench data-structure microbenchmarks: linkedlist, skiplist.

``linkedlist`` is Table 2's biggest win (3.78x): transactional traversal
of a sorted list accumulates the whole traversed prefix in the read set,
so *any* concurrent write to that prefix aborts it — lots of conflict
aborts, each individually cheap (low average penalty, exactly the paper's
symptom).  The optimized variant bounds each transaction to a fixed hop
count under auxiliary locks.

``skiplist`` runs the same operation mix but descends in O(log n): far
smaller read sets, far fewer conflicts — a built-in contrast workload.
"""

from __future__ import annotations

from ..dslib.linkedlist import (
    _OFF_KEY as _KEY_OFF,
    _OFF_NEXT as _NEXT_OFF,
    SortedList,
    list_contains,
    list_insert,
    list_remove,
    list_step,
)
from ..dslib.skiplist import (
    SkipList,
    skiplist_contains,
    skiplist_insert,
    skiplist_remove,
)
from ..sim.program import simfn
from .base import Workload, register

#: operation mix (Synchrobench defaults): 80% reads, 10% insert, 10% remove
READ_PCT = 0.8
INSERT_PCT = 0.1


@simfn
def linkedlist_worker(ctx, lst: SortedList, key_range: int, n_ops: int):
    """Whole-operation transactions over the sorted list (naive)."""
    rng = ctx.rng
    for _ in range(n_ops):
        op = rng.random()
        key = rng.randrange(key_range)
        if op < READ_PCT:
            def body(c, key=key):
                r = yield from c.call(list_contains, lst, key)
                return r
            name = "list_contains_cs"
        elif op < READ_PCT + INSERT_PCT:
            def body(c, key=key):
                r = yield from c.call(list_insert, lst, key)
                return r
            name = "list_update_cs"
        else:
            def body(c, key=key):
                r = yield from c.call(list_remove, lst, key)
                return r
            name = "list_update_cs"
        yield from ctx.atomic(body, name=name)
        yield from ctx.compute(60)


@simfn
def linkedlist_bounded_worker(ctx, lst: SortedList, key_range: int,
                              n_ops: int, max_hops: int):
    """The Table-2 fix: traverse in bounded-hop transactions.

    Each transaction advances at most ``max_hops`` nodes from a remembered
    position (the auxiliary hand-over-hand locking of the paper's fix,
    expressed as small transactions): the read set — and with it the
    conflict window — stays constant instead of O(list length)."""
    rng = ctx.rng
    for _ in range(n_ops):
        op = rng.random()
        key = rng.randrange(key_range)
        pos = lst.head
        while True:
            def walk(c, key=key, pos=pos):
                r = yield from c.call(list_step, lst, pos, key, max_hops)
                return r

            prev, cur, done = yield from ctx.atomic(walk, name="list_walk_cs")
            if done:
                break
            pos = prev
        if op < READ_PCT:
            yield from ctx.compute(60)
            continue  # the walk already answered contains()
        insert = op < READ_PCT + INSERT_PCT

        def mutate(c, key=key, pos=prev, insert=insert):
            # re-locate from the found position inside one small
            # transaction: the long prefix is no longer in the read set
            p, cur2, _ = yield from c.call(list_step, lst, pos, key,
                                           max_hops * 2)
            k = yield from c.load(cur2 + _KEY_OFF)
            if insert:
                if k == key:
                    return False
                node = lst._new_node(key, 0)
                yield from c.store(node + _KEY_OFF, key)
                yield from c.store(node + _NEXT_OFF, cur2)
                yield from c.store(p + _NEXT_OFF, node)
                return True
            if k != key:
                return False
            nxt = yield from c.load(cur2 + _NEXT_OFF)
            yield from c.store(p + _NEXT_OFF, nxt)
            return True

        yield from ctx.atomic(mutate, name="list_update_cs")
        yield from ctx.compute(60)


@register
class SynchroLinkedList(Workload):
    name = "linkedlist"
    suite = "synchro"
    expected_type = "III"
    description = "sorted-list ops; whole-traversal transactions (naive)"

    def build(self, sim, n_threads, scale, rng):
        key_range = self.params.get("key_range", 512)
        lst = SortedList(sim.memory)
        for key in range(0, key_range, 2):  # 50% pre-filled
            lst.host_insert(key)
        ops = self.iters(60, scale)
        return [(linkedlist_worker, (lst, key_range, ops), {})] * n_threads


@register
class SynchroSkipList(Workload):
    name = "skiplist"
    suite = "synchro"
    expected_type = "III"
    description = "skip-list ops: logarithmic transactional footprints"

    def build(self, sim, n_threads, scale, rng):
        key_range = self.params.get("key_range", 64)
        sl = SkipList(sim.memory, max_level=6, seed=rng.randrange(1 << 30))
        for key in range(0, key_range, 2):
            sl.host_insert(key)
        ops = self.iters(80, scale)
        return [(skiplist_worker, (sl, key_range, ops), {})] * n_threads


#: the skiplist runs Synchrobench's write-heavy mix (50% updates)
SKIP_READ_PCT = 0.5
SKIP_INSERT_PCT = 0.25


@simfn
def skiplist_worker(ctx, sl: SkipList, key_range: int, n_ops: int):
    rng = ctx.rng
    for _ in range(n_ops):
        op = rng.random()
        key = rng.randrange(key_range)
        if op < SKIP_READ_PCT:
            def body(c, key=key):
                r = yield from c.call(skiplist_contains, sl, key)
                return r
        elif op < SKIP_READ_PCT + SKIP_INSERT_PCT:
            def body(c, key=key):
                r = yield from c.call(skiplist_insert, sl, key)
                return r
        else:
            def body(c, key=key):
                r = yield from c.call(skiplist_remove, sl, key)
                return r
        yield from ctx.atomic(body, name="skiplist_op_cs")
        yield from ctx.compute(60)
