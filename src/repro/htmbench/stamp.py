"""STAMP benchmarks (Minh et al.), re-implemented over the simulator.

Seven programs with the transactional behaviours the paper characterizes
(all Type III except ``ssca``): travel reservations spanning several
tables (vacation), shared-centroid updates (kmeans), segment
deduplication and assembly (genome), path claiming over a grid
(labyrinth), cavity re-triangulation (yada), packet reassembly
(intruder), and a flood of tiny graph-update transactions (ssca).
"""

from __future__ import annotations

import random

from ..dslib.array import IntArray
from ..dslib.hashtable import (
    HashTable,
    hashtable_bump,
    hashtable_insert,
    hashtable_search,
)
# (hashtable_bump is used by vacation and genome)
from ..dslib.queue import EMPTY, RingQueue, queue_dequeue
from ..sim.program import Barrier, simfn
from .base import Workload, register


# ---------------------------------------------------------------------------
# vacation — travel reservation system
# ---------------------------------------------------------------------------


class VacationDb:
    """Three resource tables plus a customer ledger."""

    def __init__(self, sim, n_items: int, seed: int) -> None:
        mem = sim.memory
        self.n_items = n_items
        self.tables = [HashTable(mem, n_items) for _ in range(3)]  # car/flight/room
        self.customers = HashTable(mem, 256)
        rng = random.Random(seed)
        for table in self.tables:
            for item in range(n_items):
                table.host_insert(item, rng.randrange(5, 20))  # free seats
        for cust in range(64):
            self.customers.host_insert(cust, 0)


@simfn
def vacation_client(ctx, db: VacationDb, n_tasks: int, queries_per_task: int):
    """STAMP's client loop: most tasks are multi-table reservations done
    in one large transaction (the naive shape Table 2 optimizes)."""
    rng = ctx.rng
    for _ in range(n_tasks):
        customer = rng.randrange(64)
        picks = [
            (rng.randrange(3), rng.randrange(db.n_items))
            for _ in range(queries_per_task)
        ]

        def reserve(c, picks=picks, customer=customer):
            total = 0
            for table_idx, item in picks:
                table = db.tables[table_idx]
                node = yield from c.call(hashtable_search, table, item)
                if node:
                    free = yield from c.call(hashtable_bump, table, node, -1)
                    if free < 0:
                        # restore: no seats left on this resource
                        yield from c.call(hashtable_bump, table, node, +1)
                    else:
                        total += 10 + item % 7
            cnode = yield from c.call(hashtable_search, db.customers, customer)
            if cnode:
                yield from c.call(hashtable_bump, db.customers, cnode, total)

        yield from ctx.atomic(reserve, name="vacation_reserve")
        yield from ctx.compute(250)


@register
class Vacation(Workload):
    name = "vacation"
    suite = "stamp"
    expected_type = "III"
    description = "travel reservations spanning car/flight/room tables"

    def build(self, sim, n_threads, scale, rng):
        db = VacationDb(sim, n_items=self.params.get("n_items", 96),
                        seed=rng.randrange(1 << 30))
        tasks = self.iters(120, scale)
        q = self.params.get("queries_per_task", 4)
        return [(vacation_client, (db, tasks, q), {})] * n_threads


# ---------------------------------------------------------------------------
# kmeans — shared-centroid clustering
# ---------------------------------------------------------------------------


class KmeansData:
    """K centroids with per-dimension sums and counts in shared memory."""

    DIMS = 4

    def __init__(self, sim, k: int, n_points: int, seed: int) -> None:
        self.k = k
        rng = random.Random(seed)
        self.points = [
            tuple(rng.randrange(100) for _ in range(self.DIMS))
            for _ in range(n_points)
        ]
        self.centers = [
            tuple(rng.randrange(100) for _ in range(self.DIMS))
            for _ in range(k)
        ]
        # per-cluster accumulators: sums[dim] then count, one line each
        self.sums = IntArray(sim.memory, k * (self.DIMS + 1),
                             line_per_element=False)


@simfn
def kmeans_worker(ctx, data: KmeansData, start: int, count: int,
                  bar: Barrier, iterations: int):
    """Assign a chunk of points, accumulating into shared centroids."""
    dims = data.DIMS
    for _ in range(iterations):
        for idx in range(start, start + count):
            point = data.points[idx % len(data.points)]
            # nearest-centroid scan is pure compute over host-cached centers
            yield from ctx.compute(12 * data.k)
            best, best_d = 0, None
            for ci, center in enumerate(data.centers):
                d = sum((a - b) ** 2 for a, b in zip(point, center, strict=True))
                if best_d is None or d < best_d:
                    best, best_d = ci, d

            def accumulate(c, ci=best, point=point):
                base = ci * (dims + 1)
                for d in range(dims):
                    yield from data.sums.add(c, base + d, point[d])
                yield from data.sums.add(c, base + dims, 1)

            yield from ctx.atomic(accumulate, name="kmeans_accumulate")
        yield from ctx.barrier(bar)


@register
class Kmeans(Workload):
    name = "kmeans"
    suite = "stamp"
    expected_type = "III"
    description = "k-means with transactional centroid accumulation"

    def build(self, sim, n_threads, scale, rng):
        k = self.params.get("k", 6)
        per_thread = self.iters(60, scale)
        data = KmeansData(sim, k, n_points=per_thread * n_threads,
                          seed=rng.randrange(1 << 30))
        bar = Barrier(n_threads)
        iterations = self.params.get("iterations", 3)
        return [
            (kmeans_worker, (data, tid * per_thread, per_thread, bar,
                             iterations), {})
            for tid in range(n_threads)
        ]


# ---------------------------------------------------------------------------
# genome — segment deduplication + assembly
# ---------------------------------------------------------------------------


class GenomeData:
    def __init__(self, sim, n_segments: int, n_unique: int, seed: int) -> None:
        rng = random.Random(seed)
        self.segments = [rng.randrange(n_unique) for _ in range(n_segments)]
        self.unique = HashTable(sim.memory, max(16, n_unique // 8))
        # assembly links: one word per unique segment
        self.links = IntArray(sim.memory, n_unique)
        self.n_unique = n_unique


@simfn
def genome_worker(ctx, data: GenomeData, start: int, count: int,
                  bar: Barrier):
    # phase 1: deduplicate segments into the hash set
    for idx in range(start, start + count):
        seg = data.segments[idx % len(data.segments)]

        def dedup(c, seg=seg):
            node = yield from c.call(hashtable_search, data.unique, seg)
            if node:
                # count the duplicate: a write on every hit
                yield from c.call(hashtable_bump, data.unique, node)
            else:
                yield from c.call(hashtable_insert, data.unique, seg, 1)

        yield from ctx.atomic(dedup, name="genome_dedup")
        yield from ctx.compute(80)
    yield from ctx.barrier(bar)
    # phase 2: assemble — link segments by overlap (adjacent ids here)
    rng = ctx.rng
    for _ in range(count // 2):
        seg = rng.randrange(data.n_unique - 1)

        def link(c, seg=seg):
            cur = yield from data.links.get(c, seg)
            if cur == 0:
                yield from data.links.set(c, seg, seg + 1)

        yield from ctx.atomic(link, name="genome_link")
        yield from ctx.compute(120)


@register
class Genome(Workload):
    name = "genome"
    suite = "stamp"
    expected_type = "III"
    description = "gene segment dedup and assembly"

    def build(self, sim, n_threads, scale, rng):
        per_thread = self.iters(150, scale)
        data = GenomeData(
            sim,
            n_segments=per_thread * n_threads,
            n_unique=max(32, (per_thread * n_threads) // 8),
            seed=rng.randrange(1 << 30),
        )
        bar = Barrier(n_threads)
        return [
            (genome_worker, (data, tid * per_thread, per_thread, bar), {})
            for tid in range(n_threads)
        ]


# ---------------------------------------------------------------------------
# labyrinth — transactional path claiming over a grid
# ---------------------------------------------------------------------------


class GridData:
    """A W x H routing grid, one word per cell (row-major)."""

    def __init__(self, sim, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self.cells = IntArray(sim.memory, width * height)

    def cell_index(self, x: int, y: int) -> int:
        return y * self.width + x

    def l_path(self, x0: int, y0: int, x1: int, y1: int) -> list[int]:
        """An L-shaped route: horizontal then vertical (each vertical step
        lands on a different cache line — big transactional footprints)."""
        cells = []
        step = 1 if x1 >= x0 else -1
        for x in range(x0, x1 + step, step):
            cells.append(self.cell_index(x, y0))
        step = 1 if y1 >= y0 else -1
        for y in range(y0 + step, y1 + step, step):
            cells.append(self.cell_index(x1, y))
        return cells


@simfn
def labyrinth_router(ctx, grid: GridData, n_paths: int, max_span: int):
    """Claim L-shaped paths transactionally, with rip-up-and-reroute:
    failed validations release earlier claims, keeping the grid — and
    the conflict rate — alive for the whole run (as in STAMP)."""
    rng = ctx.rng
    routed = 0
    claimed_paths = []
    while routed < n_paths:
        x0, y0 = rng.randrange(grid.width), rng.randrange(grid.height)
        x1 = min(grid.width - 1, x0 + rng.randrange(1, max_span))
        y1 = min(grid.height - 1, y0 + rng.randrange(1, max_span))
        path = grid.l_path(x0, y0, x1, y1)

        def claim(c, path=path):
            for cell in path:
                v = yield from grid.cells.get(c, cell)
                if v:
                    return False  # occupied: abandon this plan
            for cell in path:
                yield from grid.cells.set(c, cell, c.tid + 1)
            return True

        ok = yield from ctx.atomic(claim, name="labyrinth_claim")
        if ok:
            claimed_paths.append(path)
        routed += 1
        yield from ctx.compute(300)  # plan the next route
        # rip-up: timing validation fails for half the routes, releasing
        # their cells (keeps the board contended instead of saturating)
        if claimed_paths and rng.random() < 0.5:
            victim = claimed_paths.pop(rng.randrange(len(claimed_paths)))

            def ripup(c, path=victim):
                for cell in path:
                    yield from grid.cells.set(c, cell, 0)

            yield from ctx.atomic(ripup, name="labyrinth_ripup")


@register
class Labyrinth(Workload):
    name = "labyrinth"
    suite = "stamp"
    expected_type = "III"
    description = "maze routing with transactional path claims"

    def build(self, sim, n_threads, scale, rng):
        grid = GridData(sim, width=32, height=32)
        n_paths = self.iters(40, scale)
        max_span = self.params.get("max_span", 16)
        return [(labyrinth_router, (grid, n_paths, max_span), {})] * n_threads


# ---------------------------------------------------------------------------
# yada — Delaunay refinement (cavity rewriting)
# ---------------------------------------------------------------------------


@simfn
def yada_refiner(ctx, mesh: IntArray, n_steps: int, cavity_size: int):
    """Pick a bad triangle, read its cavity, re-triangulate (rewrite)."""
    rng = ctx.rng
    n = mesh.length
    for _ in range(n_steps):
        center = rng.randrange(n)
        cavity = [(center + d) % n for d in range(cavity_size)]

        def retriangulate(c, cavity=cavity):
            quality = 0
            for cell in cavity:
                v = yield from mesh.get(c, cell)
                quality += v
            for cell in cavity:
                yield from mesh.set(c, cell, (quality % 97) + 1)

        yield from ctx.atomic(retriangulate, name="yada_cavity")
        yield from ctx.compute(200)


@register
class Yada(Workload):
    name = "yada"
    suite = "stamp"
    expected_type = "III"
    description = "Delaunay mesh refinement: overlapping cavity rewrites"

    def build(self, sim, n_threads, scale, rng):
        mesh = IntArray(sim.memory, self.params.get("mesh_cells", 512))
        mesh.host_fill(i % 13 + 1 for i in range(mesh.length))
        steps = self.iters(80, scale)
        cavity = self.params.get("cavity_size", 26)
        return [(yada_refiner, (mesh, steps, cavity), {})] * n_threads


# ---------------------------------------------------------------------------
# intruder — packet reassembly and detection
# ---------------------------------------------------------------------------


class IntruderData:
    def __init__(self, sim, n_flows: int, frags_per_flow: int,
                 seed: int) -> None:
        rng = random.Random(seed)
        n_packets = n_flows * frags_per_flow
        self.queue = RingQueue(sim.memory, n_packets + 1)
        packets = [
            flow * frags_per_flow + frag
            for flow in range(n_flows)
            for frag in range(frags_per_flow)
        ]
        rng.shuffle(packets)
        for p in packets:
            self.queue.host_enqueue(p + 1)  # 0 is the empty sentinel
        self.frags_per_flow = frags_per_flow
        self.fragments = HashTable(sim.memory, max(64, n_flows))


@simfn
def intruder_worker(ctx, data: IntruderData):
    """Dequeue packets, count fragments per flow, run detection on
    completed flows (pure compute outside the critical sections)."""
    while True:
        def pop(c):
            value = yield from c.call(queue_dequeue, data.queue)
            return value

        packet = yield from ctx.atomic(pop, name="intruder_pop")
        if packet == EMPTY:
            return
        flow = (packet - 1) // data.frags_per_flow

        def reassemble(c, flow=flow):
            node = yield from c.call(hashtable_search, data.fragments, flow)
            if node:
                count = yield from c.call(hashtable_bump, data.fragments, node)
            else:
                yield from c.call(hashtable_insert, data.fragments, flow, 1)
                count = 1
            return count

        count = yield from ctx.atomic(reassemble, name="intruder_reassemble")
        if count == data.frags_per_flow:
            yield from ctx.compute(600)  # signature detection on the flow


@register
class Intruder(Workload):
    name = "intruder"
    suite = "stamp"
    expected_type = "III"
    description = "network intrusion detection: queue + reassembly txns"

    def build(self, sim, n_threads, scale, rng):
        flows = self.iters(60, scale)
        data = IntruderData(sim, n_flows=flows, frags_per_flow=4,
                            seed=rng.randrange(1 << 30))
        return [(intruder_worker, (data,), {})] * n_threads


# ---------------------------------------------------------------------------
# ssca (STAMP's SSCA2 kernel) — tiny graph-update transactions
# ---------------------------------------------------------------------------


class SscaGraph:
    """Adjacency storage: per-vertex degree counter + edge slots."""

    MAX_DEGREE = 16

    def __init__(self, sim, n_vertices: int) -> None:
        self.n_vertices = n_vertices
        self.degrees = IntArray(sim.memory, n_vertices)
        self.edges = IntArray(sim.memory, n_vertices * self.MAX_DEGREE)


@simfn
def ssca_builder(ctx, graph: SscaGraph, n_edges: int):
    """Insert random edges: one small transaction per edge."""
    rng = ctx.rng
    n = graph.n_vertices
    for _ in range(n_edges):
        u, v = rng.randrange(n), rng.randrange(n)

        def add_edge(c, u=u, v=v):
            deg = yield from graph.degrees.get(c, u)
            if deg < graph.MAX_DEGREE:
                yield from graph.edges.set(c, u * graph.MAX_DEGREE + deg, v)
                yield from graph.degrees.set(c, u, deg + 1)

        yield from ctx.atomic(add_edge, name="ssca_add_edge")
        yield from ctx.compute(60)


@register
class StampSsca(Workload):
    name = "ssca"
    suite = "stamp"
    expected_type = "II"
    description = "STAMP SSCA2 kernel: a flood of tiny edge-insert txns"

    def build(self, sim, n_threads, scale, rng):
        graph = SscaGraph(sim, n_vertices=self.params.get("n_vertices", 512))
        edges = self.iters(300, scale)
        return [(ssca_builder, (graph, edges), {})] * n_threads
