"""SPLASH-2 benchmarks: barnes, fmm, ocean, water, raytrace.

The paper's Figure 8 puts all five in Type I: critical sections are under
20% of execution, so there is nothing HTM-worth optimizing — their role
in the evaluation is to show TxSampler's time analysis *stopping early*.
Each models its application's compute/synchronization shape: heavy
numerical phases with occasional small transactional reductions.
"""

from __future__ import annotations

from ..dslib.array import IntArray
from ..sim.program import Barrier, simfn
from .base import Workload, register


# ---------------------------------------------------------------------------
# barnes — Barnes-Hut N-body
# ---------------------------------------------------------------------------


@simfn
def barnes_worker(ctx, com: IntArray, n_bodies: int, interactions: int):
    """Force computation per body (compute), then a transactional update
    of the octree cell's center-of-mass accumulator."""
    rng = ctx.rng
    n_cells = com.length // 2
    for _ in range(n_bodies):
        yield from ctx.compute(160 * interactions)  # tree walk + forces
        cell = rng.randrange(n_cells)

        def update_com(c, cell=cell):
            yield from com.add(c, cell * 2, 5)      # mass
            yield from com.add(c, cell * 2 + 1, 3)  # moment

        yield from ctx.atomic(update_com, name="barnes_com")


@register
class Barnes(Workload):
    name = "barnes"
    suite = "splash2"
    expected_type = "I"
    description = "Barnes-Hut N-body: rare cell-accumulator transactions"

    def build(self, sim, n_threads, scale, rng):
        com = IntArray(sim.memory, 64 * 2)
        bodies = self.iters(40, scale)
        return [(barnes_worker, (com, bodies, 40), {})] * n_threads


# ---------------------------------------------------------------------------
# fmm — fast multipole method
# ---------------------------------------------------------------------------


@simfn
def fmm_worker(ctx, multipoles: IntArray, boxes: int, bar: Barrier,
               passes: int):
    """Upward/downward passes over the box tree with transactional
    multipole merges at shared boxes, barrier-separated."""
    rng = ctx.rng
    for _ in range(passes):
        for _ in range(boxes):
            yield from ctx.compute(2600)  # multipole expansion math
            box = rng.randrange(multipoles.length)

            def merge(c, box=box):
                yield from multipoles.add(c, box, 7)

            yield from ctx.atomic(merge, name="fmm_merge")
        yield from ctx.barrier(bar)


@register
class Fmm(Workload):
    name = "fmm"
    suite = "splash2"
    expected_type = "I"
    description = "fast multipole method: barrier phases, rare merges"

    def build(self, sim, n_threads, scale, rng):
        multipoles = IntArray(sim.memory, 96)
        bar = Barrier(n_threads)
        boxes = self.iters(12, scale)
        return [(fmm_worker, (multipoles, boxes, bar, 3), {})] * n_threads


# ---------------------------------------------------------------------------
# ocean — stencil relaxation with a global residual
# ---------------------------------------------------------------------------


@simfn
def ocean_worker(ctx, grid: IntArray, residual: IntArray, rows_base: int,
                 rows: int, width: int, bar: Barrier, sweeps: int):
    """Red-black relaxation over a private row band; only the residual
    reduction at the end of each sweep is transactional."""
    for _ in range(sweeps):
        local_residual = 0
        for r in range(rows):
            row = rows_base + r
            # read the row and its neighbours, write the relaxed row
            for col in range(0, width, 8):
                idx = (row * width + col) % grid.length
                v = yield from grid.get(ctx, idx)
                yield from grid.set(ctx, idx, (v * 3 + col) % 1000)
                local_residual += v % 7
            yield from ctx.compute(1500)

        def reduce(c, lr=local_residual):
            yield from residual.add(c, 0, lr)

        yield from ctx.atomic(reduce, name="ocean_residual")
        yield from ctx.barrier(bar)


@register
class Ocean(Workload):
    name = "ocean"
    suite = "splash2"
    expected_type = "I"
    description = "ocean simulation: stencil sweeps, one reduction per sweep"

    def build(self, sim, n_threads, scale, rng):
        width = 64
        rows_per_thread = self.iters(6, scale)
        grid = IntArray(sim.memory, width * rows_per_thread * n_threads)
        residual = IntArray(sim.memory, 1, line_per_element=True)
        bar = Barrier(n_threads)
        return [
            (ocean_worker,
             (grid, residual, tid * rows_per_thread, rows_per_thread, width,
              bar, 4), {})
            for tid in range(n_threads)
        ]


# ---------------------------------------------------------------------------
# water — molecular dynamics with a global potential-energy sum
# ---------------------------------------------------------------------------


@simfn
def water_worker(ctx, energy: IntArray, molecules: int, bar: Barrier,
                 steps: int):
    """Pairwise intra/inter molecular forces (compute); the potential
    energy accumulates transactionally once per molecule batch."""
    rng = ctx.rng
    for _ in range(steps):
        batch_energy = 0
        for _ in range(molecules):
            yield from ctx.compute(1900)  # O(pairs) force evaluation
            batch_energy += rng.randrange(20)

        def accumulate(c, e=batch_energy):
            yield from energy.add(c, 0, e)

        yield from ctx.atomic(accumulate, name="water_energy")
        yield from ctx.barrier(bar)


@register
class Water(Workload):
    name = "water"
    suite = "splash2"
    expected_type = "I"
    description = "water MD: heavy force math, one energy txn per batch"

    def build(self, sim, n_threads, scale, rng):
        energy = IntArray(sim.memory, 1, line_per_element=True)
        bar = Barrier(n_threads)
        molecules = self.iters(10, scale)
        return [(water_worker, (energy, molecules, bar, 4), {})] * n_threads


# ---------------------------------------------------------------------------
# raytrace — tile renderer with a shared work counter
# ---------------------------------------------------------------------------


@simfn
def raytrace_worker(ctx, next_tile: IntArray, stats: IntArray,
                    n_tiles: int, rays_per_tile: int):
    """Self-scheduling tile loop: grab a tile id transactionally, trace
    its rays (compute), bump the shared ray counter."""
    while True:
        def grab(c):
            tile = yield from next_tile.get(c, 0)
            if tile >= n_tiles:
                return -1
            yield from next_tile.set(c, 0, tile + 1)
            return tile

        tile = yield from ctx.atomic(grab, name="raytrace_grab")
        if tile < 0:
            return
        yield from ctx.compute(120 * rays_per_tile)  # trace the tile

        def account(c, tile=tile):
            yield from stats.add(c, 0, rays_per_tile)

        yield from ctx.atomic(account, name="raytrace_stats")


@register
class Raytrace(Workload):
    name = "raytrace"
    suite = "splash2"
    expected_type = "I"
    description = "ray tracing: self-scheduled tiles, tiny counter txns"

    def build(self, sim, n_threads, scale, rng):
        next_tile = IntArray(sim.memory, 1, line_per_element=True)
        stats = IntArray(sim.memory, 1, line_per_element=True)
        tiles = self.iters(8, scale) * n_threads
        return [
            (raytrace_worker, (next_tile, stats, tiles, 120), {})
        ] * n_threads
