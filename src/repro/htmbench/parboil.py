"""Parboil ``histo`` — the §8.3 case study.

Listing 3 of the paper: every input element is one tiny transaction
bumping ``histo[value]`` (clamped at 255).  With 14 threads the
transaction begin/end overhead (T_oh) exceeds 40% of execution — the
symptom TxSampler flags and the coalescing optimization (Listing 4)
removes for a 2.95x speedup.

Two inputs, as in the paper:

* **input 1** — skewed values (unevenly distributed output): coalesced
  transactions almost never collide;
* **input 2** — uniform values (evenly distributed output): coalescing
  *alone* makes things worse, because neighbouring threads now commit
  fat transactions that false-share histogram cache lines; sorting the
  input (each thread's block maps to a narrow bin range) fixes it.
"""

from __future__ import annotations

import random

from ..dslib.array import IntArray
from ..sim.program import simfn
from .base import Workload, register

N_BINS = 64
MAX_COUNT = 255

INPUT_SKEWED = 1
INPUT_UNIFORM = 2


def make_image(n_pixels: int, input_kind: int, seed: int) -> list[int]:
    """Pixel values in [0, N_BINS)."""
    rng = random.Random(seed)
    if input_kind == INPUT_SKEWED:
        # 80% of the pixels land in an eighth of the bins
        hot = N_BINS // 8
        return [
            rng.randrange(hot) if rng.random() < 0.8 else rng.randrange(N_BINS)
            for _ in range(n_pixels)
        ]
    if input_kind == INPUT_UNIFORM:
        return [rng.randrange(N_BINS) for _ in range(n_pixels)]
    raise ValueError(f"unknown histo input {input_kind!r}")


@simfn
def histo_naive(ctx, histo: IntArray, image: list[int], start: int,
                count: int):
    """Listing 3: one transaction per pixel."""
    n = len(image)
    for i in range(start, start + count):
        value = image[i % n]

        def body(c, value=value):
            v = yield from histo.get(c, value)
            if v < MAX_COUNT:
                yield from histo.set(c, value, v + 1)

        yield from ctx.atomic(body, name="histo_update")


@simfn
def histo_coalesced(ctx, histo: IntArray, image: list[int], start: int,
                    count: int, txn_gran: int):
    """Listing 4: ``txn_gran`` pixels per transaction."""
    n = len(image)
    i = start
    end = start + count
    while i < end:
        chunk = range(i, min(i + txn_gran, end))

        def body(c, chunk=chunk):
            for j in chunk:
                value = image[j % n]
                v = yield from histo.get(c, value)
                if v < MAX_COUNT:
                    yield from histo.set(c, value, v + 1)

        yield from ctx.atomic(body, name="histo_update")
        i += txn_gran


@register
class Histo(Workload):
    """``input_kind`` (1 skewed / 2 uniform), ``txn_gran`` (1 = Listing 3),
    ``sort_input`` (the false-sharing fix for input 2)."""

    name = "histo"
    suite = "parboil"
    expected_type = "II"
    description = "2D histogram; tiny per-pixel transactions (Listing 3)"

    def build(self, sim, n_threads, scale, rng):
        input_kind = self.params.get("input_kind", INPUT_SKEWED)
        txn_gran = self.params.get("txn_gran", 1)
        sort_input = self.params.get("sort_input", False)
        per_thread = self.iters(1100, scale)
        image = make_image(per_thread * n_threads, input_kind,
                           rng.randrange(1 << 30))
        if sort_input:
            # static scheduling over a sorted image concentrates each
            # thread's accesses on a narrow bin range (the §8.3 fix)
            image = sorted(image)
        # bins are packed 8 per cache line: the false-sharing hazard
        histo = IntArray(sim.memory, N_BINS, line_per_element=False)
        fn = histo_naive if txn_gran <= 1 else histo_coalesced
        programs = []
        for tid in range(n_threads):
            args = [histo, image, tid * per_thread, per_thread]
            if txn_gran > 1:
                args.append(txn_gran)
            programs.append((fn, tuple(args), {}))
        return programs
