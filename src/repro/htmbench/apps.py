"""Multi-threaded applications: LevelDB, AVL tree, B+ tree, Lee-TM,
KyotoCabinet, BerkeleyDB, Memcached, PBZip2, BART, QuakeTM.

The two Table-2 apps get faithful naive shapes:

* **LevelDB** (§8.2): ``db_->Get()`` brackets every read with two
  transactions that bump/unbump the reference counts of *three shared
  objects* (the memtable, the immutable memtable, and the current
  version).  Fourteen threads hammering three counter words drive the
  abort/commit ratio to ~2.8; Table 2's fix shrinks the transactions to
  the counter updates only.
* **AVL tree**: the naive build takes a *reader lock* (a shared counter
  write) inside every lookup transaction, so even read-only operations
  conflict — T_wait dominates; the fix elides the read lock.
"""

from __future__ import annotations

import random

from ..dslib.array import IntArray
from ..dslib.avltree import AvlTree, avl_insert, avl_search
from ..dslib.bplustree import (
    BPlusTree,
    btree_insert_leaf,
    btree_lookup,
    btree_update,
)
from ..dslib.hashtable import (
    HashTable,
    good_hash,
    hashtable_bump,
    hashtable_insert,
    hashtable_search,
    hashtable_set_value,
)
from ..dslib.queue import EMPTY, RingQueue, queue_dequeue
from ..sim.program import simfn
from .base import Workload, register


# ---------------------------------------------------------------------------
# LevelDB — db_bench ReadRandom over an HTM-ified Get()
# ---------------------------------------------------------------------------


class LevelDbData:
    """A memtable index plus the three shared ref-counted objects."""

    def __init__(self, sim, n_keys: int, seed: int) -> None:
        mem = sim.memory
        self.memtable = BPlusTree(mem)
        rng = random.Random(seed)
        keys = list(range(n_keys))
        rng.shuffle(keys)
        for k in keys:
            self.memtable.host_insert(k, k * 3 + 1)
        self.n_keys = n_keys
        # mem_, imm_, versions_ are distinct heap objects: their refcount
        # words live on distinct cache lines
        self.refs = IntArray(mem, 3, line_per_element=True)
        for i in range(3):
            self.refs.host_set(i, 1)


@simfn
def leveldb_get_naive(ctx, db: LevelDbData, key: int):
    """The HTM port's Get(): txn{Ref x3 + version lookup}, read,
    txn{value check + Unref x3} — the §8.2 conflict machine."""

    def ref_all(c):
        for i in range(3):
            yield from db.refs.add(c, i, 1)
        yield from c.compute(60)  # sequence-number / version snapshot

    yield from ctx.atomic(ref_all, name="leveldb_ref")
    value = yield from ctx.call(btree_lookup, db.memtable, key)
    yield from ctx.compute(150)  # block checksum / decode

    def unref_all(c):
        yield from c.compute(40)  # validate the read result
        for i in range(3):
            v = yield from db.refs.add(c, i, -1)
            if v == 0:
                yield from c.compute(30)  # would delete the object

    yield from ctx.atomic(unref_all, name="leveldb_unref")
    return value


@simfn
def leveldb_readrandom(ctx, db: LevelDbData, n_reads: int, split: bool):
    """db_bench's ReadRandom driver."""
    rng = ctx.rng
    for _ in range(n_reads):
        key = rng.randrange(db.n_keys)
        if split:
            yield from ctx.call(leveldb_get_split, db, key)
        else:
            yield from ctx.call(leveldb_get_naive, db, key)
        yield from ctx.compute(600)  # key generation, response handling


@simfn
def leveldb_get_split(ctx, db: LevelDbData, key: int):
    """Table 2's fix: per-counter micro-transactions, lookup outside."""
    for i in range(3):
        def ref_one(c, i=i):
            yield from db.refs.add(c, i, 1)

        yield from ctx.atomic(ref_one, name="leveldb_ref_one")
    yield from ctx.compute(60)
    value = yield from ctx.call(btree_lookup, db.memtable, key)
    yield from ctx.compute(150)
    yield from ctx.compute(40)
    for i in range(3):
        def unref_one(c, i=i):
            v = yield from db.refs.add(c, i, -1)
            if v == 0:
                yield from c.compute(30)

        yield from ctx.atomic(unref_one, name="leveldb_unref_one")
    return value


@register
class LevelDb(Workload):
    name = "leveldb"
    suite = "apps"
    expected_type = "III"
    description = "LevelDB ReadRandom: shared refcounts in Get()'s txns"

    split = False

    def build(self, sim, n_threads, scale, rng):
        db = LevelDbData(sim, n_keys=self.params.get("n_keys", 512),
                         seed=rng.randrange(1 << 30))
        reads = self.iters(50, scale)
        return [
            (leveldb_readrandom, (db, reads, self.split), {})
        ] * n_threads


# ---------------------------------------------------------------------------
# AVL tree — refined transactional lock elision subject
# ---------------------------------------------------------------------------


class AvlAppData:
    def __init__(self, sim, n_keys: int, seed: int) -> None:
        self.tree = AvlTree(sim.memory)
        rng = random.Random(seed)
        keys = list(range(n_keys))
        rng.shuffle(keys)
        for k in keys:
            self.tree.host_insert(k, k)
        self.n_keys = n_keys
        # the reader lock: a shared reader-count word
        self.read_lock = IntArray(sim.memory, 1, line_per_element=True)


@simfn
def avlapp_worker(ctx, data: AvlAppData, n_ops: int, elide_read_lock: bool):
    """95% lookups / 5% inserts.  The naive build increments a shared
    reader count inside every lookup transaction (a write!) — readers
    conflict with each other and T_wait explodes."""
    rng = ctx.rng
    for _ in range(n_ops):
        key = rng.randrange(data.n_keys * 2)
        if rng.random() < 0.95:
            if elide_read_lock:
                def lookup(c, key=key):
                    r = yield from c.call(avl_search, data.tree, key)
                    return r
            else:
                def lookup(c, key=key):
                    yield from data.read_lock.add(c, 0, 1)   # rd-lock
                    r = yield from c.call(avl_search, data.tree, key)
                    yield from data.read_lock.add(c, 0, -1)  # rd-unlock
                    return r

            yield from ctx.atomic(lookup, name="avl_lookup")
        else:
            def insert(c, key=key):
                yield from c.call(avl_insert, data.tree, key, key)

            yield from ctx.atomic(insert, name="avl_insert_cs")
        yield from ctx.compute(700)


@register
class AvlTreeApp(Workload):
    name = "avltree"
    suite = "apps"
    expected_type = "III"
    description = "AVL tree with a reader lock taken inside lookup txns"

    elide_read_lock = False

    def build(self, sim, n_threads, scale, rng):
        data = AvlAppData(sim, n_keys=self.params.get("n_keys", 256),
                          seed=rng.randrange(1 << 30))
        ops = self.iters(80, scale)
        return [
            (avlapp_worker, (data, ops, self.elide_read_lock), {})
        ] * n_threads


# ---------------------------------------------------------------------------
# bplustree — the standalone B+ tree benchmark
# ---------------------------------------------------------------------------


@simfn
def bplustree_worker(ctx, tree: BPlusTree, key_range: int, n_ops: int):
    """55% lookups, 40% in-place updates, 5% leaf inserts."""
    rng = ctx.rng
    for _ in range(n_ops):
        op = rng.random()
        key = rng.randrange(key_range)
        if op < 0.55:
            def body(c, key=key):
                r = yield from c.call(btree_lookup, tree, key)
                return r
            name = "btree_lookup_cs"
        elif op < 0.95:
            def body(c, key=key):
                r = yield from c.call(btree_update, tree, key, key * 7)
                return r
            name = "btree_update_cs"
        else:
            def body(c, key=key):
                r = yield from c.call(btree_insert_leaf, tree,
                                      key_range + key, key)
                return r
            name = "btree_insert_cs"
        yield from ctx.atomic(body, name=name)
        yield from ctx.compute(25)


@register
class BPlusTreeApp(Workload):
    name = "bplustree"
    suite = "apps"
    expected_type = "III"
    description = "B+ tree under a mixed lookup/update/insert load"

    def build(self, sim, n_threads, scale, rng):
        tree = BPlusTree(sim.memory)
        key_range = self.params.get("key_range", 48)
        keys = list(range(key_range))
        random.Random(rng.randrange(1 << 30)).shuffle(keys)
        for k in keys:
            tree.host_insert(k, k)
        ops = self.iters(220, scale)
        return [(bplustree_worker, (tree, key_range, ops), {})] * n_threads


# ---------------------------------------------------------------------------
# Lee-TM — circuit routing (longer expansions than labyrinth)
# ---------------------------------------------------------------------------


@simfn
def leetm_router(ctx, board: IntArray, width: int, n_routes: int,
                 wavefront: int):
    """Lee's algorithm: an expansion wave (reads) then backtrack claim
    (writes).  Expansion footprints are big, so long routes abort a lot."""
    rng = ctx.rng
    height = board.length // width
    for _ in range(n_routes):
        x0, y0 = rng.randrange(width), rng.randrange(height)

        def route(c, x0=x0, y0=y0):
            # expansion: read a diamond wavefront around the source
            claimed = []
            for d in range(1, wavefront + 1):
                for dx in range(-d, d + 1):
                    x = (x0 + dx) % width
                    y = (y0 + d - abs(dx)) % height
                    idx = y * width + x
                    v = yield from board.get(c, idx)
                    if v == 0 and len(claimed) < wavefront:
                        claimed.append(idx)
            # backtrack: claim the chosen path cells
            for idx in claimed:
                yield from board.set(c, idx, c.tid + 1)

        yield from ctx.atomic(route, name="leetm_route")
        yield from ctx.compute(400)


@register
class LeeTm(Workload):
    name = "leetm"
    suite = "apps"
    expected_type = "III"
    description = "Lee circuit routing: expansion + backtrack transactions"

    def build(self, sim, n_threads, scale, rng):
        width = 48
        board = IntArray(sim.memory, width * width)
        routes = self.iters(25, scale)
        wavefront = self.params.get("wavefront", 10)
        return [(leetm_router, (board, width, routes, wavefront), {})] * n_threads


# ---------------------------------------------------------------------------
# KyotoCabinet — hash database with a write-heavy mix
# ---------------------------------------------------------------------------


@simfn
def kyoto_worker(ctx, db: HashTable, key_range: int, n_ops: int):
    """50% get / 50% set on a chained hash DB."""
    rng = ctx.rng
    for _ in range(n_ops):
        key = rng.randrange(key_range)
        if rng.random() < 0.5:
            def get(c, key=key):
                node = yield from c.call(hashtable_search, db, key)
                if node:
                    v = yield from c.call(hashtable_bump, db, node, 0)
                    return v
                return None

            yield from ctx.atomic(get, name="kyoto_get")
        else:
            def put(c, key=key):
                node = yield from c.call(hashtable_search, db, key)
                if node:
                    yield from c.call(hashtable_set_value, db, node, key * 3)
                else:
                    yield from c.call(hashtable_insert, db, key, key * 3)

            yield from ctx.atomic(put, name="kyoto_set")
        yield from ctx.compute(20)


@register
class KyotoCabinet(Workload):
    name = "kyotocabinet"
    suite = "apps"
    expected_type = "III"
    description = "hash DB with a write-heavy get/set mix"

    def build(self, sim, n_threads, scale, rng):
        key_range = self.params.get("key_range", 24)
        db = HashTable(sim.memory, 8, hash_fn=good_hash)
        for k in range(0, key_range, 2):
            db.host_insert(k, k)
        ops = self.iters(70, scale)
        return [(kyoto_worker, (db, key_range, ops), {})] * n_threads


# ---------------------------------------------------------------------------
# BerkeleyDB — read-mostly B-tree storage engine
# ---------------------------------------------------------------------------


@simfn
def berkeleydb_worker(ctx, tree: BPlusTree, key_range: int, n_ops: int):
    """95% reads / 5% updates plus log-buffer bookkeeping per write."""
    rng = ctx.rng
    for _ in range(n_ops):
        key = rng.randrange(key_range)
        if rng.random() < 0.95:
            def read(c, key=key):
                r = yield from c.call(btree_lookup, tree, key)
                return r

            yield from ctx.atomic(read, name="bdb_get")
        else:
            def write(c, key=key):
                yield from c.call(btree_update, tree, key, key + 1)
                yield from c.compute(80)  # append to the in-memory log

            yield from ctx.atomic(write, name="bdb_put")
        yield from ctx.compute(220)  # cursor setup, cache management


@register
class BerkeleyDb(Workload):
    name = "berkeleydb"
    suite = "apps"
    expected_type = "II"
    description = "B-tree storage engine, read-mostly"

    def build(self, sim, n_threads, scale, rng):
        tree = BPlusTree(sim.memory)
        key_range = self.params.get("key_range", 512)
        keys = list(range(key_range))
        random.Random(rng.randrange(1 << 30)).shuffle(keys)
        for k in keys:
            tree.host_insert(k, k)
        ops = self.iters(60, scale)
        return [(berkeleydb_worker, (tree, key_range, ops), {})] * n_threads


# ---------------------------------------------------------------------------
# Memcached — a read-dominated cache
# ---------------------------------------------------------------------------


@simfn
def memcached_worker(ctx, cache: HashTable, key_range: int, n_ops: int):
    """90% GET / 10% SET, with request parsing outside the CS."""
    rng = ctx.rng
    for _ in range(n_ops):
        yield from ctx.compute(260)  # parse request, compute hash
        key = rng.randrange(key_range)
        if rng.random() < 0.9:
            def get(c, key=key):
                node = yield from c.call(hashtable_search, cache, key)
                return node

            yield from ctx.atomic(get, name="memcached_get")
        else:
            def set_(c, key=key):
                node = yield from c.call(hashtable_search, cache, key)
                if node:
                    yield from c.call(hashtable_set_value, cache, node, key)
                else:
                    yield from c.call(hashtable_insert, cache, key, key)

            yield from ctx.atomic(set_, name="memcached_set")
        yield from ctx.compute(120)  # build the response


@register
class Memcached(Workload):
    name = "memcached"
    suite = "apps"
    expected_type = "II"
    description = "in-memory cache, 90/10 GET/SET"

    def build(self, sim, n_threads, scale, rng):
        cache = HashTable(sim.memory, 256, hash_fn=good_hash)
        key_range = self.params.get("key_range", 512)
        for k in range(0, key_range, 2):
            cache.host_insert(k, k)
        ops = self.iters(70, scale)
        return [(memcached_worker, (cache, key_range, ops), {})] * n_threads


# ---------------------------------------------------------------------------
# PBZip2 — parallel block compression with ordered output
# ---------------------------------------------------------------------------


class PBZip2Data:
    def __init__(self, sim, n_blocks: int) -> None:
        self.work = RingQueue(sim.memory, n_blocks + 1)
        for b in range(n_blocks):
            self.work.host_enqueue(b + 1)
        self.next_out = IntArray(sim.memory, 1, line_per_element=True)
        self.next_out.host_set(0, 1)
        self.done = IntArray(sim.memory, n_blocks + 2)


@simfn
def pbzip2_worker(ctx, data: PBZip2Data):
    """Pop a block, compress it (heavy compute), then publish it in
    order: the output transaction spins until its turn."""
    while True:
        def pop(c):
            r = yield from c.call(queue_dequeue, data.work)
            return r

        block = yield from ctx.atomic(pop, name="pbzip2_pop")
        if block == EMPTY:
            return
        yield from ctx.compute(1500)  # BWT + huffman on the block

        def mark_done(c, block=block):
            yield from data.done.set(c, block, 1)

        yield from ctx.atomic(mark_done, name="pbzip2_done")

        # opportunistically advance the ordered output cursor
        def flush(c):
            cursor = yield from data.next_out.get(c, 0)
            flushed = 0
            while flushed < 4:
                ready = yield from data.done.get(c, cursor)
                if not ready:
                    break
                yield from data.next_out.set(c, 0, cursor + 1)
                cursor += 1
                flushed += 1
            return flushed

        yield from ctx.atomic(flush, name="pbzip2_flush")


@register
class PBZip2(Workload):
    name = "pbzip2"
    suite = "apps"
    expected_type = "II"
    description = "parallel bzip2: work queue + ordered output txns"

    def build(self, sim, n_threads, scale, rng):
        blocks = self.iters(12, scale) * n_threads
        data = PBZip2Data(sim, blocks)
        return [(pbzip2_worker, (data,), {})] * n_threads


# ---------------------------------------------------------------------------
# BART — MRI reconstruction (non-uniform FFT gridding)
# ---------------------------------------------------------------------------


@simfn
def bart_worker(ctx, kgrid: IntArray, n_samples: int, spread: int):
    """Gridding: interpolate each k-space sample onto ``spread`` nearby
    grid cells (transactional scattered accumulation)."""
    rng = ctx.rng
    n = kgrid.length
    for _ in range(n_samples):
        yield from ctx.compute(450)  # kernel weights for this sample
        center = rng.randrange(n)

        def scatter(c, center=center):
            for d in range(spread):
                yield from kgrid.add(c, (center + d) % n, d + 1)

        yield from ctx.atomic(scatter, name="bart_gridding")


@register
class Bart(Workload):
    name = "bart"
    suite = "apps"
    expected_type = "II"
    description = "BART nuFFT gridding: scattered k-space accumulation"

    def build(self, sim, n_threads, scale, rng):
        kgrid = IntArray(sim.memory, self.params.get("grid_cells", 1024))
        samples = self.iters(50, scale)
        spread = self.params.get("spread", 8)
        return [(bart_worker, (kgrid, samples, spread), {})] * n_threads


# ---------------------------------------------------------------------------
# QuakeTM — game-server frame loop
# ---------------------------------------------------------------------------


@simfn
def quaketm_worker(ctx, world: IntArray, regions: int, n_frames: int,
                   actions_per_frame: int):
    """Per frame: physics (compute) then transactional region updates;
    entities mostly stay in their home region, occasionally crossing."""
    rng = ctx.rng
    region_words = world.length // regions
    home = ctx.tid % regions
    for _ in range(n_frames):
        yield from ctx.compute(1400)  # physics, AI, visibility
        for _ in range(actions_per_frame):
            region = home if rng.random() < 0.85 else rng.randrange(regions)
            slot = region * region_words + rng.randrange(region_words)

            def update(c, slot=slot):
                v = yield from world.get(c, slot)
                yield from world.set(c, slot, (v + 1) % 9973)

            yield from ctx.atomic(update, name="quaketm_update")


@register
class QuakeTm(Workload):
    name = "quaketm"
    suite = "apps"
    expected_type = "II"
    description = "game world updates partitioned into regions"

    def build(self, sim, n_threads, scale, rng):
        regions = max(4, n_threads)
        world = IntArray(sim.memory, regions * 64)
        frames = self.iters(15, scale)
        return [
            (quaketm_worker, (world, regions, frames, 6), {})
        ] * n_threads
