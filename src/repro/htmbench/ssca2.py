"""SSCA2.2 (HPCS graph analysis) — the standalone benchmark.

The program mixes two transaction populations, which is exactly how it
lands where the paper puts it:

* a stream of small, scattered per-vertex weight updates — they commit
  almost always, keeping the *overall* abort/commit ratio below 1
  (Figure 8: Type II);
* a batched edge-insert transaction over the graph's high-degree
  "kernel" clique — at 14 threads these batches collide constantly
  (Table 2's "high conflict aborts" symptom), and splitting the batch
  into per-edge transactions is the published 1.10x fix.
"""

from __future__ import annotations

from ..dslib.array import IntArray
from ..sim.program import simfn
from .base import Workload, register


class Ssca2Graph:
    """Adjacency storage shared by the batched and split variants."""

    MAX_DEGREE = 24
    HOT_VERTICES = 20  # the kernel clique everyone inserts into

    def __init__(self, sim, n_vertices: int) -> None:
        self.n_vertices = n_vertices
        # per-vertex metadata padded to whole lines: conflicts happen on
        # same-vertex updates, not on unlucky neighbours
        self.degrees = IntArray(sim.memory, n_vertices,
                                line_per_element=True)
        self.edges = IntArray(sim.memory, n_vertices * self.MAX_DEGREE)
        self.weights = IntArray(sim.memory, n_vertices,
                                line_per_element=True)


def _insert_edge(c, graph: Ssca2Graph, u: int, v: int):
    deg = yield from graph.degrees.get(c, u)
    if deg < graph.MAX_DEGREE:
        yield from graph.edges.set(c, u * graph.MAX_DEGREE + deg, v)
        yield from graph.degrees.set(c, u, deg + 1)
    else:
        # ring-replace: keep the kernel vertices hot for the whole run
        slot = v % graph.MAX_DEGREE
        yield from graph.edges.set(c, u * graph.MAX_DEGREE + slot, v)
        yield from graph.degrees.set(c, u, 1)


def _weight_round(ctx, graph: Ssca2Graph, updates: int):
    """The benign population: small scattered weight transactions."""
    rng = ctx.rng
    n = graph.n_vertices
    for _ in range(updates):
        vertex = rng.randrange(n)

        def bump(c, vertex=vertex):
            yield from graph.weights.add(c, vertex, 1)

        yield from ctx.atomic(bump, name="ssca2_weight")
        yield from ctx.compute(120)


@simfn
def ssca2_batched(ctx, graph: Ssca2Graph, n_batches: int, batch: int):
    """The naive kernel: one transaction inserts a whole edge batch into
    the hot clique."""
    rng = ctx.rng
    n = graph.n_vertices
    hot = graph.HOT_VERTICES
    for _ in range(n_batches):
        yield from _weight_round(ctx, graph, batch)
        edges = [(rng.randrange(hot), rng.randrange(n))
                 for _ in range(batch)]

        def insert_batch(c, edges=edges):
            for u, v in edges:
                yield from _insert_edge(c, graph, u, v)

        yield from ctx.atomic(insert_batch, name="ssca2_insert")
        yield from ctx.compute(300)


@simfn
def ssca2_split(ctx, graph: Ssca2Graph, n_batches: int, batch: int):
    """The optimized kernel: one transaction per edge."""
    rng = ctx.rng
    n = graph.n_vertices
    hot = graph.HOT_VERTICES
    for _ in range(n_batches):
        yield from _weight_round(ctx, graph, batch)
        edges = [(rng.randrange(hot), rng.randrange(n))
                 for _ in range(batch)]
        for u, v in edges:
            def insert_one(c, u=u, v=v):
                yield from _insert_edge(c, graph, u, v)

            yield from ctx.atomic(insert_one, name="ssca2_insert")
        yield from ctx.compute(300)


@register
class Ssca2(Workload):
    name = "ssca2"
    suite = "hpcs"
    expected_type = "II"
    description = "SSCA2.2 graph construction, batched edge transactions"

    split = False

    def build(self, sim, n_threads, scale, rng):
        graph = Ssca2Graph(sim, n_vertices=self.params.get("n_vertices", 600))
        batches = self.iters(25, scale)
        batch = self.params.get("batch", 8)
        fn = ssca2_split if self.split else ssca2_batched
        return [(fn, (graph, batches, batch), {}) for _ in range(n_threads)]
