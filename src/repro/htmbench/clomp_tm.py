"""CLOMP-TM (§7.2, Table 1, Figure 7): the controlled-behaviour benchmark.

Threads repeatedly update "parts" of a shared array.  Two configurations
times three inputs give the six bars of Figure 7:

* **small** transactions: one element per transaction — transaction
  begin/end overhead (T_oh) dominates regardless of input;
* **large** transactions: a whole part per transaction — behaviour is
  input-driven:

  * input 1, *Adjacent*: each thread owns its part — rare conflicts,
    compact footprint: time sits in T_tx, almost no aborts;
  * input 2, *FirstParts*: every thread hammers the same few parts —
    high conflicts, retries exhaust, the fallback lock serializes:
    T_wait blows up and conflict aborts dominate;
  * input 3, *Random*: elements scattered line-by-line across a large
    region — the transactional write set overflows the L1 budget:
    capacity aborts appear (the paper's "cache prefetch unfriendly"
    input; in our model the performance-relevant effect of the scatter
    is exactly the footprint blow-up).
"""

from __future__ import annotations

import random

from ..sim.config import CACHELINE
from ..sim.engine import Simulator
from ..sim.memory import WORD
from ..sim.program import simfn
from .base import Workload, register

SCATTER_ADJACENT = 1
SCATTER_FIRSTPARTS = 2
SCATTER_RANDOM = 3

SCATTER_NAMES = {
    SCATTER_ADJACENT: "Adjacent",
    SCATTER_FIRSTPARTS: "FirstParts",
    SCATTER_RANDOM: "Random",
}


class ClompData:
    """Shared state: ``n_parts`` parts of ``part_elems`` words each, plus
    a large scatter region for the Random input (one word per line so a
    transaction's footprint grows one cache line per element)."""

    def __init__(self, sim: Simulator, n_parts: int, part_elems: int,
                 scatter_lines: int) -> None:
        mem = sim.memory
        self.n_parts = n_parts
        self.part_elems = part_elems
        self.parts_base = mem.alloc(
            n_parts * part_elems * WORD, align=CACHELINE
        )
        self.scatter_lines = scatter_lines
        self.scatter_base = mem.alloc(scatter_lines * CACHELINE,
                                      align=CACHELINE)

    def elem_addr(self, part: int, elem: int) -> int:
        return self.parts_base + (part * self.part_elems + elem) * WORD

    def scatter_addr(self, line: int) -> int:
        return self.scatter_base + (line % self.scatter_lines) * CACHELINE


def _pick_targets(data: ClompData, scatter: int, tid: int, round_: int,
                  rng: random.Random) -> list[int]:
    """Element addresses for one update round, per scatter mode."""
    n = data.part_elems
    if scatter == SCATTER_ADJACENT:
        part = tid % data.n_parts
        return [data.elem_addr(part, e) for e in range(n)]
    if scatter == SCATTER_FIRSTPARTS:
        part = round_ % 2  # everyone collides on the first two parts
        return [data.elem_addr(part, e) for e in range(n)]
    # Random: n distinct lines scattered over the big region
    lines = rng.sample(range(data.scatter_lines), n)
    return [data.scatter_addr(line) for line in lines]


@simfn
def clomp_small(ctx, data: ClompData, scatter: int, rounds: int):
    """Small-transaction configuration: one element per transaction."""
    rng = ctx.rng
    for r in range(rounds):
        targets = _pick_targets(data, scatter, ctx.tid, r, rng)
        for addr in targets:
            def body(c, a=addr):
                v = yield from c.load(a)
                yield from c.store(a, v + 1)
            yield from ctx.atomic(body, name="clomp_update_small")
        yield from ctx.compute(200)


@simfn
def clomp_large(ctx, data: ClompData, scatter: int, rounds: int):
    """Large-transaction configuration: a whole part per transaction."""
    rng = ctx.rng
    for r in range(rounds):
        targets = _pick_targets(data, scatter, ctx.tid, r, rng)
        def body(c, ts=targets):
            for a in ts:
                v = yield from c.load(a)
                yield from c.store(a, v + 1)
        yield from ctx.atomic(body, name="clomp_update_large")
        yield from ctx.compute(200)


@register
class ClompTm(Workload):
    """CLOMP-TM with ``txn_size`` ("small"/"large") and ``scatter`` (1-3)."""

    name = "clomp_tm"
    suite = "coral"
    expected_type = "III"
    description = "controlled transactional update benchmark (CLOMP-TM)"

    def build(self, sim, n_threads, scale, rng):
        txn_size = self.params.get("txn_size", "large")
        scatter = self.params.get("scatter", SCATTER_ADJACENT)
        if txn_size not in ("small", "large"):
            raise ValueError(f"txn_size must be small|large, not {txn_size!r}")
        if scatter not in SCATTER_NAMES:
            raise ValueError(f"scatter must be 1|2|3, not {scatter!r}")
        # the Random input's per-transaction footprint must exceed the
        # write-set budget for the large configuration
        part_elems = self.params.get(
            "part_elems", int(sim.config.wset_lines * 1.25)
        )
        # the scatter region is large enough that concurrent Random
        # transactions rarely overlap: their aborts are then dominated by
        # their own footprint (capacity), not by conflicts
        data = ClompData(
            sim,
            n_parts=max(n_threads, 2),
            part_elems=part_elems,
            scatter_lines=part_elems * 400,
        )
        rounds = self.iters(12 if txn_size == "large" else 2, scale)
        fn = clomp_small if txn_size == "small" else clomp_large
        return [(fn, (data, scatter, rounds), {}) for _ in range(n_threads)]


#: the six configurations of Figure 7, in presentation order
FIGURE7_CONFIGS = [
    ("small-1", "small", SCATTER_ADJACENT),
    ("small-2", "small", SCATTER_FIRSTPARTS),
    ("small-3", "small", SCATTER_RANDOM),
    ("large-1", "large", SCATTER_ADJACENT),
    ("large-2", "large", SCATTER_FIRSTPARTS),
    ("large-3", "large", SCATTER_RANDOM),
]
