"""PARSEC benchmarks: dedup, netdedup, netstreamcluster, netferret.

``dedup`` is the paper's flagship case study (§8.1, Figure 9): a
three-stage pipeline (ChunkProcess -> FindAllAnchors -> Compress) whose
chunk cache is a hash table with a *terrible* hash function — a few
buckets hold very long chains, so the transactional chain walk in
``hashtable_search`` blows the read set (capacity aborts) and collides
with concurrent inserts (conflict aborts).  The Compress master also
issues a ``write`` system call inside its critical section (synchronous
aborts).  Both defects are exactly what the optimized variant
(:mod:`repro.htmbench.optimized`) fixes for the paper's 1.20x.
"""

from __future__ import annotations

import random

from ..dslib.array import IntArray
from ..dslib.hashtable import (
    HashTable,
    bad_hash,
    good_hash,
    hashtable_bump,
    hashtable_insert,
    hashtable_search,
)
from ..dslib.linkedlist import (
    _OFF_KEY,
    _OFF_NEXT,
    SortedList,
    list_insert,
    list_remove,
)
from ..dslib.queue import EMPTY, FULL, RingQueue, queue_dequeue, queue_enqueue
from ..sim.program import simfn
from .base import Workload, register


# ---------------------------------------------------------------------------
# dedup — deduplicating compression pipeline
# ---------------------------------------------------------------------------


class DedupData:
    """Pipeline state: chunk cache + two inter-stage queues."""

    def __init__(self, sim, n_buckets: int, hash_fn, n_chunks_total: int,
                 n_unique: int, seed: int) -> None:
        # chunk descriptors are cache-line-sized objects: each node a
        # transactional chain walk visits costs one read-set line
        self.cache = HashTable(sim.memory, n_buckets, hash_fn=hash_fn,
                               node_align=64)
        self.q_anchors = RingQueue(sim.memory, n_chunks_total + 4)
        self.q_compress = RingQueue(sim.memory, n_chunks_total + 4)
        rng = random.Random(seed)
        # fingerprints of one input stream share their high bits and
        # differ in the low bits — exactly the key population that makes
        # the high-bits-only bad_hash collapse onto a couple of buckets
        base = rng.randrange(1 << 28, 1 << 31)
        self.fingerprints = [base + i * 8 for i in range(n_unique)]
        # the steady-state cache is already populated (the paper profiles
        # a warmed-up pipeline whose chains have grown long); under the
        # bad hash the whole population sits in one chain, so lookups deep
        # in the chain overrun the read-set budget (capacity aborts) and
        # occasional inserts at the head conflict with every walker
        for fp in self.fingerprints:
            self.cache.host_insert(fp, 1)
        #: ~5% of chunks carry novel fingerprints (misses -> inserts)
        self.novel = [base + (n_unique + i) * 8 for i in range(n_unique)]
        self._novel_next = 0
        self.n_chunks_total = n_chunks_total

    def next_key(self, rng) -> int:
        if rng.random() < 0.05:
            key = self.novel[self._novel_next % len(self.novel)]
            self._novel_next += 1
            return key
        return self.fingerprints[rng.randrange(len(self.fingerprints))]


@simfn
def sub_ChunkProcess(ctx, data: DedupData, key: int):
    """Look up a chunk in the cache, inserting on miss (one transaction).

    This is the critical section Figure 9 blames: with the bad hash the
    chain walk inside ``hashtable_search`` dominates the abort weight.
    """

    def body(c, key=key):
        node = yield from c.call(hashtable_search, data.cache, key)
        if node:
            yield from c.call(hashtable_bump, data.cache, node)
            return 1  # duplicate
        yield from c.call(hashtable_insert, data.cache, key, 1)
        return 0

    dup = yield from ctx.atomic(body, name="dedup_cache")
    return dup


@simfn
def ChunkProcess(ctx, data: DedupData, n_chunks: int):
    """Stage 1: chunk the input, dedup against the cache, pass along."""
    rng = ctx.rng
    for _ in range(n_chunks):
        yield from ctx.compute(5000)  # content-defined chunking (SHA etc.)
        key = data.next_key(rng)
        yield from ctx.call(sub_ChunkProcess, data, key)

        def push(c, key=key):
            r = yield from c.call(queue_enqueue, data.q_anchors, key)
            return r

        while True:
            r = yield from ctx.atomic(push, name="dedup_q1_push")
            if r != FULL:
                break
            yield from ctx.compute(100)


@simfn
def FindAllAnchors(ctx, data: DedupData, n_chunks: int):
    """Stage 2: refine anchors for each chunk and forward it."""
    done = 0
    while done < n_chunks:
        def pop(c):
            r = yield from c.call(queue_dequeue, data.q_anchors)
            return r

        key = yield from ctx.atomic(pop, name="dedup_q1_pop")
        if key == EMPTY:
            yield from ctx.compute(120)
            continue
        yield from ctx.compute(3000)  # anchor scan

        def push(c, key=key):
            r = yield from c.call(queue_enqueue, data.q_compress, key)
            return r

        while True:
            r = yield from ctx.atomic(push, name="dedup_q2_push")
            if r != FULL:
                break
            yield from ctx.compute(100)
        done += 1


@simfn
def Compress(ctx, data: DedupData, n_chunks: int, is_master: bool,
             syscall_in_cs: bool):
    """Stage 3: compress chunks; the master serializes output to disk.

    The naive build issues the ``write`` system call *inside* the output
    critical section — every attempt aborts synchronously (§8.1's second
    finding); the optimized build hoists it out.
    """
    done = 0
    while done < n_chunks:
        def pop(c):
            r = yield from c.call(queue_dequeue, data.q_compress)
            return r

        key = yield from ctx.atomic(pop, name="dedup_q2_pop")
        if key == EMPTY:
            yield from ctx.compute(120)
            continue
        yield from ctx.compute(4500)  # compression
        if is_master:
            if syscall_in_cs:
                def write_file(c, key=key):
                    yield from c.compute(40)  # serialize the record
                    yield from c.syscall("write")

                yield from ctx.atomic(write_file, name="dedup_write_file")
            else:
                def note_output(c, key=key):
                    yield from c.compute(40)

                yield from ctx.atomic(note_output, name="dedup_write_file")
                yield from ctx.syscall("write")
        done += 1


def _dedup_build(self_, sim, n_threads, scale, rng, *, hash_fn,
                 syscall_in_cs):
    if n_threads < 3:
        raise ValueError("dedup's pipeline needs at least 3 threads")
    per_producer = self_.iters(25, scale)
    n_stage = n_threads // 3
    producers = n_stage + (n_threads - 3 * n_stage)
    anchors = n_stage
    compressors = n_stage
    total = per_producer * producers
    data = DedupData(
        sim,
        n_buckets=self_.params.get("n_buckets", 256),
        hash_fn=hash_fn,
        n_chunks_total=total,
        n_unique=self_.params.get("n_unique", 760),
        seed=rng.randrange(1 << 30),
    )
    programs: list = []
    for _ in range(producers):
        programs.append((ChunkProcess, (data, per_producer), {}))
    share, extra = divmod(total, anchors)
    for i in range(anchors):
        programs.append(
            (FindAllAnchors, (data, share + (1 if i < extra else 0)), {})
        )
    share, extra = divmod(total, compressors)
    for i in range(compressors):
        programs.append(
            (Compress,
             (data, share + (1 if i < extra else 0), i == 0, syscall_in_cs),
             {})
        )
    return programs


@register
class Dedup(Workload):
    name = "dedup"
    suite = "parsec"
    expected_type = "II"
    description = "dedup pipeline; bad hash -> capacity aborts, syscall in CS"
    expected_findings = ("capacity-risk", "unfriendly-op-in-txn",
                         "cross-section-conflict", "lemming-risk")

    def build(self, sim, n_threads, scale, rng):
        return _dedup_build(self, sim, n_threads, scale, rng,
                            hash_fn=bad_hash, syscall_in_cs=True)


# ---------------------------------------------------------------------------
# netdedup — dedup fed from the network
# ---------------------------------------------------------------------------


@simfn
def NetReceive(ctx, data: DedupData, n_chunks: int, syscall_in_cs: bool):
    """Stage 0/1 of netdedup: receive a block, then dedup it.

    The naive build performs the ``recv`` system call *inside* the
    receive-buffer critical section — the high-synchronous-aborts symptom
    Table 2 fixes by removing the system calls (1.20x)."""
    rng = ctx.rng
    for _ in range(n_chunks):
        if syscall_in_cs:
            def recv_and_stage(c):
                yield from c.syscall("recv")
                yield from c.compute(80)

            yield from ctx.atomic(recv_and_stage, name="netdedup_recv")
        else:
            yield from ctx.syscall("recv")

            def stage(c):
                yield from c.compute(80)

            yield from ctx.atomic(stage, name="netdedup_recv")
        yield from ctx.compute(3200)  # protocol framing + checksum
        key = data.next_key(rng)
        yield from ctx.call(sub_ChunkProcess, data, key)

        def push(c, key=key):
            r = yield from c.call(queue_enqueue, data.q_anchors, key)
            return r

        while True:
            r = yield from ctx.atomic(push, name="netdedup_q1_push")
            if r != FULL:
                break
            yield from ctx.compute(100)


@register
class NetDedup(Workload):
    name = "netdedup"
    suite = "parsec"
    expected_type = "II"
    description = "networked dedup; recv() inside the critical section"
    expected_findings = ("unfriendly-op-in-txn", "cross-section-conflict",
                         "lemming-risk")

    syscall_in_cs = True
    hash_fn = staticmethod(good_hash)

    def build(self, sim, n_threads, scale, rng):
        if n_threads < 3:
            raise ValueError("netdedup's pipeline needs at least 3 threads")
        per_producer = self.iters(30, scale)
        n_stage = n_threads // 3
        producers = n_stage + (n_threads - 3 * n_stage)
        total = per_producer * producers
        data = DedupData(
            sim, n_buckets=256, hash_fn=self.hash_fn,
            n_chunks_total=total, n_unique=256,
            seed=rng.randrange(1 << 30),
        )
        programs: list = []
        for _ in range(producers):
            programs.append(
                (NetReceive, (data, per_producer, self.syscall_in_cs), {})
            )
        share, extra = divmod(total, n_stage)
        for i in range(n_stage):
            programs.append(
                (FindAllAnchors, (data, share + (1 if i < extra else 0)), {})
            )
        share, extra = divmod(total, n_stage)
        for i in range(n_stage):
            programs.append(
                (Compress,
                 (data, share + (1 if i < extra else 0), False, False), {})
            )
        return programs


# ---------------------------------------------------------------------------
# netstreamcluster — online clustering of streamed points
# ---------------------------------------------------------------------------


class StreamClusterData:
    def __init__(self, sim, n_centers: int) -> None:
        self.n_centers = n_centers
        # per-center: (weight, cost) packed per line
        self.stats = IntArray(sim.memory, n_centers * 2,
                              line_per_element=False)
        self.n_open = IntArray(sim.memory, 1, line_per_element=True)
        self.n_open.host_set(0, n_centers)


@simfn
def streamcluster_worker(ctx, data: StreamClusterData, n_points: int):
    """Assign streamed points to centers; occasionally open a center."""
    rng = ctx.rng
    for i in range(n_points):
        yield from ctx.compute(550)  # distance evaluation against centers
        center = rng.randrange(data.n_centers)

        def assign(c, center=center):
            yield from data.stats.add(c, center * 2, 1)        # weight
            yield from data.stats.add(c, center * 2 + 1, 3)    # cost

        yield from ctx.atomic(assign, name="streamcluster_assign")
        if i % 40 == 39:
            def open_center(c):
                n = yield from data.n_open.get(c, 0)
                yield from data.n_open.set(c, 0, n + 1)
                for j in range(8):  # initialize the new center's stats
                    yield from data.stats.add(c, (n * 2 + j) % data.stats.length, 0)

            yield from ctx.atomic(open_center, name="streamcluster_open")


@register
class NetStreamCluster(Workload):
    name = "netstreamcluster"
    suite = "parsec"
    expected_type = "II"
    description = "streamed k-median clustering with shared center stats"

    def build(self, sim, n_threads, scale, rng):
        data = StreamClusterData(sim, n_centers=self.params.get("centers", 32))
        points = self.iters(80, scale)
        return [(streamcluster_worker, (data, points), {})] * n_threads


# ---------------------------------------------------------------------------
# netferret — similarity search pipeline
# ---------------------------------------------------------------------------


class FerretData:
    def __init__(self, sim, topk: int) -> None:
        self.topk = topk
        self.results = SortedList(sim.memory)
        self.result_count = IntArray(sim.memory, 1, line_per_element=True)


@simfn
def ferret_worker(ctx, data: FerretData, n_queries: int):
    """Rank candidates (compute) and merge into the shared top-K list."""
    rng = ctx.rng
    for _q in range(n_queries):
        yield from ctx.compute(600)  # feature extraction + ranking
        score = rng.randrange(1, 1 << 20)

        def merge(c, score=score):
            # check the current minimum first: scores below it do not
            # touch the list at all (read-only transactions commit)
            head_next = yield from c.load(data.results.head + _OFF_NEXT)
            smallest = yield from c.load(head_next + _OFF_KEY)
            n = yield from data.result_count.get(c, 0)
            if n >= data.topk and score <= smallest:
                return False
            inserted = yield from c.call(list_insert, data.results, score)
            if inserted:
                if n >= data.topk:
                    yield from c.call(list_remove, data.results, smallest)
                else:
                    yield from data.result_count.set(c, 0, n + 1)
            return inserted

        yield from ctx.atomic(merge, name="ferret_topk")


@register
class NetFerret(Workload):
    name = "netferret"
    suite = "parsec"
    expected_type = "II"
    description = "content similarity search with a shared top-K list"

    def build(self, sim, n_threads, scale, rng):
        data = FerretData(sim, topk=self.params.get("topk", 16))
        queries = self.iters(60, scale)
        return [(ferret_worker, (data, queries), {})] * n_threads
