"""Race-hazard reproducers for the lockset pass (``check --races``).

Three microbenchmarks, each engineered to trip exactly one of the
lockset finding codes of :mod:`repro.analysis.races`:

* ``micro_fallback_race`` — one thread updates a two-word record under a
  *hand-rolled* spin lock while the others read the record
  transactionally.  The transactions never load the custom lock word, so
  they are not subscribed to it: speculation neither aborts nor waits
  while the lock is held and can observe the record mid-update
  (``asymmetric-fallback-race``).  The runtime's own fallback lock is
  immune — every transaction subscribes to it right after ``xbegin``.

* ``micro_elision_unsafe`` — one thread updates the shared record with
  *no* protection at all (empty lockset) while the others access it
  transactionally (``elision-unsafe-access``).

* ``micro_lock_line`` — a stats counter deliberately placed in the
  padding of the global fallback lock's cache line and bumped
  non-transactionally.  Every transaction subscribes to that line, so
  each bump aborts all concurrent speculation
  (``lock-footprint-conflict``, observable as conflict aborts in the
  dynamic profile).  The lock word itself is exempt — subscribing to it
  is the elision protocol, not a bug.

All three are honest races *of the workload*, not of the runtime; they
document what the analyzer is for and anchor its golden tests.
"""

from __future__ import annotations

from ..sim.memory import WORD
from ..sim.program import simfn
from ..dslib.array import IntArray
from .base import Workload, register


# ------------------------------------------------- asymmetric-fallback-race


@simfn
def races_spin_writer(ctx, lock_addr: int, arr: IntArray, iters: int):
    """Update a two-word record under a hand-rolled TTAS spin lock.

    The two stores are atomic for every thread that takes this lock —
    and for nobody else: a transaction that does not subscribe to
    ``lock_addr`` can commit between them.
    """
    for _ in range(iters):
        while True:
            held = yield from ctx.load(lock_addr)
            if held == 0:
                ok = yield from ctx.cas(lock_addr, 0, ctx.tid + 1)
                if ok:
                    break
            yield from ctx.compute(60)
        v = yield from arr.get(ctx, 0)
        yield from arr.set(ctx, 0, v + 1)
        yield from ctx.compute(40)        # the record is torn right here
        yield from arr.set(ctx, 1, v + 1)
        yield from ctx.store(lock_addr, 0)
        yield from ctx.compute(200)


@simfn
def races_txn_reader(ctx, arr: IntArray, iters: int):
    """Read the record transactionally — without reading the spin lock."""
    for _ in range(iters):
        def body(c):
            a = yield from arr.get(c, 0)
            b = yield from arr.get(c, 1)
            yield from c.compute(40)
            return a + b
        yield from ctx.atomic(body, name="race_pair_read")
        yield from ctx.compute(80)


@register
class MicroFallbackRace(Workload):
    name = "micro_fallback_race"
    suite = "micro"
    expected_type = "II"
    description = ("hand-rolled lock writer vs unsubscribed transactional "
                   "readers: the asymmetric race of lock elision")
    expected_findings = (
        "asymmetric-fallback-race",
        "unprotected-shared-access",
    )

    def build(self, sim, n_threads, scale, rng):
        lock_addr = sim.memory.alloc_line()      # the custom lock's own line
        arr = IntArray(sim.memory, 2, line_per_element=False)
        iters = self.iters(150, scale)
        programs = [(races_spin_writer, (lock_addr, arr, iters), {})]
        programs += [
            (races_txn_reader, (arr, iters), {})
        ] * max(1, n_threads - 1)
        return programs[:n_threads] if n_threads > 1 else programs


# --------------------------------------------------- elision-unsafe-access


@simfn
def races_bare_writer(ctx, arr: IntArray, iters: int):
    """Update the shared record with an empty lockset: no transaction,
    no lock — nothing serializes this against anybody."""
    for _ in range(iters):
        v = yield from arr.get(ctx, 0)
        yield from arr.set(ctx, 0, v + 1)
        yield from arr.set(ctx, 1, v + 1)
        yield from ctx.compute(180)


@simfn
def races_txn_updater(ctx, arr: IntArray, iters: int):
    """Update the record transactionally (protected, as intended)."""
    for _ in range(iters):
        def body(c):
            a = yield from arr.get(c, 0)
            yield from arr.set(c, 1, a)
            yield from c.compute(30)
        yield from ctx.atomic(body, name="race_guarded_update")
        yield from ctx.compute(90)


@register
class MicroElisionUnsafe(Workload):
    name = "micro_elision_unsafe"
    suite = "micro"
    expected_type = "II"
    description = ("bare writer vs transactional updaters on one record: "
                   "a shared word reachable with an empty lockset")
    expected_findings = (
        "elision-unsafe-access",
        "unprotected-shared-access",
        "cross-section-conflict",
    )

    def build(self, sim, n_threads, scale, rng):
        arr = IntArray(sim.memory, 2, line_per_element=False)
        iters = self.iters(150, scale)
        programs = [(races_bare_writer, (arr, iters), {})]
        programs += [
            (races_txn_updater, (arr, iters), {})
        ] * max(1, n_threads - 1)
        return programs[:n_threads] if n_threads > 1 else programs


# --------------------------------------------------- lock-footprint-conflict


@simfn
def races_lock_line_stats(ctx, stats_addr: int, iters: int):
    """Bump a counter that (deliberately) lives on the fallback lock's
    cache line — every bump invalidates the line every transaction
    subscribes to."""
    for _ in range(iters):
        v = yield from ctx.load(stats_addr)
        yield from ctx.store(stats_addr, v + 1)
        yield from ctx.compute(120)


@simfn
def races_lock_line_txn(ctx, arr: IntArray, iters: int):
    """Perfectly private transactional counters — speculation would
    always succeed, were the lock line left alone."""
    idx = ctx.tid
    for _ in range(iters):
        def body(c, i=idx):
            yield from arr.add(c, i)
            yield from c.compute(50)
        yield from ctx.atomic(body, name="lock_line_bump")
        yield from ctx.compute(60)


@register
class MicroLockLine(Workload):
    name = "micro_lock_line"
    suite = "micro"
    expected_type = "III"
    description = ("a stats counter in the fallback lock's cacheline "
                   "padding: every write aborts all speculation")
    expected_findings = ("lock-footprint-conflict",)

    def build(self, sim, n_threads, scale, rng):
        # the runtime allocates the lock with alloc_line(), so the rest
        # of its line is reserved padding nobody else can be handed —
        # exactly where a "harmless" diagnostics counter ends up when a
        # struct packs it next to the lock word
        stats_addr = sim.rtm.lock.addr + WORD
        arr = IntArray(sim.memory, max(1, n_threads), line_per_element=True)
        iters = self.iters(200, scale)
        programs = [(races_lock_line_stats, (stats_addr, iters), {})]
        programs += [
            (races_lock_line_txn, (arr, iters), {})
        ] * max(1, n_threads - 1)
        return programs[:n_threads] if n_threads > 1 else programs
