"""Correctness microbenchmarks (§7.2).

Each triggers one known behaviour — low / moderate / high abort ratios,
true sharing, false sharing, synchronous aborts, capacity overflow — so
TxSampler's sampled profiles can be validated against the instrumentation
ground truth inside the RTM runtime.
"""

from __future__ import annotations

from ..sim.config import CACHELINE
from ..sim.program import simfn
from .base import Workload, register
from ..dslib.array import IntArray


@simfn
def micro_private_counters(ctx, arr: IntArray, iters: int):
    """Each thread transactionally bumps its own line-padded counter."""
    idx = ctx.tid
    for _ in range(iters):
        def body(c, i=idx):
            yield from arr.add(c, i)
        yield from ctx.atomic(body, name="private_bump")
        yield from ctx.compute(120)


@register
class MicroLowAbort(Workload):
    name = "micro_low_abort"
    suite = "micro"
    expected_type = "II"
    description = "private per-thread counters: near-zero abort ratio"
    expected_findings = ("dead-txn-no-shared-access",)

    def build(self, sim, n_threads, scale, rng):
        arr = IntArray(sim.memory, n_threads, line_per_element=True)
        iters = self.iters(400, scale)
        return [(micro_private_counters, (arr, iters), {})] * n_threads


@simfn
def micro_striped_counters(ctx, arr: IntArray, stripes: int, iters: int):
    """Threads bump random stripes: conflicts happen but are not constant."""
    rng = ctx.rng
    for _ in range(iters):
        idx = rng.randrange(stripes)
        def body(c, i=idx):
            yield from arr.add(c, i)
            yield from c.compute(40)
        yield from ctx.atomic(body, name="striped_bump")
        yield from ctx.compute(150)


@register
class MicroModerateAbort(Workload):
    name = "micro_moderate_abort"
    suite = "micro"
    expected_type = "II"
    description = "randomly striped counters: moderate abort ratio"
    expected_findings = ("cross-section-conflict",)

    def build(self, sim, n_threads, scale, rng):
        stripes = max(4, n_threads)
        arr = IntArray(sim.memory, stripes, line_per_element=True)
        iters = self.iters(300, scale)
        return [(micro_striped_counters, (arr, stripes, iters), {})] * n_threads


@simfn
def micro_hot_counter(ctx, arr: IntArray, iters: int):
    """Everyone hammers one counter: the abort ratio goes through the roof."""
    for _ in range(iters):
        def body(c):
            yield from arr.add(c, 0)
            yield from c.compute(80)
        yield from ctx.atomic(body, name="hot_bump")
        yield from ctx.compute(30)


@register
class MicroHighAbort(Workload):
    name = "micro_high_abort"
    suite = "micro"
    expected_type = "III"
    description = "one hot counter: high abort ratio (true sharing)"
    expected_findings = ("cross-section-conflict",)

    def build(self, sim, n_threads, scale, rng):
        arr = IntArray(sim.memory, 1, line_per_element=True)
        iters = self.iters(300, scale)
        return [(micro_hot_counter, (arr, iters), {})] * n_threads


@simfn
def micro_false_sharing_worker(ctx, arr: IntArray, iters: int):
    """Each thread bumps its *own word*, but the words share cache lines:
    all the contention is false sharing."""
    idx = ctx.tid
    for _ in range(iters):
        def body(c, i=idx):
            yield from arr.add(c, i)
            yield from c.compute(60)
        yield from ctx.atomic(body, name="false_sharing_bump")
        yield from ctx.compute(30)


@register
class MicroFalseSharing(Workload):
    name = "micro_false_sharing"
    suite = "micro"
    expected_type = "III"
    description = "per-thread words packed into shared cache lines"
    expected_findings = ("cross-section-conflict",)

    def build(self, sim, n_threads, scale, rng):
        # densely packed: 8 words per line -> threads 0-7 share line 0, ...
        arr = IntArray(sim.memory, n_threads, line_per_element=False)
        iters = self.iters(300, scale)
        return [(micro_false_sharing_worker, (arr, iters), {})] * n_threads


@simfn
def micro_sync_worker(ctx, arr: IntArray, iters: int):
    """A logging system call inside the transaction: synchronous aborts
    on every attempt, so every execution lands in the fallback path."""
    idx = ctx.tid
    for _ in range(iters):
        def body(c, i=idx):
            yield from arr.add(c, i)
            yield from c.syscall("write")
        yield from ctx.atomic(body, name="sync_bump")
        yield from ctx.compute(200)


@register
class MicroSync(Workload):
    name = "micro_sync"
    suite = "micro"
    expected_type = "II"
    description = "system call inside every transaction: synchronous aborts"
    expected_findings = ("unfriendly-op-in-txn", "lemming-risk")

    def build(self, sim, n_threads, scale, rng):
        arr = IntArray(sim.memory, n_threads, line_per_element=True)
        iters = self.iters(120, scale)
        return [(micro_sync_worker, (arr, iters), {})] * n_threads


@simfn
def micro_capacity_worker(ctx, region_base: int, lines: int, iters: int,
                          spacing: int):
    """Write one word per line across more lines than the write-set
    budget: guaranteed capacity aborts, all work in the fallback path."""
    for it in range(iters):
        def body(c, salt=it):
            for i in range(lines):
                addr = region_base + ((i * 7919 + salt) % lines) * CACHELINE
                v = yield from c.load(addr)
                yield from c.store(addr, v + 1)
        yield from ctx.atomic(body, name="capacity_sweep")
        # long randomized private phase between sweeps, scaled with the
        # thread count so critical sections rarely overlap: the profile
        # then isolates the capacity cause instead of fallback-lock
        # conflict noise
        yield from ctx.compute(spacing + ctx.rng.randrange(spacing))


@register
class MicroCapacity(Workload):
    name = "micro_capacity"
    suite = "micro"
    expected_type = "II"
    description = "write set larger than the HTM budget: capacity aborts"
    expected_findings = ("capacity-risk", "lemming-risk")

    def build(self, sim, n_threads, scale, rng):
        lines = int(sim.config.wset_lines * 1.5)
        iters = self.iters(24, scale)
        spacing = 8_000 * max(4, n_threads)
        programs = []
        for _ in range(n_threads):
            base = sim.memory.alloc(lines * CACHELINE, align=CACHELINE)
            programs.append(
                (micro_capacity_worker, (base, lines, iters, spacing), {})
            )
        return programs


@simfn
def micro_reader_worker(ctx, arr: IntArray, iters: int):
    """Read-only transactions over shared data: always commit."""
    n = arr.length
    for it in range(iters):
        def body(c, salt=it):
            total = 0
            for i in range(0, n, 4):
                v = yield from arr.get(c, (i + salt) % n)
                total += v
            return total
        yield from ctx.atomic(body, name="read_scan")
        yield from ctx.compute(100)


@register
class MicroReadOnly(Workload):
    name = "micro_read_only"
    suite = "micro"
    expected_type = "II"
    description = "read-only transactions: reads never conflict"
    expected_findings = ("dead-txn-no-shared-access",)

    def build(self, sim, n_threads, scale, rng):
        arr = IntArray(sim.memory, 64)
        arr.host_fill(range(64))
        iters = self.iters(150, scale)
        return [(micro_reader_worker, (arr, iters), {})] * n_threads
