"""Optimized variants of Table 2's programs.

Each applies exactly the fix the paper reports, leaving everything else
identical to the naive build, so the measured speedup isolates the fix:

=============  ==========================================  ==============
program        fix                                         paper speedup
=============  ==========================================  ==============
dedup          refine hash table + remove system calls     1.20x
avltree        elide the read lock                         1.21x
histo          merge transactions (+ sort input, input 2)  2.95x / 2.91x
ua             merge transactions                          1.05x
vacation       reduce transaction size                     1.21x
leveldb        split transactions                          1.05x
ssca2          split transactions                          1.10x
netdedup       remove system calls                         1.20x
linkedlist     limit txn size with auxiliary locks         3.78x
=============  ==========================================  ==============
"""

from __future__ import annotations

from ..dslib.hashtable import good_hash, hashtable_bump, hashtable_search
from ..dslib.linkedlist import SortedList
from ..sim.program import simfn
from .apps import AvlTreeApp, LevelDb
from .base import Workload, register
from .npb import Ua
from .parboil import Histo, INPUT_SKEWED, INPUT_UNIFORM
from .parsec import Dedup, NetDedup, _dedup_build
from .ssca2 import Ssca2
from .stamp import VacationDb
from .synchro import SynchroLinkedList, linkedlist_bounded_worker


@register
class DedupOpt(Dedup):
    """Dedup with the balanced hash and the write() hoisted out of the CS."""

    name = "dedup_opt"
    description = "dedup with a balanced hash and syscalls outside the CS"

    def build(self, sim, n_threads, scale, rng):
        return _dedup_build(self, sim, n_threads, scale, rng,
                            hash_fn=good_hash, syscall_in_cs=False)


@register
class NetDedupOpt(NetDedup):
    """netdedup with recv() moved out of the receive critical section."""

    name = "netdedup_opt"
    description = "netdedup with recv() outside the critical section"
    syscall_in_cs = False


@register
class HistoOpt(Histo):
    """Histo with coalesced transactions (Listing 4); for the uniform
    input the input array is additionally sorted (the false-sharing fix)."""

    name = "histo_opt"
    description = "histo with coalesced transactions (and sorted input)"

    def build(self, sim, n_threads, scale, rng):
        input_kind = self.params.get("input_kind", INPUT_SKEWED)
        self.params.setdefault("txn_gran", 32)
        if input_kind == INPUT_UNIFORM:
            self.params.setdefault("sort_input", True)
        return super().build(sim, n_threads, scale, rng)


@register
class UaOpt(Ua):
    """UA with merged element-update transactions."""

    name = "ua_opt"
    description = "UA with merged small transactions"

    def build(self, sim, n_threads, scale, rng):
        self.params.setdefault("merge", 16)
        return super().build(sim, n_threads, scale, rng)


@simfn
def vacation_client_small(ctx, db: VacationDb, n_tasks: int,
                          queries_per_task: int):
    """Table 2's vacation fix: one small transaction per resource instead
    of one spanning the whole itinerary."""
    rng = ctx.rng
    for _ in range(n_tasks):
        customer = rng.randrange(64)
        total = 0
        for _ in range(queries_per_task):
            table = db.tables[rng.randrange(3)]
            item = rng.randrange(db.n_items)

            def reserve_one(c, table=table, item=item):
                node = yield from c.call(hashtable_search, table, item)
                if not node:
                    return 0
                free = yield from c.call(hashtable_bump, table, node, -1)
                if free < 0:
                    yield from c.call(hashtable_bump, table, node, +1)
                    return 0
                return 10 + item % 7

            total += yield from ctx.atomic(reserve_one,
                                           name="vacation_reserve_one")

        def bill(c, customer=customer, total=total):
            cnode = yield from c.call(hashtable_search, db.customers,
                                      customer)
            if cnode:
                yield from c.call(hashtable_bump, db.customers, cnode, total)

        yield from ctx.atomic(bill, name="vacation_bill")
        yield from ctx.compute(250)


@register
class VacationOpt(Workload):
    name = "vacation_opt"
    suite = "stamp"
    expected_type = "II"
    description = "vacation with per-resource transactions"

    def build(self, sim, n_threads, scale, rng):
        db = VacationDb(sim, n_items=self.params.get("n_items", 96),
                        seed=rng.randrange(1 << 30))
        tasks = self.iters(120, scale)
        q = self.params.get("queries_per_task", 4)
        return [(vacation_client_small, (db, tasks, q), {})] * n_threads


@register
class LevelDbOpt(LevelDb):
    """LevelDB with split ref-count micro-transactions."""

    name = "leveldb_opt"
    description = "LevelDB with split refcount transactions"
    split = True


@register
class Ssca2Opt(Ssca2):
    """SSCA2 with one transaction per edge."""

    name = "ssca2_opt"
    description = "SSCA2 with split (per-edge) transactions"
    split = True


@register
class AvlTreeOpt(AvlTreeApp):
    """AVL tree with the read lock elided."""

    name = "avltree_opt"
    description = "AVL tree with the reader lock elided"
    elide_read_lock = True


@register
class SynchroLinkedListOpt(SynchroLinkedList):
    """Linked list with bounded-hop transactions."""

    name = "linkedlist_opt"
    description = "sorted list with bounded-traversal transactions"

    def build(self, sim, n_threads, scale, rng):
        key_range = self.params.get("key_range", 512)
        lst = SortedList(sim.memory)
        for key in range(0, key_range, 2):
            lst.host_insert(key)
        ops = self.iters(60, scale)
        max_hops = self.params.get("max_hops", 12)
        return [
            (linkedlist_bounded_worker, (lst, key_range, ops, max_hops), {})
        ] * n_threads


#: Table 2: (naive workload, optimized workload, paper speedup, symptom)
TABLE2 = [
    ("dedup", "dedup_opt", 1.20,
     "high capacity aborts; high synchronous aborts"),
    ("avltree", "avltree_opt", 1.21, "high T_wait"),
    ("histo", "histo_opt", 2.95, "high T_oh; severe false sharing"),
    ("ua", "ua_opt", 1.05, "high T_oh"),
    ("vacation", "vacation_opt", 1.21, "high abort rate"),
    ("leveldb", "leveldb_opt", 1.05, "high abort rate"),
    ("ssca2", "ssca2_opt", 1.10, "high r_cs; high conflict aborts"),
    ("netdedup", "netdedup_opt", 1.20, "high synchronous aborts"),
    ("linkedlist", "linkedlist_opt", 3.78,
     "high conflict aborts; low average abort penalty"),
]
