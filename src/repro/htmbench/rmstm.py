"""RMS-TM benchmarks: UtilityMine and ScalParc (data-mining kernels).

Both are Type II in Figure 8: critical sections matter (>20% of time)
but conflicts are rare because the transactional updates scatter across
many accumulators.
"""

from __future__ import annotations

import random

from ..dslib.array import IntArray
from ..sim.program import Barrier, simfn
from .base import Workload, register


# ---------------------------------------------------------------------------
# UtilityMine — high-utility itemset mining
# ---------------------------------------------------------------------------


class UtilityData:
    """A transaction database (host side) plus shared per-item utilities."""

    def __init__(self, sim, n_items: int, n_rows: int, row_len: int,
                 seed: int) -> None:
        rng = random.Random(seed)
        self.rows: list[list[tuple[int, int]]] = [
            [(rng.randrange(n_items), rng.randrange(1, 9))
             for _ in range(row_len)]
            for _ in range(n_rows)
        ]
        # per-item accumulators padded to their own lines: updates
        # scatter, so concurrent rows rarely collide (Type II shape)
        self.utilities = IntArray(sim.memory, n_items, line_per_element=True)


@simfn
def utilitymine_worker(ctx, data: UtilityData, start: int, count: int):
    """Scan a slice of the transaction DB; each row's item utilities are
    accumulated in one transaction (utilities scatter across items)."""
    n_rows = len(data.rows)
    for i in range(start, start + count):
        row = data.rows[i % n_rows]
        yield from ctx.compute(350)  # candidate generation / pruning

        def accumulate(c, row=row):
            for item, qty in row:
                yield from data.utilities.add(c, item, qty)

        yield from ctx.atomic(accumulate, name="utility_accumulate")


@register
class UtilityMine(Workload):
    name = "utilitymine"
    suite = "rmstm"
    expected_type = "II"
    description = "high-utility itemset mining: scattered accumulators"

    def build(self, sim, n_threads, scale, rng):
        per_thread = self.iters(60, scale)
        data = UtilityData(
            sim,
            n_items=self.params.get("n_items", 512),
            n_rows=per_thread * n_threads,
            row_len=self.params.get("row_len", 6),
            seed=rng.randrange(1 << 30),
        )
        return [
            (utilitymine_worker, (data, tid * per_thread, per_thread), {})
            for tid in range(n_threads)
        ]


# ---------------------------------------------------------------------------
# ScalParc — scalable decision-tree induction
# ---------------------------------------------------------------------------


class ScalParcData:
    """Per-(attribute, split, class) histogram counts in shared memory."""

    N_CLASSES = 2

    def __init__(self, sim, n_attributes: int, n_splits: int, n_records: int,
                 seed: int) -> None:
        rng = random.Random(seed)
        self.n_attributes = n_attributes
        self.n_splits = n_splits
        self.records = [
            (
                tuple(rng.randrange(n_splits) for _ in range(n_attributes)),
                rng.randrange(self.N_CLASSES),
            )
            for _ in range(n_records)
        ]
        self.counts = IntArray(
            sim.memory, n_attributes * n_splits * self.N_CLASSES,
            line_per_element=True,
        )

    def count_index(self, attribute: int, split: int, cls: int) -> int:
        return (attribute * self.n_splits + split) * self.N_CLASSES + cls


@simfn
def scalparc_worker(ctx, data: ScalParcData, start: int, count: int,
                    bar: Barrier):
    """Histogram a slice of records into the shared split counts, then
    (after a barrier) evaluate split quality as pure compute."""
    n = len(data.records)
    for i in range(start, start + count):
        attrs, cls = data.records[i % n]

        def tally(c, attrs=attrs, cls=cls):
            for a, split in enumerate(attrs):
                yield from data.counts.add(
                    c, data.count_index(a, split, cls), 1
                )

        yield from ctx.atomic(tally, name="scalparc_tally")
        yield from ctx.compute(120)
    yield from ctx.barrier(bar)
    # Gini evaluation over the histograms — reads only, pure compute
    yield from ctx.compute(80 * data.n_attributes * data.n_splits)


@register
class ScalParc(Workload):
    name = "scalparc"
    suite = "rmstm"
    expected_type = "II"
    description = "decision-tree induction: shared split histograms"

    def build(self, sim, n_threads, scale, rng):
        per_thread = self.iters(70, scale)
        data = ScalParcData(
            sim,
            n_attributes=self.params.get("n_attributes", 8),
            n_splits=self.params.get("n_splits", 16),
            n_records=per_thread * n_threads,
            seed=rng.randrange(1 << 30),
        )
        bar = Barrier(n_threads)
        return [
            (scalparc_worker, (data, tid * per_thread, per_thread, bar), {})
            for tid in range(n_threads)
        ]
