"""HTMBench workload registry.

Every benchmark is a :class:`Workload`: it allocates its shared state in
a simulator's memory and returns one program per thread.  Workloads are
registered under their paper names (suite/name), carry the Figure 8 type
the paper measured for them, and take a ``scale`` knob so tests run in
milliseconds while benches run the full configuration.
"""

from __future__ import annotations

import random

from ..sim.engine import Program, Simulator


class Workload:
    """Base class: subclass, set the metadata, implement :meth:`build`."""

    #: short name (registry key), e.g. ``"dedup"``
    name: str = ""
    #: suite the paper groups it under, e.g. ``"parsec"``
    suite: str = ""
    #: Figure 8 category the paper reports ("I", "II" or "III")
    expected_type: str = "II"
    #: one-line description of what the program does
    description: str = ""
    #: static-analysis finding codes (``repro.analysis``) this workload is
    #: *documented* to trigger — e.g. a capacity microbenchmark is built to
    #: overflow the write set, so ``capacity-risk`` is its purpose, not a
    #: defect.  ``python -m repro check --fail-on`` only fails on findings
    #: outside this list.
    expected_findings: tuple = ()

    def __init__(self, **params) -> None:
        self.params = params

    def build(self, sim: Simulator, n_threads: int, scale: float,
              rng: random.Random) -> list[Program]:
        """Allocate shared state in ``sim.memory``; return the programs."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def iters(base: int, scale: float, minimum: int = 1) -> int:
        return max(minimum, int(round(base * scale)))

    def __repr__(self) -> str:
        return f"<workload {self.suite}/{self.name}>"


#: the global registry: name -> workload class
WORKLOADS: dict[str, type[Workload]] = {}


def register(cls: type[Workload]) -> type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise ValueError(f"{cls!r} has no name")
    if cls.name in WORKLOADS:
        raise ValueError(f"duplicate workload name {cls.name!r}")
    WORKLOADS[cls.name] = cls
    return cls


def get_workload(name: str, **params) -> Workload:
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return cls(**params)


def workload_names(suite: str | None = None) -> list[str]:
    names = [
        n for n, cls in WORKLOADS.items()
        if suite is None or cls.suite == suite
    ]
    return sorted(names)


def suites() -> list[str]:
    return sorted({cls.suite for cls in WORKLOADS.values()})
