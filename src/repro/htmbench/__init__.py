"""HTMBench: the paper's benchmark suite, re-built over the simulator.

Importing this package registers every workload; use
:func:`get_workload` / :func:`workload_names` to enumerate them.
"""

from .base import (
    WORKLOADS,
    Workload,
    get_workload,
    register,
    suites,
    workload_names,
)

# importing the suite modules populates the registry
from . import clomp_tm  # noqa: F401
from . import microbench  # noqa: F401
from . import stamp  # noqa: F401
from . import parsec  # noqa: F401
from . import splash2  # noqa: F401
from . import parboil  # noqa: F401
from . import npb  # noqa: F401
from . import synchro  # noqa: F401
from . import rmstm  # noqa: F401
from . import apps  # noqa: F401
from . import ssca2  # noqa: F401
from . import optimized  # noqa: F401
from . import races  # noqa: F401
from . import dataflow  # noqa: F401

__all__ = [
    "Workload",
    "WORKLOADS",
    "register",
    "get_workload",
    "workload_names",
    "suites",
]
