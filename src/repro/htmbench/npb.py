"""NPB ``ua`` (Unstructured Adaptive).

The paper's Table 2 entry: the transactional element updates sit inside
deep loop nests, so the program spends a large fraction of its critical-
section time on transaction begin/end overhead (high T_oh); merging the
small transactions buys 1.05x.
"""

from __future__ import annotations

from ..dslib.array import IntArray
from ..sim.program import Barrier, simfn
from .base import Workload, register


@simfn
def ua_worker(ctx, elements: IntArray, start: int, count: int,
              bar: Barrier, timesteps: int, merge: int):
    """Per timestep: adapt a band of mesh elements.  Each element update
    is transactional; ``merge`` > 1 coalesces that many updates into one
    transaction (the optimized variant)."""
    n = elements.length
    for _ in range(timesteps):
        i = start
        end = start + count
        while i < end:
            chunk = range(i, min(i + merge, end))

            def adapt(c, chunk=chunk):
                for j in chunk:
                    idx = j % n
                    v = yield from elements.get(c, idx)
                    yield from elements.set(c, idx, (v * 5 + 1) % 4099)
                    # small shared halo touch: neighbours may collide
                    h = yield from elements.get(c, (idx + 1) % n)
                    if h % 17 == 0:
                        yield from elements.set(c, (idx + 1) % n, h + 1)

            yield from ctx.atomic(adapt, name="ua_adapt")
            # residual bookkeeping is per element, merged or not
            yield from ctx.compute(260 * len(chunk))
            i += merge
        yield from ctx.barrier(bar)


@register
class Ua(Workload):
    """``merge`` = 1 (naive, Table 2 symptom) or >1 (merged transactions)."""

    name = "ua"
    suite = "npb"
    expected_type = "II"
    description = "unstructured adaptive mesh: small txns in loop nests"

    def build(self, sim, n_threads, scale, rng):
        per_thread = self.iters(120, scale)
        merge = self.params.get("merge", 1)
        elements = IntArray(sim.memory, per_thread * n_threads)
        bar = Barrier(n_threads)
        return [
            (ua_worker,
             (elements, tid * per_thread, per_thread, bar, 3, merge), {})
            for tid in range(n_threads)
        ]
