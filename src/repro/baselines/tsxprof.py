"""A TSXProf-style record-and-replay profiler (Liu et al., PACT'15).

The §9 comparison: TSXProf needs **two executions** —

1. a *record* pass with lightweight timestamp instrumentation on every
   transaction begin/commit/abort (cheap, but it logs every attempted
   transaction, so its trace grows with attempt count), and
2. a *replay* pass that re-executes transactions under an STM-style
   harness instrumenting **every load and store** to reconstruct read/
   write sets and calling contexts (the paper cites >=3x there).

We model both passes faithfully as perturbed executions of the same
program: the record pass charges per-transaction-event cycles and
per-thread trace bytes; the replay pass additionally charges per-access
instrumentation and inflates transactional footprints (instrumentation
metadata shares the cache), re-creating the overhead structure the paper
argues against.  The result object reports both runtimes, the combined
overhead, and the trace size — the quantities Figure/related-work
comparisons need.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rtm.instrument import TxnInstrumentation
from ..sim.config import MachineConfig
from ..sim.engine import RunResult, Simulator

#: bytes logged per attempted transaction in the record pass (begin +
#: outcome timestamps, ids)
TRACE_BYTES_PER_EVENT = 24


@dataclass
class TsxProfResult:
    """Outcome of a full record + replay cycle."""

    native: RunResult
    record: RunResult
    replay: RunResult
    trace_bytes: int
    #: exact per-section event counts recovered by the replay pass (the
    #: "full information" TSXProf ultimately provides)
    ground_truth: TxnInstrumentation

    @property
    def record_overhead(self) -> float:
        return self.record.makespan / self.native.makespan - 1.0

    @property
    def replay_overhead(self) -> float:
        return self.replay.makespan / self.native.makespan - 1.0

    @property
    def total_overhead(self) -> float:
        """Both passes, relative to one native execution — the number to
        put against TxSampler's single-pass ~4%."""
        return (
            (self.record.makespan + self.replay.makespan)
            / self.native.makespan
            - 1.0
        )


class TsxProfSim:
    """Drive the two-pass methodology over any HTMBench workload."""

    def __init__(self, record_event_cost: int = 60,
                 replay_access_cost: int = 14,
                 replay_event_cost: int = 120,
                 replay_extra_wset_lines: int = 4) -> None:
        self.record_event_cost = record_event_cost
        self.replay_access_cost = replay_access_cost
        self.replay_event_cost = replay_event_cost
        self.replay_extra_wset_lines = replay_extra_wset_lines

    def _run(self, workload, n_threads: int, scale: float, seed: int,
             config: MachineConfig,
             instrument: TxnInstrumentation | None,
             access_cost: int) -> RunResult:
        cfg = config if access_cost == 0 else config.evolve(
            load_cost=config.load_cost + access_cost,
            store_cost=config.store_cost + access_cost,
        )
        sim = Simulator(cfg, n_threads=n_threads, seed=seed)
        if instrument is not None:
            sim.rtm.instrument = instrument
        rng = random.Random(seed * 7919 + 13)
        sim.set_programs(workload.build(sim, n_threads, scale, rng))
        return sim.run()

    def profile(self, workload, n_threads: int = 14, scale: float = 1.0,
                seed: int = 0,
                config: MachineConfig | None = None) -> TsxProfResult:
        cfg = config or MachineConfig(n_threads=n_threads)
        native = self._run(workload, n_threads, scale, seed, cfg, None, 0)
        # pass 1: record — timestamp every txn event
        rec_instr = TxnInstrumentation(cost_per_event=self.record_event_cost)
        record = self._run(workload, n_threads, scale, seed, cfg,
                           rec_instr, 0)
        events = (
            rec_instr.total_commits()
            + rec_instr.total_aborts()
            + sum(rec_instr.fallbacks.values())
        )
        trace_bytes = events * TRACE_BYTES_PER_EVENT
        # pass 2: replay — instrument every memory access, inflate
        # transactional footprints with instrumentation metadata
        rep_instr = TxnInstrumentation(
            cost_per_event=self.replay_event_cost,
            extra_wset_lines=self.replay_extra_wset_lines,
        )
        replay = self._run(workload, n_threads, scale, seed, cfg,
                           rep_instr, self.replay_access_cost)
        return TsxProfResult(
            native=native,
            record=record,
            replay=replay,
            trace_bytes=trace_bytes,
            ground_truth=rep_instr,
        )
