"""A pure instrumentation-based profiler (the approach §1 argues against).

Exact per-section counts, but every transaction event pays instrumentation
cycles *inside the timed region*, and the instrumentation's bookkeeping
state inflates transactional footprints — instrumentation does not just
slow HTM programs down, it *changes their abort behaviour* (extra
capacity/conflict aborts), which is the paper's core argument for
sampling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rtm.instrument import TxnInstrumentation
from ..sim.config import MachineConfig
from ..sim.engine import RunResult, Simulator


@dataclass
class InstrumentationResult:
    native: RunResult
    instrumented: RunResult
    counts: TxnInstrumentation

    @property
    def overhead(self) -> float:
        return self.instrumented.makespan / self.native.makespan - 1.0

    @property
    def abort_inflation(self) -> float:
        """Extra aborts caused by the act of measuring (perturbation)."""
        if not self.native.aborts:
            return float("inf") if self.instrumented.aborts else 0.0
        return self.instrumented.aborts / self.native.aborts - 1.0


class InstrumentationProfiler:
    """Full-instrumentation measurement of any HTMBench workload."""

    def __init__(self, event_cost: int = 180, extra_wset_lines: int = 2) -> None:
        self.event_cost = event_cost
        self.extra_wset_lines = extra_wset_lines

    def profile(self, workload, n_threads: int = 14, scale: float = 1.0,
                seed: int = 0,
                config: MachineConfig | None = None) -> InstrumentationResult:
        cfg = config or MachineConfig(n_threads=n_threads)

        def run(instr):
            sim = Simulator(cfg, n_threads=n_threads, seed=seed)
            if instr is not None:
                sim.rtm.instrument = instr
            rng = random.Random(seed * 7919 + 13)
            sim.set_programs(workload.build(sim, n_threads, scale, rng))
            return sim.run()

        native = run(None)
        counts = TxnInstrumentation(
            cost_per_event=self.event_cost,
            extra_wset_lines=self.extra_wset_lines,
        )
        instrumented = run(counts)
        return InstrumentationResult(
            native=native, instrumented=instrumented, counts=counts
        )
