"""Comparator profilers (§9): Perf-style sampling, TSXProf-style
record-and-replay, and pure instrumentation."""

from .instrument import InstrumentationProfiler, InstrumentationResult
from .perf import MISATTRIBUTED, PerfProfiler
from .tsxprof import TsxProfResult, TsxProfSim

__all__ = [
    "PerfProfiler",
    "MISATTRIBUTED",
    "TsxProfSim",
    "TsxProfResult",
    "InstrumentationProfiler",
    "InstrumentationResult",
]
