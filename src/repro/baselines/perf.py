"""A Perf/VTune-style PMU sampling profiler (the §9 comparator).

Same hardware facilities as TxSampler (PMU samples, LBR), but **no RTM
runtime co-design**: it cannot query the state word, so it

* cannot decompose critical-section time into T_tx/T_fb/T_wait/T_oh
  (no Equation-2 view — Perf/VTune's documented gap);
* cannot tell whether a sample in shared transaction/fallback code
  executed speculatively, unless the LBR abort bit happens to be set;
* attributes every sample to the unwound stack + IP only, so samples
  that aborted a transaction land at the *fallback* context —
  the systematic misattribution the paper's Challenge I describes.

It does count RTM events (aborted/commit) like ``perf stat``, giving
hotspot + abort-rate views, which is genuinely useful — just not enough,
as the case studies show.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cct.merge import merge_profiles
from ..cct.tree import CCTNode, call_key, ip_key, new_root
from ..pmu.events import CYCLES, RTM_ABORTED, RTM_COMMIT
from ..pmu.sampling import Sample
from ..core import metrics as m

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Simulator

#: metric: cycles samples whose context was misattributed (known only by
#: comparing with the LBR abort bit; Perf itself cannot see it was wrong)
MISATTRIBUTED = "misattributed"


class PerfProfiler:
    """State-unaware sampling profiler, for head-to-head comparisons."""

    def __init__(self) -> None:
        self.sim: "Simulator" | None = None
        self.roots = []
        self.samples_seen: dict[str, int] = {}

    def attach(self, sim: "Simulator") -> None:
        self.sim = sim
        self.roots = [new_root() for _ in sim.threads]

    def on_sample(self, s: Sample) -> None:
        self.samples_seen[s.event] = self.samples_seen.get(s.event, 0) + 1
        root = self.roots[s.tid]
        # flat attribution: unwound stack + precise IP, nothing else
        path = [call_key(cs, cb) for cs, cb in s.ustack]
        path.append(ip_key(s.ip))
        node = root.insert(path)
        if s.event == CYCLES:
            node.add(m.W)
            if s.aborted_by_sample:
                # the sample executed inside a transaction, but perf files
                # it under the post-abort context all the same
                node.add(MISATTRIBUTED)
        elif s.event == RTM_ABORTED:
            node.add(m.ABORTS, 1, tid=s.tid)
            node.add(m.ABORT_WEIGHT, s.weight)
            node.add(m.AB_BY_CLASS[m.classify_abort_eax(s.abort_eax)])
        elif s.event == RTM_COMMIT:
            node.add(m.COMMITS, 1, tid=s.tid)
        # mem samples: perf records them but has no shadow-memory
        # contention analysis; nothing actionable is derived

    # -- views -------------------------------------------------------------------

    def merged(self) -> CCTNode:
        root = merge_profiles(self.roots)
        self.roots = []
        return root

    def hotspots(self, root: CCTNode | None = None, limit: int = 10):
        """Top contexts by cycles samples (what ``perf report`` shows)."""
        root = root or self.merged()
        nodes = [
            (node.metrics.get(m.W, 0.0), node)
            for node in root.walk()
            if node.metrics.get(m.W)
        ]
        nodes.sort(key=lambda kv: kv[0], reverse=True)
        return nodes[:limit]
