"""Critical-section summaries over the extracted IR.

Aggregates :class:`~repro.analysis.ir.RegionInstance` records into one
:class:`SectionSummary` per ``TM_BEGIN`` site, at the granularity the
hardware model cares about: distinct cache lines per *single* transaction
attempt (capacity is a per-attempt property, so maxima and minima over
instances matter, not unions), write-set ways per associativity set,
nesting depth, and contained unfriendly ops.  Per-thread line-set unions
are kept for the cross-section conflict check, and per-thread word sets
to tell true sharing (same word) from false sharing (same line only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.config import MachineConfig, line_of
from .ir import ProgramIR, ThreadTrace


@dataclass
class SectionSummary:
    """Static profile of one critical section (one TM_BEGIN site)."""

    site: int
    name: str
    instances: int = 0
    tids: set[int] = field(default_factory=set)
    # per-instance footprint extremes (capacity is per-attempt)
    max_read_lines: int = 0
    min_read_lines: int = 0
    max_write_lines: int = 0
    min_write_lines: int = 0
    max_footprint_lines: int = 0
    #: most write-set lines any single instance mapped into one cache set
    max_ways: int = 0
    min_ways: int = 0
    max_depth: int = 1
    #: distinct unfriendly ops seen inside the section: (op, detail, ip)
    unfriendly: list[tuple[str, str, int]] = field(default_factory=list)
    #: instances containing at least one unfriendly op
    unfriendly_instances: int = 0
    # per-thread unions, for cross-thread overlap checks
    read_lines_by_tid: dict[int, set[int]] = field(default_factory=dict)
    write_lines_by_tid: dict[int, set[int]] = field(default_factory=dict)
    read_words_by_tid: dict[int, set[int]] = field(default_factory=dict)
    write_words_by_tid: dict[int, set[int]] = field(default_factory=dict)
    truncated: bool = False

    def always_unfriendly(self) -> bool:
        """Every symbolic attempt contained an unfriendly op."""
        return self.instances > 0 and self.unfriendly_instances == self.instances

    def always_overflows(self, cfg: MachineConfig, n_sets: int) -> bool:
        """Every symbolic attempt exceeded a speculative buffer budget."""
        if not self.instances:
            return False
        return (
            self.min_write_lines > cfg.wset_lines
            or self.min_ways > cfg.wset_assoc
            or self.min_read_lines > cfg.rset_lines
        )


@dataclass
class WorkloadSummary:
    """All section summaries plus the raw thread traces of one workload."""

    workload: str
    config: MachineConfig
    sections: dict[int, SectionSummary] = field(default_factory=dict)
    threads: list[ThreadTrace] = field(default_factory=list)
    #: associativity sets in the modeled write buffer (engine formula)
    n_sets: int = 1
    #: the runtime's global fallback lock word (0 = unknown), forwarded
    #: from :class:`~repro.analysis.ir.ProgramIR` for the lockset pass
    lock_addr: int = 0
    truncated: bool = False

    def section_list(self) -> list[SectionSummary]:
        return sorted(self.sections.values(), key=lambda s: s.site)


def _ways(write_lines: set[int], n_sets: int) -> int:
    """Deepest associativity-set occupancy of one instance's write set."""
    by_set: dict[int, int] = {}
    worst = 0
    for line in write_lines:
        idx = line % n_sets
        depth = by_set.get(idx, 0) + 1
        by_set[idx] = depth
        if depth > worst:
            worst = depth
    return worst


def summarize(ir: ProgramIR) -> WorkloadSummary:
    """Fold the per-thread region instances into per-section summaries."""
    cfg = ir.config
    n_sets = max(1, cfg.wset_lines // max(1, cfg.wset_assoc))
    ws = WorkloadSummary(
        workload=ir.workload,
        config=cfg,
        threads=ir.threads,
        n_sets=n_sets,
        lock_addr=ir.lock_addr,
        truncated=ir.truncated,
    )
    for trace in ir.threads:
        for region in trace.regions:
            s = ws.sections.get(region.site)
            if s is None:
                s = SectionSummary(site=region.site, name=region.name)
                ws.sections[region.site] = s
            read_lines = region.read_lines()
            write_lines = region.write_lines()
            ways = _ways(write_lines, n_sets)
            first = s.instances == 0
            s.instances += 1
            s.tids.add(region.tid)
            s.max_read_lines = max(s.max_read_lines, len(read_lines))
            s.max_write_lines = max(s.max_write_lines, len(write_lines))
            s.max_footprint_lines = max(
                s.max_footprint_lines, len(read_lines | write_lines)
            )
            s.max_ways = max(s.max_ways, ways)
            if first:
                s.min_read_lines = len(read_lines)
                s.min_write_lines = len(write_lines)
                s.min_ways = ways
            else:
                s.min_read_lines = min(s.min_read_lines, len(read_lines))
                s.min_write_lines = min(s.min_write_lines, len(write_lines))
                s.min_ways = min(s.min_ways, ways)
            # region.max_depth is only maintained on outermost instances —
            # exactly right: the hardware (and the dynamic profiler)
            # attribute nest-overflow to the outer transaction's site
            s.max_depth = max(s.max_depth, region.max_depth)
            if region.unfriendly:
                s.unfriendly_instances += 1
                seen = set(s.unfriendly)
                for entry in region.unfriendly:
                    if entry not in seen:
                        s.unfriendly.append(entry)
                        seen.add(entry)
            s.truncated = s.truncated or region.truncated
            s.read_lines_by_tid.setdefault(region.tid, set()).update(read_lines)
            s.write_lines_by_tid.setdefault(region.tid, set()).update(write_lines)
            s.read_words_by_tid.setdefault(region.tid, set()).update(region.read_addrs)
            s.write_words_by_tid.setdefault(region.tid, set()).update(region.write_addrs)
    return ws


def line_overlap(
    a: SectionSummary,
    b: SectionSummary,
) -> list[tuple[int, int, set[int], bool]]:
    """Cross-thread conflicting line overlaps between two sections.

    Returns ``(tid_a, tid_b, lines, has_write_write)`` tuples where
    thread ``tid_a`` of section ``a`` and a *different* thread ``tid_b``
    of section ``b`` touch common cache lines with at least one writer —
    the paper's conflict-abort precursor.  ``a`` and ``b`` may be the
    same section (same site executed by several threads).
    """
    overlaps: list[tuple[int, int, set[int], bool]] = []
    for tid_a, writes_a in a.write_lines_by_tid.items():
        reads_a = a.read_lines_by_tid.get(tid_a, set())
        for tid_b in b.tids:
            if tid_b == tid_a:
                continue
            if a.site == b.site and tid_b < tid_a:
                continue  # unordered pair within one section
            writes_b = b.write_lines_by_tid.get(tid_b, set())
            reads_b = b.read_lines_by_tid.get(tid_b, set())
            ww = writes_a & writes_b
            wr = (writes_a & reads_b) | (reads_a & writes_b)
            lines = ww | wr
            if lines:
                overlaps.append((tid_a, tid_b, lines, bool(ww)))
    return overlaps


def shares_words(a: SectionSummary, b: SectionSummary, lines: set[int]) -> bool:
    """True sharing test: is some *word* in ``lines`` accessed by two
    different threads, at least one of them writing?  Anything else that
    still overlaps at line granularity is false sharing."""
    tids_by_word: dict[int, set[int]] = {}
    written: set[int] = set()
    sections = (a,) if a is b or a.site == b.site else (a, b)
    for sec in sections:
        for is_write, table in (
            (True, sec.write_words_by_tid),
            (False, sec.read_words_by_tid),
        ):
            for tid, words in table.items():
                for w in words:
                    if line_of(w) not in lines:
                        continue
                    tids_by_word.setdefault(w, set()).add(tid)
                    if is_write:
                        written.add(w)
    return any(
        len(tids) > 1 and w in written for w, tids in tids_by_word.items()
    )
