"""repro.analysis — static TSX-lint over workload IR.

TxSampler (the dynamic profiler in :mod:`repro.core`) diagnoses *why*
transactions abort only after paying for a run.  This package is its
static companion: it recovers an intermediate representation of each
workload by **symbolically driving** the ``simfn`` generators (feeding
deterministic stub results for loads/CAS, bounding the drive), summarizes
every ``TM_BEGIN`` region's cacheline footprint, and predicts the same
abort classes the paper's decision tree categorizes — capacity,
unfriendly-instruction (synchronous), conflict — plus lemming-fallback
and lockset-style race hazards, *without executing the simulator*.

Disagreement between the static prediction and the dynamic profile is a
correctness oracle for both sides; :mod:`repro.analysis.crossval` runs
the profiler on the same workload and scores precision/recall of the
static predictions against the observed abort categorization.

Layers:

* :mod:`repro.analysis.ir` — symbolic extraction: per-function op
  traces, the callgraph, and per-region access records;
* :mod:`repro.analysis.summarize` — per-critical-section footprint /
  nesting / unfriendly-op summaries at cacheline granularity;
* :mod:`repro.analysis.lint` — the diagnostic engine emitting typed
  :class:`~repro.analysis.lint.Finding` objects;
* :mod:`repro.analysis.crossval` — static-vs-dynamic cross-validation.

Surfaced through ``python -m repro check`` (text and ``--json``).
"""

from .crossval import ClassCheck, CrossValidation, cross_validate
from .ir import (
    AnalysisLimits,
    FunctionIR,
    ProgramIR,
    RegionInstance,
    ThreadTrace,
    extract_workload,
)
from .lint import (
    CODES,
    SEVERITIES,
    AnalysisReport,
    Finding,
    analyze_workload,
    severity_rank,
)
from .summarize import SectionSummary, WorkloadSummary, summarize

__all__ = [
    "AnalysisLimits",
    "AnalysisReport",
    "ClassCheck",
    "CODES",
    "CrossValidation",
    "Finding",
    "FunctionIR",
    "ProgramIR",
    "RegionInstance",
    "SEVERITIES",
    "SectionSummary",
    "ThreadTrace",
    "WorkloadSummary",
    "analyze_workload",
    "cross_validate",
    "extract_workload",
    "severity_rank",
    "summarize",
]
