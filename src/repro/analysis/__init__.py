"""repro.analysis — static TSX-lint over workload IR.

TxSampler (the dynamic profiler in :mod:`repro.core`) diagnoses *why*
transactions abort only after paying for a run.  This package is its
static companion: it recovers an intermediate representation of each
workload by **symbolically driving** the ``simfn`` generators (feeding
deterministic stub results for loads/CAS, bounding the drive), summarizes
every ``TM_BEGIN`` region's cacheline footprint, and predicts the same
abort classes the paper's decision tree categorizes — capacity,
unfriendly-instruction (synchronous), conflict — plus lemming-fallback
and lockset-style race hazards, *without executing the simulator*.

Disagreement between the static prediction and the dynamic profile is a
correctness oracle for both sides; :mod:`repro.analysis.crossval` runs
the profiler on the same workload and scores precision/recall of the
static predictions against the observed abort categorization.

Layers:

* :mod:`repro.analysis.ir` — symbolic extraction: per-function op
  traces, the callgraph, and per-region access records;
* :mod:`repro.analysis.summarize` — per-critical-section footprint /
  nesting / unfriendly-op summaries at cacheline granularity;
* :mod:`repro.analysis.dataflow` — path-sensitive abstract
  interpretation: CFG recovery, a worklist fixpoint solver with
  widening, interval/footprint domains, conditional-capacity clients,
  witness paths, and content-addressed per-function summary caching;
* :mod:`repro.analysis.lint` — the diagnostic engine emitting typed
  :class:`~repro.analysis.lint.Finding` objects;
* :mod:`repro.analysis.races` — interprocedural lockset race detection
  (call-graph footprints, path-sensitive exact-lockset asymmetric-race
  / elision-safety checks);
* :mod:`repro.analysis.predict` — static decision-tree prediction
  mapping each TM_BEGIN site onto Figure 1 leaves;
* :mod:`repro.analysis.mc` — bounded interleaving model checking with
  dynamic partial-order reduction: the static abort graph
  (who-aborts-whom per TM_BEGIN site pair, convoy cycles, fallback
  serialization depth) with minimal witness interleavings;
* :mod:`repro.analysis.crossval` — static-vs-dynamic cross-validation,
  including the leaf-agreement and abort-graph-edge panes.

Surfaced through ``python -m repro check`` (text, ``--json``, ``--races``,
``--predict-tree``, ``--mc``, and ``--sarif`` export).
"""

from .crossval import ClassCheck, CrossValidation, EdgeCheck, cross_validate
from .dataflow import (
    CFG,
    DataflowAnalysis,
    FootprintFact,
    Interval,
    SiteDataflow,
    SummaryCache,
    analyze_dataflow,
    solve,
)
from .ir import (
    AnalysisLimits,
    FunctionIR,
    ProgramIR,
    RegionInstance,
    ThreadTrace,
    extract_workload,
)
from .lint import (
    CODES,
    SEVERITIES,
    AnalysisReport,
    Finding,
    analyze_workload,
    severity_rank,
    to_sarif,
)
from .mc import (
    AbortEdge,
    AbortGraph,
    MCLimits,
    ModelCheckAnalysis,
    analyze_mc,
    dpor_explore,
)
from .predict import (
    PREDICTABLE_LEAVES,
    SitePrediction,
    StaticPrediction,
    predict_workload,
)
from .races import (
    AddrSet,
    CallGraph,
    RaceAnalysis,
    StridedInterval,
    WordClass,
    analyze_races,
)
from .summarize import SectionSummary, WorkloadSummary, summarize

__all__ = [
    "AbortEdge",
    "AbortGraph",
    "AddrSet",
    "AnalysisLimits",
    "AnalysisReport",
    "CallGraph",
    "CFG",
    "ClassCheck",
    "CODES",
    "CrossValidation",
    "DataflowAnalysis",
    "EdgeCheck",
    "Finding",
    "FootprintFact",
    "FunctionIR",
    "Interval",
    "MCLimits",
    "ModelCheckAnalysis",
    "PREDICTABLE_LEAVES",
    "ProgramIR",
    "RaceAnalysis",
    "RegionInstance",
    "SEVERITIES",
    "SectionSummary",
    "SiteDataflow",
    "SitePrediction",
    "StaticPrediction",
    "StridedInterval",
    "SummaryCache",
    "ThreadTrace",
    "WordClass",
    "WorkloadSummary",
    "analyze_dataflow",
    "analyze_mc",
    "analyze_races",
    "analyze_workload",
    "cross_validate",
    "dpor_explore",
    "extract_workload",
    "predict_workload",
    "severity_rank",
    "solve",
    "summarize",
    "to_sarif",
]
