"""The diagnostic engine: typed findings over critical-section summaries.

Each check projects a static property of the summarized IR onto the abort
taxonomy the dynamic profiler (and the paper's decision tree) uses, so a
finding is simultaneously a lint diagnostic *and* a prediction that the
profiler will observe a specific abort class at the same TM_BEGIN site —
which is what :mod:`repro.analysis.crossval` scores.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..sim.config import MachineConfig
from .ir import AnalysisLimits, extract_workload
from .summarize import (
    WorkloadSummary,
    line_overlap,
    shares_words,
    summarize,
)

if TYPE_CHECKING:
    from .dataflow import DataflowAnalysis, SummaryCache
    from .mc import ModelCheckAnalysis
    from .predict import StaticPrediction
    from .races import RaceAnalysis

#: severity levels, mildest first
SEVERITIES: tuple[str, ...] = ("info", "warning", "error")

#: finding code -> (severity, predicted dynamic abort class or None, summary)
CODES: dict[str, tuple[str, str | None, str]] = {
    "capacity-risk": (
        "error",
        "capacity",
        "a critical section's cacheline footprint exceeds a speculative "
        "buffer budget (write lines, write-set ways, or read lines)",
    ),
    "unfriendly-op-in-txn": (
        "error",
        "sync",
        "a critical section issues an HTM-unfriendly operation (syscall "
        "or barrier) that raises a persistent synchronous abort",
    ),
    "nesting-overflow": (
        "error",
        "capacity",
        "critical sections nest deeper than the hardware nest-count "
        "limit, overflowing the outer transaction",
    ),
    "cross-section-conflict": (
        "warning",
        "conflict",
        "two threads' critical sections touch common cache lines with at "
        "least one writer — the precursor of conflict aborts",
    ),
    "lemming-risk": (
        "warning",
        None,
        "a section every attempt of which aborts persistently is run by "
        "several threads; each falls back to the global lock, and the "
        "lock's coherence traffic aborts the others (lemming cascade)",
    ),
    "unprotected-shared-access": (
        "warning",
        None,
        "an address protected by a critical section in one thread is "
        "accessed outside any section by another thread in the same "
        "barrier epoch (lockset-style race hazard)",
    ),
    # -- lockset race codes (repro.analysis.races, ``check --races``) ------
    "asymmetric-fallback-race": (
        "error",
        "conflict",
        "a transactional access races an access made under a lock the "
        "transaction does not subscribe to: the elided transaction can "
        "read/commit in the middle of the lock-holder's critical section "
        "(the asymmetric-race hazard of hand-rolled lock elision)",
    ),
    "elision-unsafe-access": (
        "error",
        "conflict",
        "a shared word written with an empty lockset: one thread reaches "
        "it outside both any transaction and any lock while another "
        "thread holds it protected in the same barrier epoch",
    ),
    "lock-footprint-conflict": (
        "warning",
        "conflict",
        "non-lock data shares the global fallback lock's cache line; "
        "every transaction subscribes to that line, so any write to it "
        "aborts all concurrent speculation",
    ),
    # -- dataflow codes (repro.analysis.dataflow, on by default) -----------
    # prediction=None on all four: they carry best/worst-case *envelopes*
    # (in data / the crossval envelope pane), not point predictions, so
    # they can never put an unobservable class into predicted_classes()
    "conditional-capacity-overflow": (
        "warning",
        None,
        "a critical section's read/write set exceeds a capacity budget on "
        "some path or extrapolated loop bound but not on all paths — the "
        "abort class is input-dependent (best case commits, worst case "
        "overflows)",
    ),
    "loop-scaled-footprint": (
        "warning",
        None,
        "a loop inside a critical section has a varying trip count that "
        "drags the transactional footprint with it; the section's "
        "capacity headroom shrinks with input scale, not a constant",
    ),
    "divergent-path-footprint": (
        "info",
        None,
        "branch arms inside a critical section touch footprints differing "
        "by 2x or more, so which abort class (if any) manifests depends "
        "on the path taken",
    ),
    "dead-txn-no-shared-access": (
        "info",
        None,
        "no word a critical section touches is shared with a writing "
        "thread: the transaction cannot experience a data conflict and "
        "its begin/end overhead buys no isolation",
    ),
    # -- model-checker codes (repro.analysis.mc, ``check --mc``) -----------
    # prediction=None on all three: they describe *interaction shapes*
    # (cycles, dominance, serialization) derived from the abort graph,
    # which the graph-aware crossval pane scores edge-by-edge instead
    "convoy-cycle": (
        "warning",
        None,
        "the static abort graph contains a cycle of fallback-lock edges: "
        "each section's lock acquisition aborts the others' speculation, "
        "driving them to the fallback in turn (lemming convoy), proven by "
        "a concrete witness interleaving",
    ),
    "asymmetric-abort-dominance": (
        "info",
        None,
        "the abort graph has a data-conflict edge in one direction only "
        "between two sections: under requester-wins arbitration one "
        "section always dooms the other, which absorbs every abort and "
        "risks starvation",
    ),
    "fallback-serialization-depth": (
        "warning",
        None,
        "some explored interleaving queues two or more threads behind "
        "the global fallback lock at once — the worst-case serialization "
        "depth bounds how much of the workload a convoy can flatten to "
        "lock-speed",
    ),
}


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in :data:`SEVERITIES` (higher = worse)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


@dataclass
class Finding:
    """One typed diagnostic, tied to TM_BEGIN site(s) when applicable."""

    code: str
    severity: str
    message: str
    #: TM_BEGIN call-site addresses this finding implicates (may be empty)
    sites: tuple[int, ...] = ()
    #: section names matching ``sites``
    sections: tuple[str, ...] = ()
    #: dynamic abort class this finding predicts at ``sites`` (or None)
    prediction: str | None = None
    #: machine-readable evidence (budgets, line counts, sample addresses)
    data: dict[str, Any] = field(default_factory=dict)
    #: concrete witness path: (tid, ip, note) steps; rendered as SARIF
    #: ``codeFlows``.  Every race/conflict finding carries one.
    witness: tuple[tuple[int, int, str], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "sites": list(self.sites),
            "sections": list(self.sections),
            "prediction": self.prediction,
            "data": self.data,
            "witness": [list(step) for step in self.witness],
        }


@dataclass
class AnalysisReport:
    """All findings for one workload, plus the summary they derive from."""

    workload: str
    findings: list[Finding] = field(default_factory=list)
    summary: WorkloadSummary | None = None
    truncated: bool = False
    #: the interprocedural lockset pass's result (``--races``); its
    #: findings are also merged into :attr:`findings`
    races: RaceAnalysis | None = None
    #: the static decision-tree prediction (``--predict-tree``)
    prediction: StaticPrediction | None = None
    #: the fixpoint dataflow pass's result (on by default); its findings
    #: are also merged into :attr:`findings`
    dataflow: DataflowAnalysis | None = None
    #: the bounded model checker's result (``--mc``); its findings are
    #: also merged into :attr:`findings`
    mc: ModelCheckAnalysis | None = None

    def max_severity(self) -> str | None:
        worst: str | None = None
        for f in self.findings:
            if worst is None or severity_rank(f.severity) > severity_rank(worst):
                worst = f.severity
        return worst

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    def predicted_classes(self) -> dict[int, set[str]]:
        """Predicted abort classes per TM_BEGIN site (crossval's input)."""
        out: dict[int, set[str]] = {}
        for f in self.findings:
            if f.prediction is None:
                continue
            for site in f.sites:
                out.setdefault(site, set()).add(f.prediction)
        return out

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "workload": self.workload,
            "truncated": self.truncated,
            "max_severity": self.max_severity(),
            "findings": [f.to_dict() for f in self.findings],
        }
        if self.summary is not None:
            d["sections"] = [
                {
                    "site": s.site,
                    "name": s.name,
                    "instances": s.instances,
                    "threads": len(s.tids),
                    "max_read_lines": s.max_read_lines,
                    "max_write_lines": s.max_write_lines,
                    "max_ways": s.max_ways,
                    "max_depth": s.max_depth,
                    "unfriendly_instances": s.unfriendly_instances,
                }
                for s in self.summary.section_list()
            ]
        if self.races is not None:
            d["races"] = self.races.to_dict()
        if self.prediction is not None:
            d["prediction"] = self.prediction.to_dict()
        if self.dataflow is not None:
            d["dataflow"] = self.dataflow.to_dict()
        if self.mc is not None:
            d["mc"] = self.mc.to_dict()
        return d


def finding_sort_key(f: Finding) -> tuple[str, tuple[int, ...], str]:
    """The canonical (code, sites, message) order.

    Deliberately free of anything non-deterministic: two runs of the same
    analysis render findings — and therefore ``check --json`` and SARIF
    output — byte-identically, whatever the hash seed or check order.
    """
    return (f.code, f.sites, f.message)


def _finding(code: str, message: str, sites: tuple[int, ...] = (),
             sections: tuple[str, ...] = (),
             witness: tuple[tuple[int, int, str], ...] = (),
             **data: Any) -> Finding:
    severity, prediction, _ = CODES[code]
    return Finding(
        code=code,
        severity=severity,
        message=message,
        sites=sites,
        sections=sections,
        prediction=prediction,
        data=data,
        witness=witness,
    )


# ---------------------------------------------------------------- checks


def _check_capacity(ws: WorkloadSummary) -> list[Finding]:
    cfg = ws.config
    out: list[Finding] = []
    for s in ws.section_list():
        reasons: list[str] = []
        if s.max_write_lines > cfg.wset_lines:
            reasons.append(
                f"write set {s.max_write_lines} lines > budget {cfg.wset_lines}"
            )
        if s.max_ways > cfg.wset_assoc:
            reasons.append(
                f"write set maps {s.max_ways} lines into one cache set "
                f"(> {cfg.wset_assoc} ways)"
            )
        if s.max_read_lines > cfg.rset_lines:
            reasons.append(
                f"read set {s.max_read_lines} lines > budget {cfg.rset_lines}"
            )
        if not reasons:
            continue
        always = s.always_overflows(cfg, ws.n_sets)
        qual = "every attempt overflows" if always else "worst attempt overflows"
        out.append(_finding(
            "capacity-risk",
            f"section '{s.name}': {'; '.join(reasons)} ({qual})",
            sites=(s.site,),
            sections=(s.name,),
            max_read_lines=s.max_read_lines,
            max_write_lines=s.max_write_lines,
            max_ways=s.max_ways,
            wset_lines=cfg.wset_lines,
            wset_assoc=cfg.wset_assoc,
            rset_lines=cfg.rset_lines,
            always=always,
        ))
    return out


def _check_unfriendly(ws: WorkloadSummary) -> list[Finding]:
    out: list[Finding] = []
    for s in ws.section_list():
        if not s.unfriendly:
            continue
        kinds = sorted({f"{op}:{detail}" for op, detail, _ip in s.unfriendly})
        out.append(_finding(
            "unfriendly-op-in-txn",
            f"section '{s.name}' issues {', '.join(kinds)} inside the "
            f"transaction ({s.unfriendly_instances}/{s.instances} attempts)",
            sites=(s.site,),
            sections=(s.name,),
            ops=[[op, detail, ip] for op, detail, ip in s.unfriendly],
            always=s.always_unfriendly(),
        ))
    return out


def _check_nesting(ws: WorkloadSummary) -> list[Finding]:
    cfg = ws.config
    out: list[Finding] = []
    for s in ws.section_list():
        if s.max_depth <= cfg.max_nesting:
            continue
        out.append(_finding(
            "nesting-overflow",
            f"section '{s.name}' nests {s.max_depth} deep "
            f"(> MAX_RTM_NEST_COUNT {cfg.max_nesting}); the outer "
            "transaction aborts with a persistent capacity status",
            sites=(s.site,),
            sections=(s.name,),
            max_depth=s.max_depth,
            max_nesting=cfg.max_nesting,
        ))
    return out


def _check_conflicts(ws: WorkloadSummary) -> list[Finding]:
    sections = ws.section_list()
    out: list[Finding] = []
    for i, a in enumerate(sections):
        for b in sections[i:]:
            overlaps = line_overlap(a, b)
            if not overlaps:
                continue
            lines: set[int] = set()
            ww = False
            pairs = 0
            for _ta, _tb, ls, has_ww in overlaps:
                lines |= ls
                ww = ww or has_ww
                pairs += 1
            true_sharing = shares_words(a, b, lines)
            sharing = ("true sharing" if true_sharing
                       else "false sharing (same line, different words)")
            where = (
                f"sections '{a.name}' and '{b.name}'"
                if a.site != b.site
                else f"section '{a.name}' across {len(a.tids)} threads"
            )
            out.append(_finding(
                "cross-section-conflict",
                f"{where} contend on {len(lines)} cache line(s) "
                f"({'write-write' if ww else 'read-write'}, {sharing})",
                sites=(a.site,) if a.site == b.site else (a.site, b.site),
                sections=(a.name,) if a.site == b.site else (a.name, b.name),
                lines=sorted(lines)[:16],
                n_lines=len(lines),
                write_write=ww,
                true_sharing=true_sharing,
                thread_pairs=pairs,
            ))
    return out


def _check_lemming(ws: WorkloadSummary) -> list[Finding]:
    cfg = ws.config
    out: list[Finding] = []
    for s in ws.section_list():
        if len(s.tids) < 2:
            continue
        persistent = s.always_unfriendly() or s.always_overflows(cfg, ws.n_sets)
        if not persistent:
            continue
        cause = "unfriendly op" if s.always_unfriendly() else "capacity overflow"
        out.append(_finding(
            "lemming-risk",
            f"section '{s.name}' aborts persistently on every attempt "
            f"({cause}) and is run by {len(s.tids)} threads: all of them "
            "serialize on the fallback lock, and the lock's coherence "
            "traffic aborts concurrent speculation (lemming effect)",
            sites=(s.site,),
            sections=(s.name,),
            threads=len(s.tids),
            cause=cause,
        ))
    return out


def _check_unprotected(ws: WorkloadSummary) -> list[Finding]:
    # lockset-style: an address some thread only touches inside a critical
    # section, while another thread touches it *outside* any section in an
    # overlapping barrier epoch, with a writer involved.  Barrier-phased
    # init/verify accesses (disjoint epochs) do not trigger it.
    protected_writes: dict[int, dict[int, set[int]]] = {}  # addr -> tid -> epochs
    protected_reads: dict[int, dict[int, set[int]]] = {}
    bare_writes: dict[int, dict[int, set[int]]] = {}
    bare_reads: dict[int, dict[int, set[int]]] = {}
    for t in ws.threads:
        for src, dst in (
            (t.in_writes, protected_writes),
            (t.in_reads, protected_reads),
            (t.out_writes, bare_writes),
            (t.out_reads, bare_reads),
        ):
            for addr, epochs in src.items():
                dst.setdefault(addr, {})[t.tid] = set(epochs)

    def _overlapping(addr: int, me: int, epochs: set[int],
                     table: dict[int, dict[int, set[int]]]) -> bool:
        return any(
            tid != me and epochs & other_epochs
            for tid, other_epochs in table.get(addr, {}).items()
        )

    racy: list[int] = []
    for addr, by_tid in protected_writes.items():
        for tid, epochs in by_tid.items():
            if (
                _overlapping(addr, tid, epochs, bare_writes)
                or _overlapping(addr, tid, epochs, bare_reads)
            ):
                racy.append(addr)
                break
    for addr, by_tid in bare_writes.items():
        if addr in set(racy):
            continue
        for tid, epochs in by_tid.items():
            if _overlapping(addr, tid, epochs, protected_reads) or _overlapping(
                addr, tid, epochs, protected_writes
            ):
                racy.append(addr)
                break
    if not racy:
        return []
    racy.sort()
    return [_finding(
        "unprotected-shared-access",
        f"{len(racy)} address(es) are accessed under a critical section "
        "by one thread and outside any section by another in the same "
        "barrier epoch; the unprotected access neither aborts nor waits "
        "for concurrent transactions",
        addrs=racy[:16],
        n_addrs=len(racy),
    )]


#: check registry, in report order
_CHECKS = (
    _check_capacity,
    _check_unfriendly,
    _check_nesting,
    _check_conflicts,
    _check_lemming,
    _check_unprotected,
)


def lint_summary(ws: WorkloadSummary) -> AnalysisReport:
    """Run every check over an existing summary."""
    report = AnalysisReport(workload=ws.workload, summary=ws, truncated=ws.truncated)
    for check in _CHECKS:
        report.findings.extend(check(ws))
    report.findings.sort(key=finding_sort_key)
    return report


def analyze_workload(
    workload: Any,
    n_threads: int = 14,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
    limits: AnalysisLimits | None = None,
    races: bool = False,
    predict: bool = False,
    dataflow: bool = True,
    dataflow_cache: SummaryCache | None = None,
    mc: bool = False,
    mc_limits: Any = None,
    **params: Any,
) -> AnalysisReport:
    """Extract, summarize and lint one workload end to end.

    ``races`` additionally runs the interprocedural lockset pass
    (:mod:`repro.analysis.races`), merging its findings into the report;
    ``predict`` attaches the static decision-tree prediction
    (:mod:`repro.analysis.predict`); ``dataflow`` (on by default) runs
    the fixpoint layer — conditional-capacity/loop/path codes plus
    witness paths on every race/conflict finding — optionally reusing
    content-addressed function summaries from ``dataflow_cache``;
    ``mc`` runs the bounded interleaving model checker
    (:mod:`repro.analysis.mc`), merging its abort-graph findings and
    letting the predictor widen envelopes with graph-reachable classes.
    """
    ir = extract_workload(
        workload,
        n_threads=n_threads,
        scale=scale,
        seed=seed,
        config=config,
        limits=limits,
        **params,
    )
    ws = summarize(ir)
    report = lint_summary(ws)
    if races:
        from .races import analyze_races

        report.races = analyze_races(ir, ws)
        # the lockset pass refines the coarse in-region/out-of-region
        # heuristic (it knows about hand-rolled locks and subscription),
        # so the generic finding is superseded: every hazard it could
        # flag is either re-reported with a precise code or provably safe
        report.findings = [
            f for f in report.findings if f.code != "unprotected-shared-access"
        ]
        report.findings.extend(report.races.findings)
    if dataflow:
        from .dataflow import analyze_dataflow, attach_witnesses

        report.dataflow = analyze_dataflow(
            ir, ws, existing=report.findings, cache=dataflow_cache
        )
        report.findings.extend(report.dataflow.findings)
        attach_witnesses(ir, report.findings)
    if mc:
        from .mc import analyze_mc

        report.mc = analyze_mc(ir, ws, limits=mc_limits)
        report.findings.extend(report.mc.findings)
    report.findings.sort(key=finding_sort_key)
    if predict:
        from .predict import predict_workload

        # the lockset pass (when run) sharpens race-implicated sites'
        # leaves from the overhead branch to the abort branch; the
        # dataflow envelope adds observed conditional-capacity leaves;
        # the abort graph (when run) widens worst-case envelopes with
        # every interaction class some interleaving can inflict
        report.prediction = predict_workload(
            ws, races=report.races, dataflow=report.dataflow, mc=report.mc
        )
    return report


# ------------------------------------------------------------------ SARIF

#: finding severity -> SARIF result level
_SARIF_LEVELS = {"info": "note", "warning": "warning", "error": "error"}


def _sarif_location(site: int) -> dict[str, Any] | None:
    """Physical source location of one TM_BEGIN site, if resolvable.

    Site addresses are ``function_base + python_line``, so the region is
    the *actual* source line of the ``with ctx.atomic(...)`` statement in
    the workload file — clickable in code-scanning UIs.
    """
    from ..sim.program import REGISTRY

    fn = REGISTRY.function_at(site)
    if fn is None:
        return None
    code = getattr(fn.func, "__code__", None)
    uri = code.co_filename if code is not None else fn.name
    rel = os.path.relpath(uri, os.getcwd())
    if not rel.startswith(".."):
        uri = rel.replace(os.sep, "/")
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri},
            "region": {"startLine": max(1, site - fn.base)},
        },
        "logicalLocations": [
            {"name": fn.name, "fullyQualifiedName": REGISTRY.describe(site)}
        ],
    }


def _sarif_code_flow(witness: tuple[tuple[int, int, str], ...]) -> dict[str, Any]:
    """One witness path as a SARIF codeFlow (single threadFlow).

    Steps whose ip does not resolve to a registered function still render
    — with a message-only location — so the path stays contiguous.
    """
    locations = []
    for tid, ip, note in witness:
        text = f"[t{tid}] {note}" if tid >= 0 else note
        location: dict[str, Any] = {"message": {"text": text}}
        resolved = _sarif_location(ip)
        if resolved is not None:
            location.update(resolved)
        locations.append({"location": location})
    return {"threadFlows": [{"locations": locations}]}


def _jsonable(value: Any) -> Any:
    """Finding data verbatim, but with tuples/sets as plain JSON arrays."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    return value


def to_sarif(reports: list[AnalysisReport]) -> dict[str, Any]:
    """Render analysis reports as one SARIF 2.1.0 log (one run, one tool).

    Every entry of :data:`CODES` becomes a rule; every finding becomes a
    result whose locations resolve TM_BEGIN sites back to workload source
    lines.  Uploadable to GitHub code scanning as-is.
    """
    rules = []
    for rule_id in sorted(CODES):
        severity, prediction, summary = CODES[rule_id]
        rule: dict[str, Any] = {
            "id": rule_id,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": _SARIF_LEVELS[severity]},
        }
        if prediction is not None:
            rule["properties"] = {"predictedAbortClass": prediction}
        rules.append(rule)
    results = []
    for report in reports:
        for f in report.findings:
            locations = [
                loc for site in f.sites
                if (loc := _sarif_location(site)) is not None
            ]
            result: dict[str, Any] = {
                "ruleId": f.code,
                "level": _SARIF_LEVELS.get(f.severity, "note"),
                "message": {"text": f"[{report.workload}] {f.message}"},
                "properties": {"workload": report.workload,
                               **_jsonable(f.data)},
            }
            if f.prediction is not None:
                result["properties"]["predictedAbortClass"] = f.prediction
            if locations:
                result["locations"] = locations
            if f.witness:
                result["codeFlows"] = [_sarif_code_flow(f.witness)]
            results.append(result)
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
