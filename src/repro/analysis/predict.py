"""Static decision-tree prediction: TM_BEGIN sites onto Figure 1 leaves.

The dynamic :class:`~repro.core.decision_tree.DecisionTree` walks a
*profile* — sampled time decomposition and abort weights — to a terminal
leaf per critical section.  This module walks the same tree shape over
*static* evidence from the symbolic IR:

* estimated per-attempt body cycles (:attr:`RegionInstance.cycles`)
  versus the runtime's fixed begin/end overhead stand in for the dynamic
  T_oh fraction (``merge-transactions``);
* serialization pressure — how many threads' worth of section time the
  workload tries to run concurrently — stands in for T_wait
  (``relax-serialization``);
* lines written on *every* attempt by two or more threads are certain
  conflict precursors; word-level coincidence separates ``true-sharing``
  from ``false-sharing``;
* per-attempt footprint/nesting overflow and always-unfriendly ops map
  to ``capacity-overflow`` and ``unfriendly-instructions`` exactly like
  the lint checks, but expressed as leaves;
* a site with no pathology predicts ``speculation-ok``.

:mod:`repro.analysis.crossval` then runs the profiler, traverses the
dynamic tree per sampled section (``DecisionTree.analyze_cs``), and
scores predicted against observed leaves — identifier equality on
:class:`~repro.core.decision_tree.Leaf`, not substring matching.

When the symbolic drive was truncated, predictions are marked
``incomplete`` and carry the explicit note instead of full confidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.decision_tree import Leaf, Thresholds
from ..sim.config import line_of
from .ir import RegionInstance
from .summarize import SectionSummary, WorkloadSummary

if TYPE_CHECKING:  # pragma: no cover - circular at runtime
    from .dataflow import DataflowAnalysis
    from .mc import ModelCheckAnalysis
    from .races import RaceAnalysis

#: leaves the static predictor emits per site and crossval scores.
#: Program-level outcomes (no-htm-bottleneck, no-sections) and the
#: dynamic-only sampling artifact (no-abort-weight) are excluded.
PREDICTABLE_LEAVES: tuple[str, ...] = (
    Leaf.MERGE_TRANSACTIONS.value,
    Leaf.RELAX_SERIALIZATION.value,
    Leaf.TRUE_SHARING.value,
    Leaf.FALSE_SHARING.value,
    Leaf.CAPACITY_OVERFLOW.value,
    Leaf.UNFRIENDLY_INSTRUCTIONS.value,
    Leaf.SPECULATION_OK.value,
)

#: appended to predictions derived from a truncated drive
INCOMPLETE_NOTE = (
    "analysis incomplete: the symbolic drive was truncated; leaf "
    "predictions are low-confidence"
)


@dataclass
class SitePrediction:
    """Predicted decision-tree leaves for one TM_BEGIN site."""

    site: int
    name: str
    leaves: tuple[str, ...] = ()
    #: human-readable evidence, one entry per leaf decision
    rationale: tuple[str, ...] = ()
    #: static T_oh stand-in: overhead / (overhead + mean body cycles)
    overhead_frac: float = 0.0
    #: threads' worth of section time competing for the one lock
    pressure: float = 0.0
    #: every-attempt conflicting cache lines across threads
    hot_lines: int = 0
    #: every attempt aborts persistently (overflow / unfriendly / nesting)
    persistent: bool = False
    #: True when the drive was truncated — treat leaves as low-confidence
    incomplete: bool = False
    note: str = ""
    #: abort classes guaranteed on every path (dataflow best case) and
    #: possible on some path (worst case) — the crossval envelope
    best_case: tuple[str, ...] = ()
    worst_case: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "name": self.name,
            "leaves": list(self.leaves),
            "rationale": list(self.rationale),
            "overhead_frac": round(self.overhead_frac, 4),
            "pressure": round(self.pressure, 4),
            "hot_lines": self.hot_lines,
            "persistent": self.persistent,
            "incomplete": self.incomplete,
            "note": self.note,
            "best_case": list(self.best_case),
            "worst_case": list(self.worst_case),
        }


@dataclass
class StaticPrediction:
    """All per-site predictions plus the program-level outcome."""

    workload: str
    sites: dict[int, SitePrediction] = field(default_factory=dict)
    #: program-level leaves (time analysis): empty when sections are hot
    program_leaves: tuple[str, ...] = ()
    #: static r_cs estimate: section cycles / total thread cycles
    est_r_cs: float = 0.0
    incomplete: bool = False

    def predicted_leaves(self) -> dict[int, set[str]]:
        """Site -> predicted leaf values (crossval's static input)."""
        return {site: set(p.leaves) for site, p in self.sites.items()}

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "est_r_cs": round(self.est_r_cs, 4),
            "program_leaves": list(self.program_leaves),
            "incomplete": self.incomplete,
            "sites": [p.to_dict() for p in
                      sorted(self.sites.values(), key=lambda p: p.site)],
        }


def _site_regions(ws: WorkloadSummary, site: int) -> list[RegionInstance]:
    return [
        region
        for t in ws.threads
        for region in t.regions
        if region.site == site
    ]


def _hot_conflicts(regions: list[RegionInstance]) -> tuple[set[int], bool]:
    """Every-attempt conflicting lines across threads, and whether the
    collision is on common *words* (true sharing) or line-only (false)."""
    lines_by_tid: dict[int, set[int] | None] = {}
    words_by_tid: dict[int, set[int] | None] = {}
    read_lines_by_tid: dict[int, set[int]] = {}
    for region in regions:
        wl = region.write_lines()
        wwords = set(region.write_addrs)
        have = lines_by_tid.get(region.tid)
        lines_by_tid[region.tid] = wl if have is None else have & wl
        havew = words_by_tid.get(region.tid)
        words_by_tid[region.tid] = wwords if havew is None else havew & wwords
        read_lines_by_tid.setdefault(region.tid, set()).update(region.read_lines())
    hot: set[int] = set()
    true_sharing = False
    tids = sorted(lines_by_tid)
    for i, ta in enumerate(tids):
        wa = lines_by_tid[ta] or set()
        words_a = words_by_tid[ta] or set()
        for tb in tids[i + 1 :]:
            wb = lines_by_tid[tb] or set()
            words_b = words_by_tid[tb] or set()
            ww = wa & wb
            # write-every-attempt vs read lines of the other thread
            wr = (wa & read_lines_by_tid.get(tb, set())) | (
                wb & read_lines_by_tid.get(ta, set())
            )
            hot |= ww | wr
            if words_a & words_b:
                true_sharing = True
            elif ww and {line_of(w) for w in words_a} & {line_of(w) for w in words_b}:
                pass  # line coincidence only: false sharing
    return hot, true_sharing


def _txn_overhead(ws: WorkloadSummary) -> int:
    cfg = ws.config
    return (
        cfg.tm_begin_overhead + cfg.xbegin_cost + cfg.xend_cost + cfg.tm_end_overhead
    )


def _predict_site(
    ws: WorkloadSummary,
    s: SectionSummary,
    th: Thresholds,
    total_thread_cycles: int,
) -> SitePrediction:
    regions = _site_regions(ws, s.site)
    outer = [r for r in regions if r.depth == 1]
    oh = _txn_overhead(ws)
    mean_body = (
        sum(r.cycles for r in outer) / len(outer) if outer else 0.0
    )
    overhead_frac = oh / (oh + mean_body) if (oh + mean_body) else 0.0
    site_cycles = sum(r.cycles + oh for r in outer)
    max_thread = max(
        (t.est_cycles for t in ws.threads if t.est_cycles), default=0
    )
    pressure = site_cycles / max_thread if max_thread else 0.0
    cfg = ws.config
    persistent = (
        s.always_unfriendly()
        or s.always_overflows(cfg, ws.n_sets)
        or s.max_depth > cfg.max_nesting
    )
    hot, true_sharing = _hot_conflicts(regions)

    leaves: list[str] = []
    rationale: list[str] = []
    if overhead_frac >= th.overhead:
        leaves.append(Leaf.MERGE_TRANSACTIONS.value)
        rationale.append(
            f"begin/end overhead {oh} cycles vs mean body "
            f"{mean_body:.0f} -> est T_oh {overhead_frac:.0%} >= {th.overhead:.0%}"
        )
    if persistent:
        if s.always_unfriendly():
            leaves.append(Leaf.UNFRIENDLY_INSTRUCTIONS.value)
            rationale.append("every attempt contains an unfriendly op")
        if s.always_overflows(cfg, ws.n_sets) or s.max_depth > cfg.max_nesting:
            leaves.append(Leaf.CAPACITY_OVERFLOW.value)
            rationale.append(
                "every attempt overflows a speculative budget "
                f"(min write lines {s.min_write_lines}, min ways {s.min_ways}, "
                f"min read lines {s.min_read_lines}, depth {s.max_depth})"
            )
        if len(s.tids) >= 2 and pressure >= 1.0:
            leaves.append(Leaf.RELAX_SERIALIZATION.value)
            rationale.append(
                f"persistent aborts serialize {len(s.tids)} threads on the "
                f"fallback lock at pressure {pressure:.2f} threads"
            )
    if hot and len(s.tids) >= 2:
        if true_sharing:
            leaves.append(Leaf.TRUE_SHARING.value)
            rationale.append(
                f"{len(hot)} line(s) conflict on every attempt on common words"
            )
        else:
            leaves.append(Leaf.FALSE_SHARING.value)
            rationale.append(
                f"{len(hot)} line(s) conflict on every attempt on distinct words"
            )
    if not leaves:
        leaves.append(Leaf.SPECULATION_OK.value)
        rationale.append("no static pathology: speculation should succeed")
    return SitePrediction(
        site=s.site,
        name=s.name,
        leaves=tuple(leaves),
        rationale=tuple(rationale),
        overhead_frac=overhead_frac,
        pressure=pressure,
        hot_lines=len(hot),
        persistent=persistent,
    )


#: lockset findings whose racing words live inside the section's own
#: footprint: their abort pressure scales with the race, so the measured
#: time decomposition will be abort-dominated at the implicated sites
_RACE_LEAF_CODES = ("asymmetric-fallback-race", "elision-unsafe-access")


def _apply_race_evidence(pred: SitePrediction, codes: list[str]) -> None:
    """Fold lockset-race findings into one site's leaf prediction.

    A race on words the section itself reads or writes dooms attempts
    repeatedly: fallback and retry time dominate the dynamic profile, so
    the tree descends the abort branch instead of diagnosing overhead.
    Mirror that — drop ``merge-transactions`` / ``speculation-ok``
    (their T fractions get diluted below threshold) and predict
    ``true-sharing`` (the race is on common words, not line coincidence).
    """
    keep = [
        (leaf, why)
        for leaf, why in zip(pred.leaves, pred.rationale)
        if leaf not in (Leaf.MERGE_TRANSACTIONS.value,
                        Leaf.SPECULATION_OK.value)
    ]
    if Leaf.TRUE_SHARING.value not in (leaf for leaf, _ in keep):
        keep.append((
            Leaf.TRUE_SHARING.value,
            "lockset pass: " + ", ".join(sorted(set(codes)))
            + " — racing writes on this section's own words doom its "
            "attempts (conflict aborts on common words)",
        ))
    pred.leaves = tuple(leaf for leaf, _ in keep)
    pred.rationale = tuple(why for _, why in keep)


def _apply_dataflow_evidence(
    pred: SitePrediction,
    dataflow: "DataflowAnalysis",
    overflow_sites: dict[int, bool],
) -> None:
    """Fold the fixpoint pass's intervals into one site's prediction.

    Always attaches the best/worst-case abort-class envelope.  Only when
    the conditional-capacity client *observed* the heavy path overflow a
    budget (``observed_overflow``) does the dynamic profile actually show
    capacity aborts — so only then does the leaf prediction change: drop
    the diluted ``merge-transactions`` / ``speculation-ok`` leaves and
    predict ``capacity-overflow``.
    """
    sd = dataflow.sites.get(pred.site)
    if sd is not None:
        pred.best_case = sd.best_classes
        pred.worst_case = sd.worst_classes
    if not overflow_sites.get(pred.site):
        return
    keep = [
        (leaf, why)
        for leaf, why in zip(pred.leaves, pred.rationale)
        if leaf not in (Leaf.MERGE_TRANSACTIONS.value,
                        Leaf.SPECULATION_OK.value)
    ]
    if Leaf.CAPACITY_OVERFLOW.value not in (leaf for leaf, _ in keep):
        keep.append((
            Leaf.CAPACITY_OVERFLOW.value,
            "dataflow pass: the heavy branch arm's footprint interval "
            "exceeds a speculative budget and the drive observed it — "
            "sampled aborts will be capacity-dominated",
        ))
    pred.leaves = tuple(leaf for leaf, _ in keep)
    pred.rationale = tuple(why for _, why in keep)


def _apply_mc_evidence(pred: SitePrediction, mc: "ModelCheckAnalysis") -> None:
    """Widen one site's worst-case envelope with graph-reachable classes.

    The abort graph is reachability evidence — *some* interleaving
    inflicts the class — which is exactly worst-case-envelope strength,
    not every-attempt strength, so the leaves (point predictions scored
    against the dominant dynamic outcome) stay untouched.
    """
    reachable = mc.graph.abort_classes(pred.site)
    extra = sorted(c for c in reachable if c not in pred.worst_case)
    if not extra:
        return
    pred.worst_case = pred.worst_case + tuple(extra)
    pred.note = (pred.note + "; " if pred.note else "") + (
        "abort graph: some explored interleaving inflicts "
        + ", ".join(extra) + " abort(s) on this section"
    )


def predict_workload(
    ws: WorkloadSummary,
    thresholds: Thresholds | None = None,
    races: "RaceAnalysis | None" = None,
    dataflow: "DataflowAnalysis | None" = None,
    mc: "ModelCheckAnalysis | None" = None,
) -> StaticPrediction:
    """Map every TM_BEGIN site of a summarized workload onto tree leaves.

    ``races`` (the lockset pass's result for the same IR) sharpens the
    per-site leaves: race-implicated sites predict the abort branch the
    dynamic tree will actually take instead of a diluted overhead leaf.
    ``dataflow`` (the fixpoint pass) attaches best/worst-case abort-class
    envelopes and upgrades observed conditional overflows to the
    ``capacity-overflow`` leaf.  ``mc`` (the bounded model checker)
    widens worst-case envelopes with every abort class the static abort
    graph can inflict on a site.
    """
    th = thresholds or Thresholds()
    sp = StaticPrediction(workload=ws.workload, incomplete=ws.truncated)
    race_sites: dict[int, list[str]] = {}
    if races is not None:
        for f in races.findings:
            if f.code in _RACE_LEAF_CODES:
                for site in f.sites:
                    race_sites.setdefault(site, []).append(f.code)
    overflow_sites: dict[int, bool] = {}
    if dataflow is not None:
        for f in dataflow.findings:
            if (
                f.code == "conditional-capacity-overflow"
                and f.data.get("observed_overflow") is True
            ):
                for site in f.sites:
                    overflow_sites[site] = True
    total = sum(t.est_cycles for t in ws.threads)
    oh = _txn_overhead(ws)
    section_cycles = 0
    n_outer = 0
    for t in ws.threads:
        for region in t.regions:
            if region.depth == 1:
                section_cycles += region.cycles + oh
                n_outer += 1
    total += oh * n_outer
    sp.est_r_cs = section_cycles / total if total else 0.0
    if not ws.sections:
        sp.program_leaves = (Leaf.NO_SECTIONS.value,)
        return sp
    if sp.est_r_cs < th.r_cs:
        sp.program_leaves = (Leaf.NO_HTM_BOTTLENECK.value,)
    for s in ws.section_list():
        pred = _predict_site(ws, s, th, total)
        if s.site in race_sites:
            _apply_race_evidence(pred, race_sites[s.site])
        if dataflow is not None:
            _apply_dataflow_evidence(pred, dataflow, overflow_sites)
        if mc is not None:
            _apply_mc_evidence(pred, mc)
        if ws.truncated:
            pred.incomplete = True
            pred.note = INCOMPLETE_NOTE
        sp.sites[s.site] = pred
    return sp


__all__ = [
    "PREDICTABLE_LEAVES",
    "INCOMPLETE_NOTE",
    "SitePrediction",
    "StaticPrediction",
    "predict_workload",
]
