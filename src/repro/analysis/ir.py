"""Symbolic IR extraction: drive ``simfn`` generators without the engine.

Workload code is already an op-level IR — generators yielding the typed
instruction tuples of :mod:`repro.sim.program`.  The extractor runs each
thread's generator against a :class:`SymbolicContext` that mimics the
:class:`~repro.sim.thread.ThreadContext` instruction API but interprets
ops *abstractly*:

* loads return the workload's initial memory image overlaid with this
  thread's own prior stores (a deterministic stub — no interleaving, no
  aborts, no faults), so data-structure traversals follow real pointers;
* CAS succeeds or fails against that same sequential view;
* ``atomic`` bodies execute exactly once (no retry, no fallback) and are
  recorded as :class:`RegionInstance` access sets;
* barriers never block; they advance a per-thread *epoch* counter that
  the race checker uses as a happens-before phase boundary.

The drive is bounded by :class:`AnalysisLimits` — a spin loop that only a
concurrent thread could break (e.g. a consumer polling an empty queue)
burns its op budget and the trace is marked ``truncated`` rather than
hanging.  Instruction pointers are synthesized identically to the real
engine (function base + source line), so the extracted region *sites* are
the very addresses the dynamic profiler keys its critical-section table
by — which is what makes static findings and dynamic profiles joinable.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from random import Random
from collections.abc import Callable, Generator
from typing import Any

from ..sim.config import MachineConfig, line_of
from ..sim.engine import Program, Simulator
from ..sim.memory import Memory
from ..sim.program import (
    MEMORY_OPS,
    OP_BARRIER,
    OP_CAS,
    OP_COMPUTE,
    OP_LOAD,
    OP_NOP,
    OP_STORE,
    OP_SYSCALL,
    Barrier,
    SimFunction,
)


@dataclass
class AnalysisLimits:
    """Bounds on one symbolic drive (loop-unrolling budget)."""

    #: op budget per thread; a drive that exhausts it is truncated
    max_ops: int = 120_000
    #: ops retained verbatim (kind, ip, addr) per function IR trace
    max_trace_ops: int = 64
    #: concrete addresses retained per function before the whole-program
    #: pass (repro.analysis.races) widens the set to strided intervals
    max_fn_addrs: int = 4096
    #: ops retained verbatim per RegionInstance (witness reconstruction)
    max_region_trace: int = 96
    #: distinct ip-transition edges retained per function / region CFG;
    #: past the cap new edges are dropped and the CFG marked truncated
    max_cfg_edges: int = 2048
    #: access events (mode, ip, epoch, lockset) retained per address
    max_addr_events: int = 8


@dataclass(eq=False)  # identity semantics: the region stack tests membership
class RegionInstance:
    """One symbolic execution of a ``TM_BEGIN`` critical section."""

    #: TM_BEGIN call-site address (joins with the dynamic profile)
    site: int
    #: section name (the ``name=`` given to ``ctx.atomic``)
    name: str
    tid: int
    #: nesting depth at begin (1 = outermost = the hardware transaction)
    depth: int
    #: barrier epoch the region began in
    epoch: int
    read_addrs: set[int] = field(default_factory=set)
    write_addrs: set[int] = field(default_factory=set)
    #: unfriendly ops issued while the region was open: (op, detail, ip)
    unfriendly: list[tuple[str, str, int]] = field(default_factory=list)
    #: deepest nesting observed while this (outermost) region was open
    max_depth: int = 1
    ops: int = 0
    #: estimated body cycles (instruction costs, no aborts/retries) — the
    #: static stand-in for the dynamic T_tx of one attempt
    cycles: int = 0
    truncated: bool = False
    #: intra-region ip-transition counts ((prev_ip, ip) -> times taken);
    #: the dataflow layer recovers this instance's CFG, loops and branch
    #: arms from these edges
    edges: dict[tuple[int, int], int] = field(default_factory=dict)
    #: first ``max_region_trace`` ops of the body: (kind, ip, addr|None) —
    #: the raw material witness paths are cut from
    trace: list[tuple[str, int, int | None]] = field(default_factory=list)
    #: cachelines touched per issuing ip (loop-body footprint attribution)
    ip_lines: dict[int, set[int]] = field(default_factory=dict)
    #: last ip issued while this region was open (edge-recording cursor)
    prev_ip: int | None = field(default=None, repr=False)
    #: True when the edge cap dropped at least one transition
    edges_truncated: bool = False

    def read_lines(self) -> set[int]:
        return {line_of(a) for a in self.read_addrs}

    def write_lines(self) -> set[int]:
        return {line_of(a) for a in self.write_addrs}

    def footprint_lines(self) -> int:
        return len(self.read_lines() | self.write_lines())


@dataclass
class FunctionIR:
    """Per-function op trace recovered from the symbolic drive."""

    name: str
    base: int
    op_counts: dict[str, int] = field(default_factory=dict)
    #: first ``max_trace_ops`` ops issued from this function: (kind, ip, addr)
    trace: list[tuple[str, int, int | None]] = field(default_factory=list)
    callees: set[str] = field(default_factory=set)
    #: concrete addresses touched by ops issued *from this function's
    #: frame* (callee accesses land on the callee), capped at
    #: ``AnalysisLimits.max_fn_addrs``
    read_addrs: set[int] = field(default_factory=set)
    write_addrs: set[int] = field(default_factory=set)
    #: True when the address cap dropped at least one access
    addrs_truncated: bool = False
    #: ip-transition counts within this function's frame ((prev, cur) ->
    #: times taken), aggregated over every thread and every call — the
    #: recovered CFG the fixpoint solver runs on
    edges: dict[tuple[int, int], int] = field(default_factory=dict)
    #: True when the edge cap dropped at least one transition
    edges_truncated: bool = False


@dataclass
class ThreadTrace:
    """Everything one thread's drive observed."""

    tid: int
    regions: list[RegionInstance] = field(default_factory=list)
    #: out-of-region accesses: addr -> set of barrier epochs
    out_reads: dict[int, set[int]] = field(default_factory=dict)
    out_writes: dict[int, set[int]] = field(default_factory=dict)
    #: in-region accesses (any region open): addr -> set of barrier epochs
    in_reads: dict[int, set[int]] = field(default_factory=dict)
    in_writes: dict[int, set[int]] = field(default_factory=dict)
    #: out-of-region accesses made while holding a hand-rolled spin lock
    #: (a word CAS-acquired 0 -> nonzero): addr -> lock word -> epochs.
    #: A subset of ``out_*``; the lockset pass subtracts them to find
    #: truly bare accesses.
    locked_reads: dict[int, dict[int, set[int]]] = field(default_factory=dict)
    locked_writes: dict[int, dict[int, set[int]]] = field(default_factory=dict)
    #: exact lockset snapshots per out-of-region access: addr -> sorted
    #: tuple of *all* lock words held at the access -> epochs.  Unlike
    #: ``locked_*`` (one entry per held lock, flow-insensitive), this is
    #: the path-sensitive view: an access under {L1, L2} is safe if a
    #: racing transaction subscribes to *either* lock.
    lockset_reads: dict[int, dict[tuple[int, ...], set[int]]] = field(default_factory=dict)
    lockset_writes: dict[int, dict[tuple[int, ...], set[int]]] = field(default_factory=dict)
    #: bounded per-address event log for witness paths: addr -> list of
    #: (mode, ip, epoch, lockset) where mode is one of ``txn-r``,
    #: ``txn-w``, ``locked-r``, ``locked-w``, ``bare-r``, ``bare-w``
    events: dict[int, list[tuple[str, int, int, tuple[int, ...]]]] = field(default_factory=dict)
    #: words this thread treated as spin locks (acquire-CAS observed)
    lock_words: set[int] = field(default_factory=set)
    total_ops: int = 0
    barriers: int = 0
    #: estimated cycles for the whole drive (instruction costs only)
    est_cycles: int = 0
    truncated: bool = False


@dataclass
class ProgramIR:
    """The whole workload's recovered IR."""

    workload: str
    config: MachineConfig
    threads: list[ThreadTrace] = field(default_factory=list)
    functions: dict[str, FunctionIR] = field(default_factory=dict)
    #: caller-name -> callee-name edges (includes the tm_begin pseudo-edge)
    call_edges: set[tuple[str, str]] = field(default_factory=set)
    #: address of the runtime's global fallback lock word (0 = unknown).
    #: Every hardware transaction subscribes to it, which is what makes
    #: the runtime's own elision race-free — and what the lockset pass
    #: exploits to tell safe elision from hand-rolled variants.
    lock_addr: int = 0

    @property
    def truncated(self) -> bool:
        return any(t.truncated for t in self.threads)


class _DriveStop(Exception):
    """Internal: the op budget ran out; unwind the drive."""


def _bump_edge(
    edges: dict[tuple[int, int], int], prev: int | None, cur: int, cap: int
) -> bool:
    """Count the ip transition ``prev -> cur``; False when the cap drops it.

    Self-edges are kept: the same source line issuing two ops in a row is
    loop evidence (a one-line loop body), and the trip-count client
    cross-checks against per-instance counts before trusting any edge.
    """
    if prev is None:
        return True
    key = (prev, cur)
    if key in edges:
        edges[key] += 1
        return True
    if len(edges) >= cap:
        return False
    edges[key] = 1
    return True


def _tm_begin_fn() -> SimFunction:
    # imported lazily: rtm.runtime registers the tm_begin frame function
    from ..rtm.runtime import tm_begin

    return tm_begin


class SymbolicContext:
    """A :class:`~repro.sim.thread.ThreadContext` stand-in for extraction.

    Exposes the identical instruction API (``load``/``store``/``cas``/
    ``compute``/``syscall``/``barrier``/``nop``/``call``/``atomic``/
    ``add`` plus ``tid`` and ``rng``), synthesizes the same instruction
    pointers, and mirrors the visible ``tm_begin`` frame the runtime
    pushes — so extracted stacks, call edges and region sites line up
    with what the dynamic profiler sees.
    """

    def __init__(
        self,
        tid: int,
        memory: Memory,
        limits: AnalysisLimits,
        seed: int,
        trace: ThreadTrace,
        functions: dict[str, FunctionIR],
        call_edges: set[tuple[str, str]],
        config: MachineConfig | None = None,
    ) -> None:
        self.tid = tid
        # the engine's per-thread stream, reproduced bit-for-bit so data-
        # dependent control flow (striped indices, backoffs) matches runs
        self.rng = Random((seed + 1) * 1_000_003 + tid)
        self.stack: list[list[Any]] = []
        self.cur_ip = 0
        self._memory = memory
        self._limits = limits
        self._config = config or MachineConfig()
        self._trace = trace
        self._functions = functions
        self._call_edges = call_edges
        self._overlay: dict[int, int] = {}
        self._open_regions: list[RegionInstance] = []
        self._epoch = 0
        #: hand-rolled spin locks currently held (CAS 0 -> nonzero seen
        #: outside any region, not yet released by a store of 0)
        self._locks_held: list[int] = []

    # ------------------------------------------------------------- plumbing

    def _ip(self) -> int:
        """IP of the instruction being issued (engine-identical)."""
        line = sys._getframe(2).f_lineno
        frame = self.stack[-1]
        frame[1] = line
        ip = frame[0].base + line
        self.cur_ip = ip
        return ip

    def _function_ir(self, fn: SimFunction) -> FunctionIR:
        fir = self._functions.get(fn.name)
        if fir is None:
            fir = FunctionIR(name=fn.name, base=fn.base)
            self._functions[fn.name] = fir
        return fir

    def _record_access(self, addr: int, is_write: bool, fir: FunctionIR | None = None) -> None:
        if self._open_regions:
            for region in self._open_regions:
                (region.write_addrs if is_write else region.read_addrs).add(addr)
                region.ip_lines.setdefault(self.cur_ip, set()).add(line_of(addr))
            target = self._trace.in_writes if is_write else self._trace.in_reads
            mode = "txn"
        else:
            target = self._trace.out_writes if is_write else self._trace.out_reads
            mode = "bare"
            if self._locks_held:
                mode = "locked"
                ldict = self._trace.locked_writes if is_write else self._trace.locked_reads
                per_lock = ldict.setdefault(addr, {})
                lockset = tuple(sorted(self._locks_held))
                lsdict = self._trace.lockset_writes if is_write else self._trace.lockset_reads
                lsdict.setdefault(addr, {}).setdefault(lockset, set()).add(self._epoch)
                for lock in self._locks_held:
                    per_lock.setdefault(lock, set()).add(self._epoch)
        target.setdefault(addr, set()).add(self._epoch)
        events = self._trace.events.setdefault(addr, [])
        if len(events) < self._limits.max_addr_events:
            events.append((
                f"{mode}-{'w' if is_write else 'r'}",
                self.cur_ip,
                self._epoch,
                tuple(sorted(self._locks_held)),
            ))
        if fir is not None:
            fn_addrs = fir.write_addrs if is_write else fir.read_addrs
            if len(fn_addrs) < self._limits.max_fn_addrs or addr in fn_addrs:
                fn_addrs.add(addr)
            else:
                fir.addrs_truncated = True

    def _record_unfriendly(self, op: str, detail: str) -> None:
        for region in self._open_regions:
            region.unfriendly.append((op, detail, self.cur_ip))

    def _interpret(self, op: tuple) -> Any:
        trace = self._trace
        trace.total_ops += 1
        if trace.total_ops > self._limits.max_ops:
            raise _DriveStop
        kind = op[0]
        frame = self.stack[-1]
        fir = self._function_ir(frame[0])
        fir.op_counts[kind] = fir.op_counts.get(kind, 0) + 1
        if len(fir.trace) < self._limits.max_trace_ops:
            addr = op[1] if kind in MEMORY_OPS else None
            fir.trace.append((kind, self.cur_ip, addr))
        if not _bump_edge(fir.edges, frame[3], self.cur_ip, self._limits.max_cfg_edges):
            fir.edges_truncated = True
        frame[3] = self.cur_ip
        cfg = self._config
        cost = 0
        if kind == OP_COMPUTE:
            cost = op[1]
        elif kind == OP_LOAD:
            cost = cfg.load_cost
        elif kind == OP_STORE:
            cost = cfg.store_cost
        elif kind == OP_CAS:
            cost = cfg.cas_cost
        elif kind == OP_SYSCALL:
            cost = cfg.syscall_cost + (op[2] or 0)
        trace.est_cycles += cost
        for region in self._open_regions:
            region.ops += 1
            region.cycles += cost
            if not _bump_edge(
                region.edges, region.prev_ip, self.cur_ip, self._limits.max_cfg_edges
            ):
                region.edges_truncated = True
            region.prev_ip = self.cur_ip
            if len(region.trace) < self._limits.max_region_trace:
                region.trace.append(
                    (kind, self.cur_ip, op[1] if kind in MEMORY_OPS else None)
                )
        if kind == OP_LOAD:
            addr = op[1]
            self._record_access(addr, False, fir)
            return self._overlay.get(addr, self._memory.read(addr))
        if kind == OP_STORE:
            addr = op[1]
            self._record_access(addr, True, fir)
            self._overlay[addr] = op[2]
            # a store of 0 into a word this thread CAS-acquired is the
            # hand-rolled spin-lock release
            if op[2] == 0 and addr in self._locks_held:
                self._locks_held.remove(addr)
            return None
        if kind == OP_CAS:
            addr = op[1]
            self._record_access(addr, False, fir)
            cur = self._overlay.get(addr, self._memory.read(addr))
            if cur == op[2]:
                self._record_access(addr, True, fir)
                self._overlay[addr] = op[3]
                # acquire-shaped CAS (0 -> nonzero) outside any region:
                # treat the word as a hand-rolled spin lock held from now
                if (
                    not self._open_regions
                    and op[2] == 0
                    and op[3] != 0
                    and addr not in self._locks_held
                ):
                    self._locks_held.append(addr)
                    trace.lock_words.add(addr)
                return True
            return False
        if kind == OP_SYSCALL:
            self._record_unfriendly(OP_SYSCALL, str(op[1]))
            return None
        if kind == OP_BARRIER:
            self._record_unfriendly(OP_BARRIER, "barrier")
            self._epoch += 1
            trace.barriers += 1
            return None
        if kind in (OP_COMPUTE, OP_NOP):
            return None
        raise ValueError(f"unknown op {op!r} in symbolic drive")

    # ------------------------------------------- the ThreadContext op API

    def compute(self, cycles: int) -> Generator[tuple, Any, None]:
        self._ip()
        yield (OP_COMPUTE, cycles)

    def load(self, addr: int) -> Generator[tuple, Any, int]:
        self._ip()
        value = yield (OP_LOAD, addr)
        return value

    def store(self, addr: int, value: int) -> Generator[tuple, Any, None]:
        self._ip()
        yield (OP_STORE, addr, value)

    def cas(self, addr: int, expected: int, new: int) -> Generator[tuple, Any, bool]:
        self._ip()
        ok = yield (OP_CAS, addr, expected, new)
        return ok

    def syscall(self, kind: str = "write", cycles: int = 0) -> Generator[tuple, Any, None]:
        self._ip()
        yield (OP_SYSCALL, kind, cycles)

    def barrier(self, barrier: Barrier) -> Generator[tuple, Any, None]:
        self._ip()
        yield (OP_BARRIER, barrier)

    def nop(self) -> Generator[tuple, Any, None]:
        self._ip()
        yield (OP_NOP,)

    def add(self, addr: int, delta: int = 1) -> Generator[tuple, Any, int]:
        value = yield from self.load(addr)
        yield from self.store(addr, value + delta)
        return value + delta

    # ----------------------------------------------------- calls / regions

    def _record_callsite(self, frame: list[Any], callsite: int) -> None:
        """Thread the callsite into the caller's (and open regions') CFG.

        Callsites never reach :meth:`_interpret`, but a loop whose body is
        just a call or an ``atomic`` still needs its back edge counted —
        otherwise trip-count inference goes blind exactly where it
        matters most.
        """
        fir = self._function_ir(frame[0])
        if not _bump_edge(fir.edges, frame[3], callsite, self._limits.max_cfg_edges):
            fir.edges_truncated = True
        frame[3] = callsite
        for region in self._open_regions:
            if not _bump_edge(
                region.edges, region.prev_ip, callsite, self._limits.max_cfg_edges
            ):
                region.edges_truncated = True
            region.prev_ip = callsite

    def call(self, fn: SimFunction, *args: Any, **kwargs: Any) -> Generator[tuple, Any, Any]:
        line = sys._getframe(1).f_lineno
        frame = self.stack[-1]
        frame[1] = line
        callsite = frame[0].base + line
        self.cur_ip = callsite
        self._call_edges.add((frame[0].name, fn.name))
        self._function_ir(frame[0]).callees.add(fn.name)
        self._record_callsite(frame, callsite)
        self.stack.append([fn, 0, callsite, None])
        try:
            result = yield from fn.func(self, *args, **kwargs)
        finally:
            self.stack.pop()
        return result

    def atomic(self, body: Callable, name: str | None = None) -> Generator[tuple, Any, Any]:
        """Record a TM_BEGIN region and run ``body`` exactly once.

        Mirrors the real runtime's visible ``tm_begin`` frame so ops in
        the body synthesize the same IPs as under the engine; there is no
        retry loop and no fallback — one symbolic attempt is the IR.
        """
        line = sys._getframe(1).f_lineno
        frame = self.stack[-1]
        frame[1] = line
        callsite = frame[0].base + line
        self.cur_ip = callsite
        tm_begin = _tm_begin_fn()
        self._call_edges.add((frame[0].name, tm_begin.name))
        self._function_ir(frame[0]).callees.add(tm_begin.name)
        self._record_callsite(frame, callsite)
        region = RegionInstance(
            site=callsite,
            name=name or getattr(body, "__name__", "cs"),
            tid=self.tid,
            depth=len(self._open_regions) + 1,
            epoch=self._epoch,
            # root the region CFG at its own TM_BEGIN site: the edge to
            # the first op makes a body whose arms start at different
            # ips a *visible* branch (divergent-path-footprint)
            prev_ip=callsite,
        )
        if self._open_regions:
            root = self._open_regions[0]
            root.max_depth = max(root.max_depth, region.depth)
        self._open_regions.append(region)
        self._trace.regions.append(region)
        self.stack.append([tm_begin, 0, callsite, None])
        try:
            result = yield from body(self)
        finally:
            self.stack.pop()
            if region in self._open_regions:
                self._open_regions.remove(region)
        return result

    # -------------------------------------------------------------- driver

    def drive(self, fn: SimFunction, args: tuple, kwargs: dict) -> None:
        """Run ``fn`` to completion (or budget exhaustion), recording IR."""
        self.stack = [[fn, 0, 0, None]]
        self._function_ir(fn)
        gen = fn.func(self, *args, **kwargs)
        value: Any = None
        try:
            while True:
                try:
                    op = gen.send(value)
                except StopIteration:
                    break
                value = self._interpret(op)
        except _DriveStop:
            self._trace.truncated = True
            for region in self._open_regions:
                region.truncated = True
            gen.close()


def extract_workload(
    workload: Any,
    n_threads: int = 14,
    scale: float = 1.0,
    seed: int = 0,
    config: MachineConfig | None = None,
    limits: AnalysisLimits | None = None,
    **params: Any,
) -> ProgramIR:
    """Build a workload and recover its :class:`ProgramIR` symbolically.

    The workload allocates its shared state in a real (never-run)
    simulator's memory, so the extractor sees genuine addresses — the
    same cachelines the dynamic run would touch — while the generators
    are driven by :class:`SymbolicContext` stubs instead of the engine.
    """
    from ..htmbench.base import Workload, get_workload

    cfg = config or MachineConfig(n_threads=n_threads)
    lim = limits or AnalysisLimits()
    wl = workload if isinstance(workload, Workload) else get_workload(str(workload), **params)
    sim = Simulator(cfg, n_threads=n_threads, seed=seed)
    build_rng = Random(seed * 7919 + 13)  # the runner's stream, reproduced
    programs: list[Program] = wl.build(sim, n_threads, scale, build_rng)
    ir = ProgramIR(workload=wl.name or str(workload), config=cfg)
    ir.lock_addr = sim.rtm.lock.addr
    for tid, (fn, args, kwargs) in enumerate(programs):
        trace = ThreadTrace(tid=tid)
        ctx = SymbolicContext(
            tid=tid,
            memory=sim.memory,
            limits=lim,
            seed=seed,
            trace=trace,
            functions=ir.functions,
            call_edges=ir.call_edges,
            config=cfg,
        )
        ctx.drive(fn, args, kwargs)
        ir.threads.append(trace)
    return ir
