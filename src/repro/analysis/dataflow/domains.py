"""Abstract domains for the fixpoint layer.

Two lattices do all the work:

* :class:`Interval` — integer intervals ``[lo, hi]`` with ``hi=None``
  standing for +inf.  Used for trip counts, footprint sizes, way
  occupancy and nesting depths; widening jumps an unstable upper bound
  to +inf so loops converge in bounded visits.
* :class:`FootprintFact` — must/may sets of touched cachelines flowing
  through a region CFG.  ``must`` is what *every* path to a node has
  touched (intersection at joins), ``may`` what *some* path touched
  (union).  The exit fact turns an observed line set into a guaranteed
  size interval: ``[len(must), len(may)]``.

The observed per-instance sequences get one extra widening rule,
:func:`widen_monotone`: a symbolic drive only sees a prefix of each
thread's behaviour, so a footprint or trip count that grows monotonically
across instances is extrapolated to +inf rather than trusted as bounded.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``hi=None`` means +inf."""

    lo: int
    hi: int | None

    def __post_init__(self) -> None:
        if self.hi is not None and self.hi < self.lo:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def widened(self) -> bool:
        return self.hi is None

    @property
    def is_point(self) -> bool:
        return self.hi == self.lo

    def contains(self, value: int) -> bool:
        return value >= self.lo and (self.hi is None or value <= self.hi)

    def exceeds(self, budget: int) -> bool:
        """May the value exceed ``budget`` on some path?"""
        return self.hi is None or self.hi > budget

    def always_exceeds(self, budget: int) -> bool:
        """Does the value exceed ``budget`` on every path?"""
        return self.lo > budget

    def join(self, other: Interval) -> Interval:
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(min(self.lo, other.lo), hi)

    def widen(self, other: Interval) -> Interval:
        """Classic interval widening (lower bound clamped at 0: counts)."""
        lo = self.lo if other.lo >= self.lo else 0
        if self.hi is not None and other.hi is not None and other.hi <= self.hi:
            hi: int | None = self.hi
        else:
            hi = None
        return Interval(min(lo, other.lo), hi)

    def add(self, other: Interval) -> Interval:
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(self.lo + other.lo, hi)

    def scale(self, k: int) -> Interval:
        return Interval(self.lo * k, None if self.hi is None else self.hi * k)

    @classmethod
    def from_values(cls, values: Iterable[int]) -> Interval:
        vals = list(values)
        if not vals:
            return cls(0, 0)
        return cls(min(vals), max(vals))

    def describe(self) -> str:
        if self.hi is None:
            return f"[{self.lo}, inf)"
        if self.hi == self.lo:
            return f"[{self.lo}]"
        return f"[{self.lo}, {self.hi}]"

    def to_dict(self) -> dict[str, Any]:
        return {"lo": self.lo, "hi": self.hi, "widened": self.widened}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> Interval:
        return cls(int(doc["lo"]), None if doc["hi"] is None else int(doc["hi"]))


def widen_monotone(values: Sequence[int], min_len: int = 3) -> Interval:
    """Interval over an observed sequence, +inf if it trends upward.

    The drive unrolls a bounded number of instances per thread; a
    non-decreasing sequence with net growth is read as the prefix of an
    unbounded trend and its upper bound is widened away.  Flat or
    non-monotone sequences keep their observed max.
    """
    iv = Interval.from_values(values)
    if (
        len(values) >= min_len
        and all(b >= a for a, b in zip(values, values[1:]))
        and values[-1] > values[0]
    ):
        return Interval(iv.lo, None)
    return iv


@dataclass(frozen=True)
class FootprintFact:
    """Must/may cachelines touched on the way to a CFG node."""

    must_read: frozenset[int]
    may_read: frozenset[int]
    must_write: frozenset[int]
    may_write: frozenset[int]

    @classmethod
    def empty(cls) -> FootprintFact:
        nothing: frozenset[int] = frozenset()
        return cls(nothing, nothing, nothing, nothing)

    def join(self, other: FootprintFact) -> FootprintFact:
        return FootprintFact(
            self.must_read & other.must_read,
            self.may_read | other.may_read,
            self.must_write & other.must_write,
            self.may_write | other.may_write,
        )

    def with_access(self, lines: Iterable[int], is_write: bool) -> FootprintFact:
        fs = frozenset(lines)
        if not fs:
            return self
        if is_write:
            return FootprintFact(
                self.must_read, self.may_read,
                self.must_write | fs, self.may_write | fs,
            )
        return FootprintFact(
            self.must_read | fs, self.may_read | fs,
            self.must_write, self.may_write,
        )

    def widen(self, universe_read: frozenset[int], universe_write: frozenset[int]) -> FootprintFact:
        """Jump the may-sets to the observed universe (loop-header widening)."""
        return FootprintFact(
            self.must_read, self.may_read | universe_read,
            self.must_write, self.may_write | universe_write,
        )

    def read_interval(self) -> Interval:
        return Interval(len(self.must_read), len(self.may_read))

    def write_interval(self) -> Interval:
        return Interval(len(self.must_write), len(self.may_write))
