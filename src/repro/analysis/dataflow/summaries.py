"""Per-function summaries, solved bottom-up over the call-graph SCC DAG.

Each function's recovered CFG is solved once with the must/may footprint
client (over its traced accesses) and condensed into a small, cacheable
:class:`FunctionSummary`: loops, branch points, convergence telemetry and
guaranteed line-count intervals.  Functions are processed level by level
of the call graph's SCC condensation — SCCs within a level share no
dependency, so a level's members run concurrently; cache writes stay on
the coordinating thread because the campaign store is single-writer.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ...sim.config import line_of
from ...sim.program import OP_LOAD
from .cache import SummaryCache, function_ir_digest
from .cfg import CFG, scc_levels
from .domains import FootprintFact, Interval
from .solver import solve

if TYPE_CHECKING:  # pragma: no cover
    from ...sim.config import MachineConfig
    from ..ir import FunctionIR, ProgramIR

#: per-level concurrency cap for the SCC-parallel summary pass
MAX_WORKERS = 8


@dataclass
class FunctionSummary:
    """What the dataflow layer remembers about one function."""

    name: str
    digest: str
    n_nodes: int = 0
    n_edges: int = 0
    back_edges: list[tuple[int, int]] = field(default_factory=list)
    loop_headers: list[int] = field(default_factory=list)
    branch_points: list[int] = field(default_factory=list)
    #: guaranteed line-count intervals at the traced exit (must/may)
    read_lines: Interval = field(default_factory=lambda: Interval(0, 0))
    write_lines: Interval = field(default_factory=lambda: Interval(0, 0))
    iterations: int = 0
    converged: bool = True
    widened: list[int] = field(default_factory=list)
    edges_truncated: bool = False
    #: True when this summary came out of the cache, not a fresh solve
    cached: bool = False

    def to_doc(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "digest": self.digest,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "back_edges": [list(e) for e in self.back_edges],
            "loop_headers": self.loop_headers,
            "branch_points": self.branch_points,
            "read_lines": self.read_lines.to_dict(),
            "write_lines": self.write_lines.to_dict(),
            "iterations": self.iterations,
            "converged": self.converged,
            "widened": self.widened,
            "edges_truncated": self.edges_truncated,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> FunctionSummary:
        return cls(
            name=str(doc["name"]),
            digest=str(doc["digest"]),
            n_nodes=int(doc["n_nodes"]),
            n_edges=int(doc["n_edges"]),
            back_edges=[(int(u), int(v)) for u, v in doc["back_edges"]],
            loop_headers=[int(n) for n in doc["loop_headers"]],
            branch_points=[int(n) for n in doc["branch_points"]],
            read_lines=Interval.from_dict(doc["read_lines"]),
            write_lines=Interval.from_dict(doc["write_lines"]),
            iterations=int(doc["iterations"]),
            converged=bool(doc["converged"]),
            widened=[int(n) for n in doc["widened"]],
            edges_truncated=bool(doc["edges_truncated"]),
        )


def _traced_lines(fir: FunctionIR) -> tuple[dict[int, set[int]], dict[int, set[int]]]:
    """Per-ip read/write cachelines recovered from the bounded op trace."""
    reads: dict[int, set[int]] = {}
    writes: dict[int, set[int]] = {}
    for kind, ip, addr in fir.trace:
        if addr is None:
            continue
        target = reads if kind == OP_LOAD else writes  # stores and CAS write
        target.setdefault(ip, set()).add(line_of(addr))
    return reads, writes


def summarize_function(
    fir: FunctionIR, config: MachineConfig, digest: str | None = None
) -> FunctionSummary:
    """Solve one function's CFG with the must/may footprint client."""
    if digest is None:
        digest = function_ir_digest(fir, config)
    entry = fir.trace[0][1] if fir.trace else None
    cfg = CFG.from_edges(fir.edges, entry=entry)
    summary = FunctionSummary(
        name=fir.name,
        digest=digest,
        n_nodes=len(cfg.nodes),
        n_edges=len(cfg.edges),
        back_edges=cfg.back_edges(),
        loop_headers=sorted(cfg.loop_headers()),
        branch_points=sorted(cfg.branch_points()),
        edges_truncated=fir.edges_truncated,
    )
    if cfg.entry is None:
        return summary
    reads, writes = _traced_lines(fir)
    universe_r = frozenset().union(*reads.values()) if reads else frozenset()
    universe_w = frozenset().union(*writes.values()) if writes else frozenset()

    def transfer(node: int, fact: FootprintFact) -> FootprintFact:
        return (
            fact.with_access(reads.get(node, ()), False)
                .with_access(writes.get(node, ()), True)
        )

    solution = solve(
        cfg,
        FootprintFact.empty(),
        transfer,
        FootprintFact.join,
        widen=lambda _old, new: new.widen(universe_r, universe_w),
    )
    summary.iterations = solution.iterations
    summary.converged = solution.converged
    summary.widened = sorted(solution.widened)
    exit_fact = solution.exit_fact(cfg, FootprintFact.join)
    if exit_fact is not None:
        summary.read_lines = exit_fact.read_interval()
        summary.write_lines = exit_fact.write_interval()
    return summary


def program_summaries(
    ir: ProgramIR,
    cache: SummaryCache | None = None,
    parallel: bool = True,
) -> dict[str, FunctionSummary]:
    """Summarize every recovered function, SCC level by SCC level."""
    succs: dict[str, set[str]] = {name: set() for name in ir.functions}
    for caller, callee in ir.call_edges:
        if caller in succs and callee in succs:
            succs[caller].add(callee)

    def one(name: str) -> FunctionSummary:
        fir = ir.functions[name]
        digest = function_ir_digest(fir, ir.config)
        if cache is not None:
            doc = cache.get(digest)
            if doc is not None:
                cached = FunctionSummary.from_doc(doc)
                cached.cached = True
                return cached
        return summarize_function(fir, ir.config, digest=digest)

    summaries: dict[str, FunctionSummary] = {}
    for level in scc_levels(succs):
        names = [name for component in level for name in component]
        if parallel and len(names) > 1:
            with ThreadPoolExecutor(max_workers=min(MAX_WORKERS, len(names))) as pool:
                solved = list(pool.map(one, names))
        else:
            solved = [one(name) for name in names]
        for name, summary in zip(names, solved):
            summaries[name] = summary
            if cache is not None and not summary.cached:
                # store writes stay serialized on this thread: the
                # campaign store is a single-writer design
                cache.put(summary.digest, summary.to_doc())
    return dict(sorted(summaries.items()))
