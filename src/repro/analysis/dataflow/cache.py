"""Content-addressed caching of per-function dataflow summaries.

A function's summary depends only on its recovered IR (op counts, trace,
CFG edges, callees, touched addresses) and the machine's capacity
budgets — so the sha256 of that content *is* the summary's identity.
``repro check --incremental`` hands the analyzer a campaign store
(:class:`~repro.campaign.store.ResultStore` or ``MemoryStore``); a digest
hit skips the solve entirely, which is what makes the second run of an
unchanged workload ~free while any function whose IR changed re-analyzes
automatically (its digest moved).
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from ...sim.config import MachineConfig
    from ..ir import FunctionIR

#: bump to invalidate every cached summary when the summary shape changes
ANALYSIS_VERSION = 1

_KEY_PREFIX = "dfsum:"


class SummaryStore(Protocol):
    """The slice of the campaign-store API the cache needs."""

    def get(self, key: str) -> dict | None: ...  # pragma: no cover

    def put(self, key: str, record: dict) -> None: ...  # pragma: no cover


def function_ir_digest(fir: FunctionIR, config: MachineConfig) -> str:
    """Stable identity of one function's recovered IR + capacity budgets."""
    doc: dict[str, Any] = {
        "version": ANALYSIS_VERSION,
        "name": fir.name,
        "base": fir.base,
        "op_counts": sorted(fir.op_counts.items()),
        "trace": [list(t) for t in fir.trace],
        "edges": sorted([u, v, c] for (u, v), c in fir.edges.items()),
        "edges_truncated": fir.edges_truncated,
        "callees": sorted(fir.callees),
        "reads": sorted(fir.read_addrs),
        "writes": sorted(fir.write_addrs),
        "addrs_truncated": fir.addrs_truncated,
        "budgets": [
            config.wset_lines, config.rset_lines,
            config.wset_assoc, config.max_nesting,
        ],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SummaryCache:
    """Digest-keyed summary documents over any campaign store.

    When handed a :class:`~repro.obs.metrics.MetricsRegistry`, hit/miss
    counts are mirrored into ``dataflow.cache.hits`` /
    ``dataflow.cache.misses`` counters so the cache shows up in the same
    observability surface as the profiler's own internals.
    """

    def __init__(self, store: SummaryStore, metrics: Any = None) -> None:
        self._store = store
        self.hits = 0
        self.misses = 0
        self.metrics = metrics
        if metrics is not None:
            self._hit_counter = metrics.counter("dataflow.cache.hits")
            self._miss_counter = metrics.counter("dataflow.cache.misses")
        else:
            self._hit_counter = None
            self._miss_counter = None

    def get(self, digest: str) -> dict | None:
        doc = self._store.get(_KEY_PREFIX + digest)
        if doc is None:
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
        else:
            self.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.inc()
        return doc

    def put(self, digest: str, doc: dict) -> None:
        self._store.put(_KEY_PREFIX + digest, doc)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4)}
