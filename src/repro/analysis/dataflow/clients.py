"""Client analyses over the solved CFGs: the four dataflow codes.

Per TM site, the layer recovers a region CFG from the recorded ip
transitions, solves the must/may footprint fixpoint, infers per-loop
trip-count intervals (widened to +inf when per-instance counts grow
monotonically — the drive only unrolled a prefix), and emits:

* ``conditional-capacity-overflow`` — the write/read set *may* exceed
  the capacity budget on some path or extrapolated trip count, but is
  not guaranteed to (that guaranteed case is ``capacity-risk``);
* ``loop-scaled-footprint`` — a loop whose trip count varies and drags
  the footprint with it (>= 1 line per extra trip);
* ``divergent-path-footprint`` — branch arms whose footprints differ by
  2x or more, so the abort class is input-dependent;
* ``dead-txn-no-shared-access`` — no transactionally-touched word is
  shared with any writing thread, so the section cannot experience a
  data conflict at all (and, absent other findings, is pure overhead).

Each site also gets best/worst-case abort classes — what *must* happen
on every path vs what *may* happen on some — which feed the static
decision-tree predictor and the crossval envelope pane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ...sim.config import line_of
from ...sim.program import OP_LOAD
from .cache import SummaryCache
from .cfg import CFG
from .domains import FootprintFact, Interval, widen_monotone
from .solver import solve
from .summaries import FunctionSummary, program_summaries
from .witness import region_witness

if TYPE_CHECKING:  # pragma: no cover
    from ..ir import ProgramIR, RegionInstance
    from ..lint import Finding
    from ..summarize import WorkloadSummary

#: footprint delta (lines) below which loop scaling is noise
LOOP_SCALE_MIN_DELTA = 4
#: branch-arm footprint ratio that counts as divergent
DIVERGENCE_RATIO = 2.0
DIVERGENCE_MIN_DELTA = 2


@dataclass
class SiteDataflow:
    """The solved dataflow facts for one TM site."""

    site: int
    name: str
    instances: int = 0
    tids: list[int] = field(default_factory=list)
    #: per-instance observed sizes, monotone-widened across each thread's
    #: instance sequence
    read_lines: Interval = field(default_factory=lambda: Interval(0, 0))
    write_lines: Interval = field(default_factory=lambda: Interval(0, 0))
    ways: Interval = field(default_factory=lambda: Interval(0, 0))
    depth: Interval = field(default_factory=lambda: Interval(1, 1))
    #: guaranteed footprint interval from the must/may fixpoint
    solver_lines: Interval = field(default_factory=lambda: Interval(0, 0))
    #: loop header ip -> per-instance trip-count interval
    trips: dict[int, Interval] = field(default_factory=dict)
    loop_headers: list[int] = field(default_factory=list)
    branch_points: list[int] = field(default_factory=list)
    iterations: int = 0
    converged: bool = True
    widened_headers: list[int] = field(default_factory=list)
    shared_with_writer: bool = False
    unfriendly: bool = False
    #: abort classes guaranteed on every path / possible on some path
    best_classes: tuple[str, ...] = ()
    worst_classes: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "name": self.name,
            "instances": self.instances,
            "tids": self.tids,
            "read_lines": self.read_lines.to_dict(),
            "write_lines": self.write_lines.to_dict(),
            "ways": self.ways.to_dict(),
            "depth": self.depth.to_dict(),
            "solver_lines": self.solver_lines.to_dict(),
            "trips": {f"{h:#x}": iv.to_dict() for h, iv in sorted(self.trips.items())},
            "loop_headers": self.loop_headers,
            "branch_points": self.branch_points,
            "iterations": self.iterations,
            "converged": self.converged,
            "widened_headers": self.widened_headers,
            "shared_with_writer": self.shared_with_writer,
            "unfriendly": self.unfriendly,
            "best_classes": list(self.best_classes),
            "worst_classes": list(self.worst_classes),
        }


@dataclass
class DataflowAnalysis:
    """The whole workload's dataflow pass: sites, summaries, findings."""

    workload: str
    sites: dict[int, SiteDataflow] = field(default_factory=dict)
    summaries: dict[str, FunctionSummary] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    truncated: bool = False
    cache_stats: dict[str, Any] | None = None

    @property
    def converged(self) -> bool:
        return all(s.converged for s in self.sites.values()) and all(
            f.converged for f in self.summaries.values()
        )

    def envelope(self) -> dict[int, set[str]]:
        """Worst-case abort classes per site (the crossval envelope)."""
        return {site: set(s.worst_classes) for site, s in self.sites.items()}

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "workload": self.workload,
            "converged": self.converged,
            "truncated": self.truncated,
            "sites": [s.to_dict() for _, s in sorted(self.sites.items())],
            "functions": [f.to_doc() | {"cached": f.cached}
                          for _, f in sorted(self.summaries.items())],
        }
        if self.cache_stats is not None:
            doc["cache"] = self.cache_stats
        return doc


def _site_instances(ir: ProgramIR) -> dict[int, dict[int, list[RegionInstance]]]:
    """Outermost region instances grouped site -> tid -> program order."""
    sites: dict[int, dict[int, list[RegionInstance]]] = {}
    for trace in ir.threads:
        for region in trace.regions:
            if region.depth != 1:
                continue
            sites.setdefault(region.site, {}).setdefault(trace.tid, []).append(region)
    return sites


def _joined_monotone(per_tid: dict[int, list[int]]) -> Interval:
    """Per-thread monotone widening, joined across threads."""
    acc: Interval | None = None
    for tid in sorted(per_tid):
        iv = widen_monotone(per_tid[tid])
        acc = iv if acc is None else acc.join(iv)
    return acc if acc is not None else Interval(0, 0)


def _ways_of(region: RegionInstance, n_sets: int) -> int:
    by_set: dict[int, int] = {}
    worst = 0
    for line in region.write_lines():
        idx = line % n_sets
        depth = by_set.get(idx, 0) + 1
        by_set[idx] = depth
        worst = max(worst, depth)
    return worst


def _instance_trips(region: RegionInstance, header: int) -> int:
    return sum(
        count for (u, v), count in region.edges.items() if v == header and v <= u
    )


def _solve_site(
    sd: SiteDataflow,
    instances: list[RegionInstance],
    cfg_edges: dict[tuple[int, int], int],
    entry: int | None,
) -> None:
    """Run the must/may footprint fixpoint over the site's merged CFG."""
    cfg = CFG.from_edges(cfg_edges, entry=entry)
    sd.loop_headers = sorted(cfg.loop_headers())
    sd.branch_points = sorted(cfg.branch_points())
    if cfg.entry is None:
        return
    reads: dict[int, set[int]] = {}
    writes: dict[int, set[int]] = {}
    for region in instances:
        for kind, ip, addr in region.trace:
            if addr is None:
                continue
            target = reads if kind == OP_LOAD else writes
            target.setdefault(ip, set()).add(line_of(addr))
    universe_r = frozenset(
        line for region in instances for line in region.read_lines()
    )
    universe_w = frozenset(
        line for region in instances for line in region.write_lines()
    )

    def transfer(node: int, fact: FootprintFact) -> FootprintFact:
        return (
            fact.with_access(reads.get(node, ()), False)
                .with_access(writes.get(node, ()), True)
        )

    solution = solve(
        cfg,
        FootprintFact.empty(),
        transfer,
        FootprintFact.join,
        widen=lambda _old, new: new.widen(universe_r, universe_w),
    )
    sd.iterations = solution.iterations
    sd.converged = solution.converged
    sd.widened_headers = sorted(solution.widened)
    exit_fact = solution.exit_fact(cfg, FootprintFact.join)
    if exit_fact is not None:
        sd.solver_lines = Interval(
            len(exit_fact.must_read | exit_fact.must_write),
            len(exit_fact.may_read | exit_fact.may_write),
        )


def _shared_with_writer(ir: ProgramIR, instances: list[RegionInstance]) -> bool:
    """Is any word this site touches also touched by another thread,
    with a writer on at least one side?"""
    thread_reads: dict[int, set[int]] = {}
    thread_writes: dict[int, set[int]] = {}
    for trace in ir.threads:
        thread_reads[trace.tid] = set(trace.in_reads) | set(trace.out_reads)
        thread_writes[trace.tid] = set(trace.in_writes) | set(trace.out_writes)
    for region in instances:
        for word in region.read_addrs:
            if any(
                tid != region.tid and word in words
                for tid, words in thread_writes.items()
            ):
                return True
        for word in region.write_addrs:
            if any(
                tid != region.tid and (
                    word in thread_reads[tid] or word in thread_writes[tid]
                )
                for tid in thread_reads
            ):
                return True
    return False


def analyze_site(
    ir: ProgramIR, site: int, per_tid: dict[int, list[RegionInstance]]
) -> SiteDataflow:
    """Solve one TM site: intervals, loops, branches, abort envelope."""
    cfg = ir.config
    n_sets = max(1, cfg.wset_lines // max(1, cfg.wset_assoc))
    instances = [r for tid in sorted(per_tid) for r in per_tid[tid]]
    sd = SiteDataflow(site=site, name=instances[0].name,
                      instances=len(instances), tids=sorted(per_tid))
    sd.read_lines = _joined_monotone(
        {t: [len(r.read_lines()) for r in rs] for t, rs in per_tid.items()}
    )
    sd.write_lines = _joined_monotone(
        {t: [len(r.write_lines()) for r in rs] for t, rs in per_tid.items()}
    )
    sd.ways = _joined_monotone(
        {t: [_ways_of(r, n_sets) for r in rs] for t, rs in per_tid.items()}
    )
    sd.depth = _joined_monotone(
        {t: [r.max_depth for r in rs] for t, rs in per_tid.items()}
    )
    merged: dict[tuple[int, int], int] = {}
    for region in instances:
        for edge, count in region.edges.items():
            merged[edge] = merged.get(edge, 0) + count
    # regions are rooted at their own TM_BEGIN site (ir.py seeds prev_ip
    # with the callsite), so the site ip is the merged CFG's entry
    entry = site if merged else None
    _solve_site(sd, instances, merged, entry)
    for header in sd.loop_headers:
        sd.trips[header] = _joined_monotone(
            {t: [_instance_trips(r, header) for r in rs] for t, rs in per_tid.items()}
        )
    sd.shared_with_writer = _shared_with_writer(ir, instances)
    sd.unfriendly = any(r.unfriendly for r in instances)

    best: list[str] = []
    worst: list[str] = []
    write_over = sd.write_lines.exceeds(cfg.wset_lines)
    read_over = sd.read_lines.exceeds(cfg.rset_lines)
    ways_over = sd.ways.exceeds(cfg.wset_assoc)
    depth_over = sd.depth.exceeds(cfg.max_nesting)
    if write_over or read_over or ways_over or depth_over:
        worst.append("capacity")
    if (
        sd.write_lines.always_exceeds(cfg.wset_lines)
        or sd.read_lines.always_exceeds(cfg.rset_lines)
        or sd.depth.always_exceeds(cfg.max_nesting)
    ):
        best.append("capacity")
    if sd.unfriendly:
        worst.append("sync")
        if all(r.unfriendly for r in instances):
            best.append("sync")
    if sd.shared_with_writer:
        worst.append("conflict")
    sd.best_classes = tuple(best)
    sd.worst_classes = tuple(worst)
    return sd


def _fmt_site(sd: SiteDataflow) -> str:
    return f"{sd.name} @ {sd.site:#x}"


def _emit_findings(
    ir: ProgramIR,
    ws: WorkloadSummary,
    sd: SiteDataflow,
    per_tid: dict[int, list[RegionInstance]],
) -> list[Finding]:
    from ..lint import _finding  # lazy: lint imports this package

    cfg = ir.config
    instances = [r for tid in sorted(per_tid) for r in per_tid[tid]]
    section = ws.sections.get(sd.site)
    always = section is not None and section.always_overflows(cfg, ws.n_sets)
    findings: list[Finding] = []
    branch_points = set(sd.branch_points)

    may_overflow = "capacity" in sd.worst_classes and (
        sd.write_lines.exceeds(cfg.wset_lines)
        or sd.read_lines.exceeds(cfg.rset_lines)
        or sd.ways.exceeds(cfg.wset_assoc)
    )
    if may_overflow and not always:
        observed_w = max(len(r.write_lines()) for r in instances)
        observed_r = max(len(r.read_lines()) for r in instances)
        observed = (
            observed_w > cfg.wset_lines
            or observed_r > cfg.rset_lines
            or max(_ways_of(r, ws.n_sets) for r in instances) > cfg.wset_assoc
        )
        if observed:
            detail = "some executions overflow the budget, others fit"
        else:
            detail = (
                "observed instances fit, but the widened bound crosses "
                "the budget as the footprint trend continues"
            )
        heavy = max(instances, key=lambda r: r.footprint_lines())
        findings.append(_finding(
            "conditional-capacity-overflow",
            f"{_fmt_site(sd)}: write set {sd.write_lines.describe()} lines "
            f"(budget {cfg.wset_lines}), read set {sd.read_lines.describe()} "
            f"(budget {cfg.rset_lines}) — {detail}",
            (sd.site,),
            (sd.name,),
            witness=region_witness(
                heavy, branch_points,
                f"footprint here: {heavy.footprint_lines()} line(s) vs "
                f"write budget {cfg.wset_lines}",
            ),
            read_lines=sd.read_lines.to_dict(),
            write_lines=sd.write_lines.to_dict(),
            ways=sd.ways.to_dict(),
            observed_overflow=observed,
            best_classes=list(sd.best_classes),
            worst_classes=list(sd.worst_classes),
        ))

    fps = [r.footprint_lines() for r in instances]
    fp_delta = max(fps) - min(fps)
    fp_iv = _joined_monotone(
        {t: [r.footprint_lines() for r in rs] for t, rs in per_tid.items()}
    )
    for header, trips in sorted(sd.trips.items()):
        if trips.is_point and not trips.widened:
            continue
        pairs = [(_instance_trips(r, header), r.footprint_lines()) for r in instances]
        trip_delta = max(p[0] for p in pairs) - min(p[0] for p in pairs)
        if trip_delta <= 0:
            continue
        lo_fp = min(p[1] for p in pairs if p[0] == min(q[0] for q in pairs))
        hi_fp = max(p[1] for p in pairs if p[0] == max(q[0] for q in pairs))
        slope = (hi_fp - lo_fp) / trip_delta
        if slope < 1.0:
            continue
        if fp_delta < LOOP_SCALE_MIN_DELTA and not fp_iv.widened:
            continue
        scaling = max(
            instances, key=lambda r, h=header: _instance_trips(r, h)
        )
        findings.append(_finding(
            "loop-scaled-footprint",
            f"{_fmt_site(sd)}: loop at {header:#x} runs "
            f"{trips.describe()} trips and adds ~{slope:.1f} line(s) per "
            f"trip — the footprint scales with input, not the budget",
            (sd.site,),
            (sd.name,),
            witness=region_witness(
                scaling, branch_points,
                f"{_instance_trips(scaling, header)} trips here -> "
                f"{scaling.footprint_lines()} line(s)",
            ),
            loop_header=header,
            trips=trips.to_dict(),
            lines_per_trip=round(slope, 2),
            footprint=fp_iv.to_dict(),
        ))
        break  # one loop finding per site: the dominant loop

    for branch in sd.branch_points:
        groups: dict[tuple[int, ...], list[RegionInstance]] = {}
        for region in instances:
            taken = tuple(sorted(
                v for (u, v) in region.edges if u == branch
            ))
            if taken:
                groups.setdefault(taken, []).append(region)
        if len(groups) < 2:
            continue
        per_group = sorted(
            (max(r.footprint_lines() for r in group), arms)
            for arms, group in groups.items()
        )
        low, high = per_group[0][0], per_group[-1][0]
        if high >= DIVERGENCE_RATIO * max(1, low) and high - low >= DIVERGENCE_MIN_DELTA:
            wide = max(
                (r for r in groups[per_group[-1][1]]),
                key=lambda r: r.footprint_lines(),
            )
            findings.append(_finding(
                "divergent-path-footprint",
                f"{_fmt_site(sd)}: branch at {branch:#x} splits the "
                f"footprint {low} vs {high} line(s) — the abort class "
                f"depends on which arm runs",
                (sd.site,),
                (sd.name,),
                witness=region_witness(
                    wide, branch_points,
                    f"this arm touches {high} line(s); the other {low}",
                ),
                branch=branch,
                arm_footprints=[g[0] for g in per_group],
            ))
            break  # one divergence finding per site

    return findings


def _emit_dead_txn(
    sd: SiteDataflow,
    per_tid: dict[int, list[RegionInstance]],
    occupied: set[int],
) -> list[Finding]:
    from ..lint import _finding  # lazy: lint imports this package

    if sd.shared_with_writer or sd.site in occupied or sd.unfriendly:
        return []
    instances = [r for tid in sorted(per_tid) for r in per_tid[tid]]
    if not instances or any(r.truncated for r in instances):
        return []
    representative = instances[0]
    return [_finding(
        "dead-txn-no-shared-access",
        f"{_fmt_site(sd)}: no word it touches is shared with a writing "
        f"thread — the transaction cannot conflict and is pure "
        f"speculation overhead",
        (sd.site,),
        (sd.name,),
        witness=region_witness(
            representative, set(sd.branch_points),
            "every access here is thread-private or read-shared with no writer",
        ),
        footprint_lines=representative.footprint_lines(),
        tids=sd.tids,
    )]


def analyze_dataflow(
    ir: ProgramIR,
    ws: WorkloadSummary,
    existing: list[Finding] | None = None,
    cache: SummaryCache | None = None,
    parallel: bool = True,
) -> DataflowAnalysis:
    """The full dataflow pass: summaries, site solves, the four codes.

    ``existing`` (the lint/races findings already raised) gates
    ``dead-txn-no-shared-access``: a site that already has a diagnosis is
    not "dead", it is broken, and the broken finding wins.
    """
    analysis = DataflowAnalysis(workload=ir.workload, truncated=ir.truncated)
    analysis.summaries = program_summaries(ir, cache=cache, parallel=parallel)
    if cache is not None:
        analysis.cache_stats = cache.stats()
    site_map = _site_instances(ir)
    for site in sorted(site_map):
        per_tid = site_map[site]
        sd = analyze_site(ir, site, per_tid)
        analysis.sites[site] = sd
        analysis.findings.extend(_emit_findings(ir, ws, sd, per_tid))
    occupied = {
        s
        for f in (list(existing or ()) + analysis.findings)
        for s in f.sites
    }
    for site in sorted(site_map):
        analysis.findings.extend(
            _emit_dead_txn(analysis.sites[site], site_map[site], occupied)
        )
    return analysis
