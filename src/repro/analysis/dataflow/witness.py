"""Witness paths: the concrete evidence trail behind a finding.

A witness is a bounded sequence of ``(tid, ip, note)`` steps — branch
decisions, lock acquisitions and memory accesses reconstructed from the
per-region op traces and the per-address event log the symbolic drive
records.  Every race/conflict finding carries one, and
:func:`repro.analysis.lint.to_sarif` renders them as SARIF ``codeFlows``
so code scanning shows the exact path to each abort risk, not just its
site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ...sim.config import line_of

if TYPE_CHECKING:  # pragma: no cover
    from ..ir import ProgramIR, RegionInstance
    from ..lint import Finding

#: one witness step: (tid, ip, human-readable note); tid -1 = no thread
WitnessStep = tuple[int, int, str]

#: findings that must carry a witness path (the race/conflict family)
RACE_WITNESS_CODES = (
    "asymmetric-fallback-race",
    "elision-unsafe-access",
    "lock-footprint-conflict",
    "cross-section-conflict",
)

MAX_STEPS = 8


def _describe_lockset(locks: tuple[int, ...]) -> str:
    if not locks:
        return "no locks held"
    return "holding {" + ", ".join(f"{lock:#x}" for lock in locks) + "}"


def region_witness(
    region: RegionInstance,
    branch_points: set[int],
    closing_note: str | None = None,
) -> tuple[WitnessStep, ...]:
    """Cut a path through one region instance's recorded op trace.

    Keeps the TM_BEGIN, every branch decision (an op at a branch point
    followed by a different ip), the widest access, and an optional
    closing note — the path a reviewer replays to see the risk happen.
    """
    steps: list[WitnessStep] = [(
        region.tid, region.site,
        f"TM_BEGIN {region.name} (depth {region.depth}, "
        f"{region.footprint_lines()} line(s) touched)",
    )]
    seen_branches: set[int] = set()
    for (_kind, ip, _addr), nxt in zip(region.trace, region.trace[1:]):
        if len(steps) >= MAX_STEPS - 2:
            break
        if ip in branch_points and nxt[1] != ip and ip not in seen_branches:
            seen_branches.add(ip)
            steps.append((region.tid, ip, f"branch: control moves to {nxt[1]:#x}"))
    if region.ip_lines:
        widest = max(sorted(region.ip_lines), key=lambda ip: len(region.ip_lines[ip]))
        steps.append((
            region.tid, widest,
            f"widest access site: {len(region.ip_lines[widest])} line(s)",
        ))
    if closing_note is not None:
        steps.append((region.tid, region.site, closing_note))
    return tuple(steps[:MAX_STEPS])


def _candidate_addrs(ir: ProgramIR, finding: Finding) -> list[int]:
    """Shared words implicated by a finding, from its data or its sites."""
    data: dict[str, Any] = finding.data
    for key in ("addrs", "words", "neighbor_addrs"):
        value = data.get(key)
        if isinstance(value, (list, tuple)) and value:
            return [int(a) for a in value[:4]]
    addr = data.get("addr")
    if isinstance(addr, int):
        return [addr]
    # fall back to the sections themselves: a word touched at the
    # finding's sites by two threads, at least one writing
    by_word: dict[int, set[int]] = {}
    written: dict[int, set[int]] = {}
    lines = data.get("lines")
    line_filter = {int(x) for x in lines} if isinstance(lines, (list, tuple)) else None
    for trace in ir.threads:
        for region in trace.regions:
            if region.site not in finding.sites:
                continue
            for word in region.read_addrs | region.write_addrs:
                if line_filter is not None and line_of(word) not in line_filter:
                    continue
                by_word.setdefault(word, set()).add(region.tid)
                if word in region.write_addrs:
                    written.setdefault(word, set()).add(region.tid)
    shared = [
        word for word, tids in by_word.items()
        if len(tids) >= 2 and word in written
    ]
    return sorted(shared)[:2]


def race_witness(ir: ProgramIR, finding: Finding) -> tuple[WitnessStep, ...]:
    """Reconstruct a concrete access path for a race/conflict finding."""
    steps: list[WitnessStep] = []
    lock = finding.data.get("lock")
    if isinstance(lock, int) and lock != ir.lock_addr:
        for trace in ir.threads:
            acquired = next(
                (ev for ev in trace.events.get(lock, []) if ev[0] == "bare-w"),
                None,
            )
            if acquired is not None:
                steps.append((
                    trace.tid, acquired[1],
                    f"acquires spin lock {lock:#x} (CAS 0 -> nonzero)",
                ))
                break
    for addr in _candidate_addrs(ir, finding):
        events = [
            (trace.tid, ev)
            for trace in ir.threads
            for ev in trace.events.get(addr, [])
        ]
        writer = next(
            (e for e in events if e[1][0].endswith("-w") and not e[1][0].startswith("txn")),
            None,
        )
        if writer is None:
            writer = next((e for e in events if e[1][0] == "txn-w"), None)
        if writer is not None:
            tid, (mode, ip, _epoch, locks) = writer
            verb = "writes" if mode != "txn-w" else "transactionally writes"
            steps.append((tid, ip, f"{verb} {addr:#x} ({_describe_lockset(locks)})"))
        other = next(
            (
                e for e in events
                if e[1][0].startswith("txn") and (writer is None or e[0] != writer[0])
            ),
            None,
        )
        if other is None:
            other = next(
                (e for e in events if writer is None or e[0] != writer[0]), None
            )
        if other is not None:
            tid, (mode, ip, _epoch, locks) = other
            action = {
                "txn-r": "transaction reads", "txn-w": "transaction writes",
                "locked-r": "reads", "locked-w": "writes",
                "bare-r": "reads (unprotected)", "bare-w": "writes (unprotected)",
            }[mode]
            note = f"{action} {addr:#x}"
            if mode.startswith("locked"):
                note += f" ({_describe_lockset(locks)})"
            steps.append((tid, ip, note))
        if len(steps) >= MAX_STEPS - 1:
            break
    if not steps:
        steps = [(-1, site, "critical section at this site") for site in finding.sites[:2]]
    return tuple(steps[:MAX_STEPS])


def attach_witnesses(ir: ProgramIR, findings: list[Finding]) -> None:
    """Give every race/conflict finding lacking one a concrete path."""
    for finding in findings:
        if finding.code in RACE_WITNESS_CODES and not finding.witness:
            finding.witness = race_witness(ir, finding)
