"""CFG recovery from ip-transition counts + SCC condensation.

The symbolic drive records, per function frame and per region instance,
how many times control moved from one synthesized ip to the next
(:attr:`FunctionIR.edges` / :attr:`RegionInstance.edges`).  Because ips
are ``function_base + source_line``, a transition to a lower-or-equal ip
within one frame is a *back edge* — the generator jumped to an earlier
source line, i.e. a loop.  That single observation recovers headers,
branch points and per-instance trip counts with no parsing at all.

:func:`tarjan_scc` / :func:`scc_levels` work over any hashable node type
so the same machinery condenses the interprocedural call graph: SCCs on
one topological level share no dependency and are analyzed in parallel.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import TypeVar

N = TypeVar("N", bound=Hashable)


@dataclass
class CFG:
    """A recovered control-flow graph over synthesized ips."""

    entry: int | None
    edges: dict[tuple[int, int], int]
    nodes: set[int] = field(default_factory=set)
    succs: dict[int, dict[int, int]] = field(default_factory=dict)
    preds: dict[int, set[int]] = field(default_factory=dict)

    @classmethod
    def from_edges(
        cls, edges: Mapping[tuple[int, int], int], entry: int | None = None
    ) -> CFG:
        nodes: set[int] = set()
        succs: dict[int, dict[int, int]] = {}
        preds: dict[int, set[int]] = {}
        for (u, v), count in edges.items():
            nodes.add(u)
            nodes.add(v)
            succs.setdefault(u, {})[v] = succs.get(u, {}).get(v, 0) + count
        for (u, v), _count in edges.items():
            preds.setdefault(v, set()).add(u)
        if entry is None and nodes:
            headless = sorted(n for n in nodes if n not in preds)
            entry = headless[0] if headless else min(nodes)
        if entry is not None:
            nodes.add(entry)
        return cls(entry=entry, edges=dict(edges), nodes=nodes,
                   succs=succs, preds=preds)

    def back_edges(self) -> list[tuple[int, int]]:
        """Transitions to a lower-or-equal ip: the loop evidence."""
        return sorted((u, v) for (u, v) in self.edges if v <= u)

    def loop_headers(self) -> set[int]:
        return {v for _u, v in self.back_edges()}

    def branch_points(self) -> set[int]:
        return {u for u, targets in self.succs.items() if len(targets) >= 2}

    def exits(self) -> set[int]:
        return {n for n in self.nodes if not self.succs.get(n)}

    def rpo(self) -> list[int]:
        """Reverse postorder from the entry (iterative DFS)."""
        if self.entry is None:
            return []
        order: list[int] = []
        seen: set[int] = set()
        # every pred-less node is a root; the entry goes first so it
        # leads the order even when the CFG has disconnected pieces
        roots = [self.entry] + sorted(
            n for n in self.nodes if n not in self.preds and n != self.entry
        )
        for root in roots:
            if root in seen:
                continue
            stack: list[tuple[int, Iterable[int]]] = [(root, iter(sorted(self.succs.get(root, {}))))]
            seen.add(root)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(sorted(self.succs.get(succ, {})))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()
        order.reverse()
        return order


def tarjan_scc(succs: Mapping[N, Iterable[N]]) -> list[list[N]]:
    """Strongly connected components, iteratively, in reverse
    topological order (every callee SCC precedes its callers)."""
    index: dict[N, int] = {}
    lowlink: dict[N, int] = {}
    on_stack: set[N] = set()
    stack: list[N] = []
    sccs: list[list[N]] = []
    counter = 0
    nodes: list[N] = sorted(succs, key=repr)

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[N, list[N], int]] = [(root, sorted(succs.get(root, ()), key=repr), 0)]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children, child_i = work[-1]
            if child_i < len(children):
                work[-1] = (node, children, child_i + 1)
                child = children[child_i]
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(succs.get(child, ()), key=repr), 0))
                elif child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[N] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(sorted(component, key=repr))
    return sccs


def scc_levels(succs: Mapping[N, Iterable[N]]) -> list[list[list[N]]]:
    """Condense to a DAG and bucket SCCs by topological level.

    Level 0 holds the leaf SCCs (no dependencies); SCCs within one level
    are mutually independent, so a caller can analyze each level's
    members concurrently and still see every dependency resolved.
    """
    sccs = tarjan_scc(succs)
    member_of: dict[N, int] = {}
    for i, comp in enumerate(sccs):
        for node in comp:
            member_of[node] = i
    dag_succs: dict[int, set[int]] = {i: set() for i in range(len(sccs))}
    for node, targets in succs.items():
        for target in targets:
            if target not in member_of:
                continue
            a, b = member_of[node], member_of[target]
            if a != b:
                dag_succs[a].add(b)
    level: dict[int, int] = {}
    indeg: dict[int, int] = {i: 0 for i in range(len(sccs))}
    for a, targets in dag_succs.items():
        for b in targets:
            indeg[b] = indeg[b] + 1
    # callees first: levels propagate from dependency-free callers'
    # perspective — walk the DAG from SCCs nothing depends on
    queue = deque(i for i, d in indeg.items() if d == 0)
    for i in queue:
        level[i] = 0
    while queue:
        a = queue.popleft()
        for b in dag_succs[a]:
            level[b] = max(level.get(b, 0), level[a] + 1)
            indeg[b] -= 1
            if indeg[b] == 0:
                queue.append(b)
    if not sccs:
        return []
    depth = max(level.values(), default=0)
    out: list[list[list[N]]] = [[] for _ in range(depth + 1)]
    for i, comp in enumerate(sccs):
        out[level.get(i, 0)].append(comp)
    return out
