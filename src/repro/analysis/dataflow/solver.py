"""The generic worklist fixpoint solver.

Classic Kildall: ``in[n] = join(out[p] for solved preds p)``,
``out[n] = transfer(n, in[n])``, iterate until nothing changes.  Two
termination guards keep it total on recovered (noisy) CFGs:

* at loop headers, after ``widen_after`` visits the fresh input is
  *widened* against the previous one, jumping unstable bounds to top so
  ascending chains are finite;
* ``max_visits`` per node is a hard backstop; tripping it flips
  ``converged`` to False instead of hanging, and callers surface that as
  an incomplete-analysis downgrade rather than trusting the result.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from .cfg import CFG

F = TypeVar("F")


@dataclass
class Solution(Generic[F]):
    """A fixpoint: per-node input/output facts plus convergence telemetry."""

    inputs: dict[int, F] = field(default_factory=dict)
    outputs: dict[int, F] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True
    #: loop headers where widening actually changed a fact
    widened: set[int] = field(default_factory=set)

    def exit_fact(self, cfg: CFG, join: Callable[[F, F], F]) -> F | None:
        """Join of the facts flowing out of the CFG's exit nodes."""
        facts = [self.outputs[n] for n in sorted(cfg.exits()) if n in self.outputs]
        if not facts:
            # fully cyclic CFG (no exit): the header's output is the
            # closest thing to "the whole body ran"
            facts = [self.outputs[n] for n in sorted(cfg.nodes) if n in self.outputs]
        if not facts:
            return None
        acc = facts[0]
        for fact in facts[1:]:
            acc = join(acc, fact)
        return acc


def solve(
    cfg: CFG,
    entry_fact: F,
    transfer: Callable[[int, F], F],
    join: Callable[[F, F], F],
    widen: Callable[[F, F], F] | None = None,
    widen_after: int = 3,
    max_visits: int = 64,
) -> Solution[F]:
    """Run the worklist to a fixpoint over ``cfg``.

    ``transfer`` maps (node, input fact) to the node's output fact and
    must be monotone; ``join`` is the lattice join; ``widen``, when
    given, is applied at loop headers once a header has been visited
    more than ``widen_after`` times.
    """
    solution: Solution[F] = Solution()
    if cfg.entry is None:
        return solution
    order = cfg.rpo()
    headers = cfg.loop_headers()
    visits: dict[int, int] = {}
    work: deque[int] = deque(order)
    queued = set(order)

    while work:
        node = work.popleft()
        queued.discard(node)
        solution.iterations += 1
        visits[node] = visits.get(node, 0) + 1
        if visits[node] > max_visits:
            solution.converged = False
            continue
        solved_preds = [
            p for p in sorted(cfg.preds.get(node, ()))
            if p in solution.outputs
        ]
        if node == cfg.entry or not solved_preds:
            new_in = entry_fact
            for p in solved_preds:
                new_in = join(new_in, solution.outputs[p])
        else:
            new_in = solution.outputs[solved_preds[0]]
            for p in solved_preds[1:]:
                new_in = join(new_in, solution.outputs[p])
        old_in = solution.inputs.get(node)
        if old_in is not None:
            if widen is not None and node in headers and visits[node] > widen_after:
                stretched = widen(old_in, new_in)
                if stretched != old_in:
                    solution.widened.add(node)
                new_in = stretched
            new_in = join(old_in, new_in)
            if new_in == old_in and node in solution.outputs:
                continue
        solution.inputs[node] = new_in
        out = transfer(node, new_in)
        if solution.outputs.get(node) != out:
            solution.outputs[node] = out
            for succ in sorted(cfg.succs.get(node, {})):
                if succ not in queued:
                    work.append(succ)
                    queued.add(succ)
    return solution
