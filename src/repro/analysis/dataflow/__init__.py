"""Path-sensitive abstract interpretation over the symbolic IR.

The dataflow layer sits between IR extraction (:mod:`repro.analysis.ir`)
and the finding passes: it recovers CFGs from recorded ip transitions
(:mod:`.cfg`), runs a generic worklist fixpoint with widening
(:mod:`.solver`) over interval and must/may footprint domains
(:mod:`.domains`), caches content-addressed per-function summaries in
the campaign store (:mod:`.cache`, :mod:`.summaries`), emits the four
conditional/path-sensitivity codes (:mod:`.clients`), and reconstructs
concrete witness paths for every race/conflict finding
(:mod:`.witness`).
"""

from .cache import ANALYSIS_VERSION, SummaryCache, function_ir_digest
from .cfg import CFG, scc_levels, tarjan_scc
from .clients import DataflowAnalysis, SiteDataflow, analyze_dataflow, analyze_site
from .domains import FootprintFact, Interval, widen_monotone
from .solver import Solution, solve
from .summaries import FunctionSummary, program_summaries, summarize_function
from .witness import (
    RACE_WITNESS_CODES,
    WitnessStep,
    attach_witnesses,
    race_witness,
    region_witness,
)

__all__ = [
    "ANALYSIS_VERSION",
    "CFG",
    "DataflowAnalysis",
    "FootprintFact",
    "FunctionSummary",
    "Interval",
    "RACE_WITNESS_CODES",
    "SiteDataflow",
    "Solution",
    "SummaryCache",
    "WitnessStep",
    "analyze_dataflow",
    "analyze_site",
    "attach_witnesses",
    "function_ir_digest",
    "program_summaries",
    "race_witness",
    "region_witness",
    "scc_levels",
    "solve",
    "summarize_function",
    "tarjan_scc",
    "widen_monotone",
]
